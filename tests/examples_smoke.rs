//! Smoke test: every example must run to completion with tiny
//! parameters. Examples are the repository's living documentation and
//! are not exercised by unit tests, so without this gate a runtime
//! panic (bad index, poisoned lock, misconfigured backend) could rot
//! unnoticed even while `cargo test` stays green.
//!
//! `cargo test` builds the workspace's example binaries before running
//! integration tests, so the binaries are located relative to this test
//! executable (`target/<profile>/examples/…`) rather than re-entering
//! cargo.

use std::path::PathBuf;
use std::process::Command;

/// Directory holding the compiled example binaries for this profile.
fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    // target/<profile>/deps/examples_smoke-<hash> → target/<profile>/examples
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.push("examples");
    dir
}

/// Run one example with `args`, asserting success and returning stdout.
fn run_example(name: &str, args: &[&str]) -> String {
    let bin = examples_dir().join(name);
    assert!(
        bin.exists(),
        "example binary {} not built (looked in {})",
        name,
        bin.display()
    );
    let out = Command::new(&bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} {args:?} failed with {}\n--- stdout\n{}\n--- stderr\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_runs() {
    let out = run_example("quickstart", &[]);
    assert!(out.contains("OK"), "unexpected output:\n{out}");
}

#[test]
fn memory_runs() {
    let out = run_example("memory", &[]);
    assert!(out.contains("reclaimed"), "unexpected output:\n{out}");
}

#[test]
fn intset_bench_runs_on_every_backend() {
    // structure backend size update% threads window_ms
    for backend in ["wb", "wt", "tl2", "mutex"] {
        let out = run_example("intset_bench", &["rbtree", backend, "32", "20", "2", "40"]);
        assert!(out.contains("throughput"), "unexpected output:\n{out}");
    }
}

#[test]
fn vacation_runs() {
    // resources customers threads window_ms
    let out = run_example("vacation", &["24", "6", "2", "40"]);
    assert!(out.contains("conserved"), "unexpected output:\n{out}");
}

#[test]
fn autotune_runs() {
    // size threads configs period_ms
    let out = run_example("autotune", &["64", "2", "3", "20"]);
    assert!(out.contains("# tuned"), "unexpected output:\n{out}");
}

#[cfg(feature = "record")]
#[test]
fn record_check_runs_on_every_backend() {
    // backend threads window_ms
    for backend in ["wb", "wt", "tl2"] {
        let out = run_example("record_check", &[backend, "2", "30"]);
        assert!(out.contains("no violations"), "unexpected output:\n{out}");
    }
}
