//! Workspace-level integration tests: the full pipeline the figures use
//! (backends → structures → harness → tuning), cross-checked for
//! consistency rather than performance.

use std::time::Duration;
use stm_api::TmHandle;
use tinystm_repro::harness::{self, IntSetWorkload, MeasureOpts};
use tinystm_repro::structures::{LinkedList, RbTree, TxSet};
use tinystm_repro::tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};
use tinystm_repro::tl2::{Tl2, Tl2Config};
use tinystm_repro::tuning::{autotune, AutoTuneOpts, TuningPoint};

fn cm() -> CmPolicy {
    CmPolicy::Backoff {
        base: 8,
        max_spins: 4096,
    }
}

fn quick_opts(threads: usize) -> MeasureOpts {
    MeasureOpts::default()
        .with_threads(threads)
        .with_warmup(Duration::from_millis(10))
        .with_duration(Duration::from_millis(60))
}

#[test]
fn harness_pipeline_runs_on_every_backend() {
    let workload = IntSetWorkload::new(128, 20);

    // TinySTM write-back.
    let stm = Stm::new(StmConfig::default().with_cm(cm())).unwrap();
    let set = RbTree::new(stm.clone());
    let stats = {
        let stm = stm.clone();
        move || stm.stats_snapshot()
    };
    let m = harness::run_intset(&set, workload, quick_opts(4), &stats);
    assert!(m.commits > 0);
    let size = set.snapshot_len();
    assert!(
        (118..=138).contains(&size),
        "size {size} drifted from 128 under alternating updates"
    );
    set.check_invariants();

    // TinySTM write-through.
    let stm = Stm::new(
        StmConfig::default()
            .with_strategy(AccessStrategy::WriteThrough)
            .with_cm(cm()),
    )
    .unwrap();
    let set = LinkedList::new(stm.clone());
    let stats = {
        let stm = stm.clone();
        move || stm.stats_snapshot()
    };
    let m = harness::run_intset(&set, workload, quick_opts(4), &stats);
    assert!(m.commits > 0);

    // TL2.
    let tl2 = Tl2::new(Tl2Config::default().with_cm(cm())).unwrap();
    let set = LinkedList::new(tl2.clone());
    let stats = {
        let tl2 = tl2.clone();
        move || tl2.stats_snapshot()
    };
    let m = harness::run_intset(&set, workload, quick_opts(4), &stats);
    assert!(m.commits > 0);
}

#[test]
fn read_only_fast_path_keeps_no_read_set() {
    // 0% updates: TinySTM read-only transactions never validate, so the
    // validation counters must stay at zero.
    let stm = Stm::new(StmConfig::default().with_cm(cm())).unwrap();
    let set = RbTree::new(stm.clone());
    let workload = IntSetWorkload::new(256, 0);
    let stats = {
        let stm = stm.clone();
        move || stm.stats_snapshot()
    };
    let m = harness::run_intset(&set, workload, quick_opts(2), &stats);
    assert!(m.commits > 0);
    let totals = stm.stats().totals;
    assert_eq!(
        totals.validations, 0,
        "read-only workload must never validate"
    );
    assert!(totals.ro_commits > 0);
}

#[test]
fn autotune_end_to_end_improves_or_holds() {
    // From the deliberately bad start (2^8 locks) the tuner should end
    // at a configuration whose best observed throughput is at least the
    // start's (timing noise allowed: compare best-ever vs first).
    let template = StmConfig::default().with_cm(cm());
    let start = TuningPoint::experiment_start();
    let stm = Stm::new(start.apply(template)).unwrap();
    let list = LinkedList::new(stm.clone());
    let workload = IntSetWorkload::new(512, 20);
    harness::populate(&list, &workload, 42);

    let records = harness::drive_with_coordinator(
        MeasureOpts::default().with_threads(4),
        |_t| {
            let mut op = harness::IntSetOp::new(&list, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || {
            autotune(
                &stm,
                template,
                start,
                AutoTuneOpts {
                    period: Duration::from_millis(25),
                    samples_per_config: 2,
                    max_configs: 10,
                    seed: 77,
                },
            )
        },
    );
    assert!(records.is_complete(), "{:?}", records.error);
    let records = records.records;
    assert_eq!(records.len(), 10);
    let first = records[0].throughput;
    let best = records.iter().map(|r| r.throughput).fold(0.0f64, f64::max);
    assert!(
        best >= first * 0.8,
        "tuning degraded throughput: first {first:.0}, best {best:.0}"
    );
    // The list survived all the reconfiguration quiesces.
    let n = list.snapshot_len();
    assert!((502..=522).contains(&n), "list size {n} corrupted");
    assert!(stm.stats().reconfigurations >= 1);
}

#[test]
fn mutex_and_tinystm_agree_on_workload_outcome() {
    // Differential at the workload level: same deterministic op
    // sequence single-threaded → identical final key sets.
    use stm_api::model::MutexTm;
    let reference = LinkedList::new(MutexTm::new());
    let subject = LinkedList::new(Stm::new(StmConfig::default()).unwrap());

    let mut seed = 0x000D_5EED_u64;
    let mut ops = Vec::new();
    for _ in 0..500 {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        ops.push((seed % 3, seed % 64 + 1));
    }
    for &(op, k) in &ops {
        match op {
            0 => {
                let a = reference.add(k);
                let b = subject.add(k);
                assert_eq!(a, b, "add({k})");
            }
            1 => {
                let a = reference.remove(k);
                let b = subject.remove(k);
                assert_eq!(a, b, "remove({k})");
            }
            _ => {
                let a = reference.contains(k);
                let b = subject.contains(k);
                assert_eq!(a, b, "contains({k})");
            }
        }
    }
    assert_eq!(reference.keys(), subject.keys());
}

#[test]
fn overwrite_workload_full_pipeline() {
    let stm = Stm::new(StmConfig::default().with_cm(cm())).unwrap();
    let list = LinkedList::new(stm.clone());
    let workload = IntSetWorkload::new(128, 5);
    let stats = {
        let stm = stm.clone();
        move || stm.stats_snapshot()
    };
    let m = harness::run_overwrite(&list, workload, quick_opts(3), &stats);
    assert!(m.commits > 0);
    assert_eq!(list.snapshot_len(), 128, "overwrites must not change size");
}

#[test]
fn umbrella_reexports_are_usable() {
    // The tinystm-repro facade exposes everything the examples need.
    use tinystm_repro::api::TxKind;
    use tinystm_repro::tinystm::{TCell, TxExt};
    let stm = Stm::with_defaults();
    let cell = TCell::new(5u64);
    let v = stm.run(TxKind::ReadWrite, |tx| tx.modify(&cell, |x| x * 2));
    assert_eq!(v, 10);
}
