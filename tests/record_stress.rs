//! Record + check real multi-threaded runs on all three backends (the
//! `ordering_stress` companion for the stm-check oracle): any torn
//! read, lost write, or stale commit the relaxed-memory protocol let
//! slip would surface as a checker violation with a cycle witness.
//!
//! The quick variant runs everywhere (tier-1); the stress variant is
//! meaningful only in release builds (debug interleavings barely
//! contend) and is `#[ignore]`d otherwise, mirroring
//! `crates/core/tests/ordering_stress.rs`.
#![cfg(feature = "record")]

use stm_check::check_history;
use stm_harness::record::{run_recorded, RecBackend, RecWorkload, RecordOpts};
use tinystm::CmPolicy;

fn record_and_check(opts: &RecordOpts) {
    let out = run_recorded(opts);
    assert_eq!(
        out.measurement.worker_panics,
        0,
        "{}/{}: worker panicked",
        opts.backend.label(),
        opts.workload.label()
    );
    let history = out
        .history
        .as_ref()
        .expect("recording on")
        .as_ref()
        .expect("recording sound");
    let report = check_history(history, &out.check_opts);
    assert!(
        report.is_clean(),
        "{}/{} recorded a non-opaque history:\n{report}",
        opts.backend.label(),
        opts.workload.label()
    );
}

#[test]
fn record_and_check_quick_all_backends() {
    for backend in RecBackend::ALL {
        for workload in [RecWorkload::IntsetRbtree, RecWorkload::IntsetList] {
            record_and_check(&RecordOpts {
                backend,
                workload,
                threads: 2,
                duration_ms: 20,
                size: 32,
                update_pct: 50,
                ..RecordOpts::default()
            });
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress variant needs release-build contention; run with --release"
)]
fn record_and_check_stress_across_reconfigures() {
    // The tentpole under release contention: reconfigurations land
    // mid-window on every backend and the per-epoch checker must still
    // find the histories opaque.
    for backend in RecBackend::ALL {
        record_and_check(&RecordOpts {
            backend,
            workload: RecWorkload::IntsetList,
            threads: 4,
            duration_ms: 120,
            size: 32,
            update_pct: 80,
            reconfigures: 4,
            ..RecordOpts::default()
        });
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress variant needs release-build contention; run with --release"
)]
fn record_and_check_stress_all_backends() {
    // Small structures + high update rates maximize real conflicts;
    // CM_DELAY rides along so the new policy sees release-mode load.
    for backend in RecBackend::ALL {
        for (workload, size, update_pct) in [
            (RecWorkload::IntsetRbtree, 64, 80),
            (RecWorkload::IntsetList, 32, 80),
            (RecWorkload::Overwrite, 64, 30),
            (RecWorkload::Vacation, 64, 0),
        ] {
            record_and_check(&RecordOpts {
                backend,
                workload,
                threads: 4,
                duration_ms: 120,
                size,
                update_pct,
                cm: CmPolicy::Delay,
                ..RecordOpts::default()
            });
        }
    }
}
