//! Property-based differential tests: random operation sequences applied
//! to every transactional structure on the TinySTM backend must agree
//! with `BTreeSet`, under both access strategies.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tinystm_repro::structures::{HashSet, LinkedList, RbTree, SkipList, TxSet};
use tinystm_repro::tinystm::{AccessStrategy, Stm, StmConfig};

/// An abstract set operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key space to force collisions and removals of present keys.
    let key = 1u64..64;
    prop_oneof![
        key.clone().prop_map(Op::Add),
        key.clone().prop_map(Op::Remove),
        key.prop_map(Op::Contains),
    ]
}

fn check_against_model(set: &dyn TxSet, ops: &[Op]) {
    let mut model = BTreeSet::new();
    for &op in ops {
        match op {
            Op::Add(k) => assert_eq!(set.add(k), model.insert(k), "add({k})"),
            Op::Remove(k) => assert_eq!(set.remove(k), model.remove(&k), "remove({k})"),
            Op::Contains(k) => {
                assert_eq!(set.contains(k), model.contains(&k), "contains({k})")
            }
        }
    }
    assert_eq!(set.snapshot_len(), model.len(), "final length");
}

fn stm(strategy: AccessStrategy) -> Stm {
    Stm::new(
        StmConfig::default()
            .with_locks_log2(10)
            .with_strategy(strategy)
            .with_hier_log2(2),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn list_matches_model_wb(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = LinkedList::new(stm(AccessStrategy::WriteBack));
        check_against_model(&set, &ops);
    }

    #[test]
    fn list_matches_model_wt(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = LinkedList::new(stm(AccessStrategy::WriteThrough));
        check_against_model(&set, &ops);
    }

    #[test]
    fn rbtree_matches_model_wb(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = RbTree::new(stm(AccessStrategy::WriteBack));
        check_against_model(&set, &ops);
        set.check_invariants();
    }

    #[test]
    fn rbtree_matches_model_wt(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = RbTree::new(stm(AccessStrategy::WriteThrough));
        check_against_model(&set, &ops);
        set.check_invariants();
    }

    #[test]
    fn skiplist_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = SkipList::new(stm(AccessStrategy::WriteBack), 7);
        check_against_model(&set, &ops);
    }

    #[test]
    fn hashset_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let set = HashSet::new(stm(AccessStrategy::WriteBack), 8);
        check_against_model(&set, &ops);
    }

    #[test]
    fn rbtree_matches_model_tl2(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let tl2 = tinystm_repro::tl2::Tl2::new(
            tinystm_repro::tl2::Tl2Config::default().with_locks_log2(10),
        ).unwrap();
        let set = RbTree::new(tl2);
        check_against_model(&set, &ops);
        set.check_invariants();
    }
}
