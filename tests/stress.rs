//! Everything-at-once stress: data structures under concurrent load
//! while the clock rolls over *and* the tuner reconfigures the lock
//! array — the paper's full runtime behaviour in one pot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tinystm_repro::structures::{LinkedList, RbTree, TxSet};
use tinystm_repro::tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

#[test]
fn kitchen_sink_stress() {
    // Tiny max_clock forces frequent roll-overs; reconfigurations are
    // driven concurrently; structures must stay consistent throughout.
    for strategy in [AccessStrategy::WriteBack, AccessStrategy::WriteThrough] {
        let stm = Stm::new(
            StmConfig::default()
                .with_locks_log2(10)
                .with_hier_log2(2)
                .with_strategy(strategy)
                .with_max_clock(4096)
                .with_cm(CmPolicy::Backoff {
                    base: 8,
                    max_spins: 4096,
                }),
        )
        .unwrap();
        let tree = Arc::new(RbTree::new(stm.clone()));
        let list = Arc::new(LinkedList::new(stm.clone()));
        for k in 1..=64u64 {
            tree.add(k);
            if k % 2 == 0 {
                list.add(k);
            }
        }
        let tree_base = tree.snapshot_len();
        let list_base = list.snapshot_len();
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        // Structure churners: per-thread keys added then removed.
        for t in 0..3u64 {
            let (tree, list, stop) = (tree.clone(), list.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                let mut seed = (t + 1) * 7919;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = 1000 + t * 10_000 + (seed >> 40) % 500;
                    if i.is_multiple_of(2) {
                        if tree.add(k) {
                            assert!(tree.remove(k), "lost key {k} from tree");
                        }
                    } else if list.add(k) {
                        assert!(list.remove(k), "lost key {k} from list");
                    }
                    i += 1;
                }
            }));
        }
        // Reconfigurer: cycles tuning parameters.
        {
            let (stm, stop) = (stm.clone(), stop.clone());
            handles.push(std::thread::spawn(move || {
                let configs = [(9u32, 1u32, 3u32), (12, 3, 0), (10, 0, 4), (11, 2, 1)];
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    let (l, s, h) = configs[i % configs.len()];
                    stm.reconfigure(
                        stm.config()
                            .with_locks_log2(l)
                            .with_shifts(s)
                            .with_hier_log2(h),
                    )
                    .unwrap();
                    i += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
            }));
        }

        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }

        // Everything consistent after the dust settles.
        assert_eq!(tree.snapshot_len(), tree_base, "tree size drifted");
        assert_eq!(list.snapshot_len(), list_base, "list size drifted");
        tree.check_invariants();
        assert_eq!(
            list.keys(),
            (1..=64).filter(|k| k % 2 == 0).collect::<Vec<_>>()
        );
        let stats = stm.stats();
        // Reconfiguration resets the clock too, so roll-over may never
        // fire during the mixed phase; what must hold is that *some*
        // reset mechanism kept the clock bounded.
        assert!(
            stm.clock_now() < 4096,
            "clock escaped its bound: {}",
            stm.clock_now()
        );
        assert!(stats.reconfigurations >= 4, "reconfigurer barely ran");
        // Dedicated roll-over phase: with the reconfigurer stopped, pure
        // commit traffic must trip the threshold.
        while stm.stats().rollovers == 0 {
            assert!(tree.add(999_999));
            assert!(tree.remove(999_999));
        }
        tree.check_invariants();
        // Abort accounting stays coherent under every event type.
        let by_reason: u64 = stats.totals.aborts_by_reason.iter().sum();
        assert_eq!(by_reason, stats.totals.aborts);
    }
}
