//! Mutation self-test: the stm-check oracle is only worth trusting if a
//! deliberately broken protocol makes it report a violation. These
//! tests inject the `fault-inject` mutations (skip a validation) into
//! choreographed two-thread scenarios whose histories are then provably
//! non-serializable / non-opaque, and assert the checker reports the
//! violation **with a concrete cycle witness**.
//!
//! The choreography is deterministic: barriers sequence the conflicting
//! commits so the faulty transaction commits on its first attempt, no
//! retries, no timing dependence.
#![cfg(feature = "record")]

use std::sync::{Arc, Barrier};
use stm_api::{TmTx, TxKind};
use stm_check::{check_history, CheckOpts, History, TraceSink, Violation};
use stm_harness::record::RecBackend;
use stm_tl2::{Tl2, Tl2Config};
use tinystm::fault::FaultInjection;
use tinystm::{AccessStrategy, Stm, StmConfig};

/// Two adjacent words: with shift 0 they hash to adjacent, distinct
/// stripes on every backend.
fn two_words() -> (stm_api::mem::WordBlock, usize, usize) {
    let block = stm_api::mem::WordBlock::new(2);
    let x = block.as_ptr() as usize;
    let y = unsafe { block.as_ptr().add(1) } as usize;
    (block, x, y)
}

/// The stale-commit choreography on a generic handle:
///
/// 1. main commits a write to `x`            (version v1)
/// 2. T reads `x` (observes v1), then parks at the barrier
/// 3. main overwrites `x`                    (version v2)
/// 4. T writes `y` and commits at wv > v2 — its read of `x` is stale,
///    which only the (disabled) commit validation would have caught.
fn stale_commit_choreography<H: stm_api::TmHandle>(tm: &H, x: usize, y: usize) {
    tm.run(TxKind::ReadWrite, |tx| unsafe {
        tx.store_word(x as *mut usize, 10)
    });
    let after_read = Arc::new(Barrier::new(2));
    let after_overwrite = Arc::new(Barrier::new(2));
    std::thread::scope(|scope| {
        let t_read = Arc::clone(&after_read);
        let t_over = Arc::clone(&after_overwrite);
        let tm_t = tm.clone();
        scope.spawn(move || {
            let mut synced = false;
            tm_t.run(TxKind::ReadWrite, |tx| {
                let _stale = unsafe { tx.load_word(x as *const usize) }?;
                if !synced {
                    synced = true;
                    t_read.wait();
                    t_over.wait();
                }
                unsafe { tx.store_word(y as *mut usize, 99) }
            });
        });
        after_read.wait();
        tm.run(TxKind::ReadWrite, |tx| unsafe {
            tx.store_word(x as *mut usize, 20)
        });
        after_overwrite.wait();
    });
}

fn assert_cycle_witness(history: &History, opts: &CheckOpts, label: &str) {
    let report = check_history(history, opts);
    assert!(
        !report.is_clean(),
        "{label}: checker missed the injected violation"
    );
    let cycle = report
        .violations
        .iter()
        .find_map(|v| match v {
            Violation::SerializabilityCycle { cycle, .. } => Some(cycle),
            _ => None,
        })
        .unwrap_or_else(|| panic!("{label}: no cycle witness in {report}"));
    assert!(
        cycle.nodes.len() >= 2 && cycle.edges.len() == cycle.nodes.len(),
        "{label}: malformed witness {cycle}"
    );
    // The witness must name the decisive anti-dependency.
    assert!(
        cycle
            .edges
            .iter()
            .any(|e| matches!(e, stm_check::EdgeKind::Rw { .. })),
        "{label}: witness lacks the rw edge: {cycle}"
    );
}

fn run_tiny_mutation(strategy: AccessStrategy, backend: RecBackend) {
    let stm = Stm::new(StmConfig::default().with_strategy(strategy)).expect("valid");
    let sink = TraceSink::new();
    stm.attach_trace(&sink);
    stm.inject_fault(FaultInjection::SkipCommitValidation);
    let (_block, x, y) = two_words();
    stale_commit_choreography(&stm, x, y);
    stm.inject_fault(FaultInjection::None);
    stm.detach_trace();
    // Safe drain: the choreography's worker scope has joined.
    let history = sink.drain_history().expect("recording sound");
    assert_cycle_witness(&history, &backend.check_opts(), backend.label());
}

#[test]
fn skipped_commit_validation_is_caught_on_write_back() {
    run_tiny_mutation(AccessStrategy::WriteBack, RecBackend::TinyWb);
}

#[test]
fn skipped_commit_validation_is_caught_on_write_through() {
    run_tiny_mutation(AccessStrategy::WriteThrough, RecBackend::TinyWt);
}

#[test]
fn skipped_commit_validation_is_caught_on_tl2() {
    let tl2 = Tl2::new(Tl2Config::default()).expect("valid");
    let sink = TraceSink::new();
    tl2.attach_trace(&sink);
    tl2.inject_fault(FaultInjection::SkipCommitValidation);
    let (_block, x, y) = two_words();
    stale_commit_choreography(&tl2, x, y);
    tl2.inject_fault(FaultInjection::None);
    tl2.detach_trace();
    // Safe drain: the choreography's worker scope has joined.
    let history = sink.drain_history().expect("recording sound");
    assert_cycle_witness(&history, &RecBackend::Tl2.check_opts(), "tl2");
}

/// Opacity mutation: with extension validation skipped, an attempt that
/// later aborts can observe two reads belonging to no single snapshot.
///
/// 1. main commits x (v1) and y (v2)
/// 2. T reads x (observes v1), parks
/// 3. main commits a transaction writing BOTH x and y (v3)
/// 4. T reads y — observes v3, "extends" without validating — and then
///    aborts. Its read set {x@v1, y@v3} is not a snapshot: x was
///    overwritten at v3.
#[test]
fn skipped_extend_validation_is_an_opacity_violation() {
    let stm = Stm::new(StmConfig::default()).expect("valid");
    let sink = TraceSink::new();
    stm.attach_trace(&sink);
    let (_block, x, y) = two_words();
    stm.run(TxKind::ReadWrite, |tx| unsafe {
        tx.store_word(x as *mut usize, 1)
    });
    stm.run(TxKind::ReadWrite, |tx| unsafe {
        tx.store_word(y as *mut usize, 2)
    });
    stm.inject_fault(FaultInjection::SkipExtendValidation);
    let after_read = Arc::new(Barrier::new(2));
    let after_overwrite = Arc::new(Barrier::new(2));
    std::thread::scope(|scope| {
        let t_read = Arc::clone(&after_read);
        let t_over = Arc::clone(&after_overwrite);
        let stm_t = stm.clone();
        scope.spawn(move || {
            let mut choreographed = false;
            stm_t.run(TxKind::ReadWrite, |tx| {
                if choreographed {
                    // Second attempt: succeed quietly so the retry loop
                    // terminates; the violation lives in attempt one.
                    return Ok(());
                }
                choreographed = true;
                let _x = unsafe { tx.load_word(x as *const usize) }?;
                t_read.wait();
                t_over.wait();
                // Observes the post-overwrite version of y; the faulty
                // extension accepts it without validating x.
                let _y = unsafe { tx.load_word(y as *const usize) }?;
                tx.retry()
            });
        });
        after_read.wait();
        stm.run(TxKind::ReadWrite, |tx| unsafe {
            tx.store_word(x as *mut usize, 11)?;
            tx.store_word(y as *mut usize, 22)
        });
        after_overwrite.wait();
    });
    stm.inject_fault(FaultInjection::None);
    stm.detach_trace();
    // Safe drain: the worker scope has joined.
    let history = sink.drain_history().expect("recording sound");
    let report = check_history(&history, &CheckOpts::default());
    let found = report.violations.iter().any(|v| {
        matches!(
            v,
            Violation::InconsistentSnapshot {
                committed: false,
                ..
            }
        )
    });
    assert!(found, "aborted-snapshot violation missed: {report}");
}

/// Control: the same stale-commit choreography WITHOUT fault injection
/// must record a clean history (validation aborts the stale attempt and
/// the retry commits a consistent one).
#[test]
fn unmutated_choreography_records_clean_history() {
    let stm = Stm::new(StmConfig::default()).expect("valid");
    let sink = TraceSink::new();
    stm.attach_trace(&sink);
    let (_block, x, y) = two_words();
    stale_commit_choreography(&stm, x, y);
    stm.detach_trace();
    // Safe drain: the choreography's worker scope has joined.
    let history = sink.drain_history().expect("recording sound");
    let report = check_history(&history, &CheckOpts::default());
    assert!(report.is_clean(), "{report}");
    // The stale attempt really happened: at least one abort recorded.
    let (_, _, aborted, _, _) = history.totals();
    assert!(aborted >= 1, "choreography lost its conflict");
}
