//! End-to-end `--record` flow: run a workload with event recording
//! attached, drain the per-thread logs into a history, and verify it
//! with the stm-check oracle.
//!
//! ```text
//! cargo run --example record_check [backend] [threads] [window_ms]
//! # backend: wb | wt | tl2           (default wb)
//! ```
//!
//! The same flow is available as a standalone binary:
//! `cargo run -p stm-harness --features record --bin stm-record -- --check`.

use stm_check::check_history;
use stm_harness::record::{run_recorded, RecBackend, RecWorkload, RecordOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let backend = args
        .first()
        .map(|s| RecBackend::parse(s).expect("backend: wb | wt | tl2"))
        .unwrap_or(RecBackend::TinyWb);
    let threads = args
        .get(1)
        .map(|s| s.parse().expect("threads"))
        .unwrap_or(2);
    let window_ms = args
        .get(2)
        .map(|s| s.parse().expect("window_ms"))
        .unwrap_or(40);

    let opts = RecordOpts {
        backend,
        workload: RecWorkload::IntsetRbtree,
        threads,
        duration_ms: window_ms,
        size: 64,
        update_pct: 50,
        ..RecordOpts::default()
    };
    println!(
        "# record_check: {} on {} ({} threads, {} ms window)",
        opts.workload.label(),
        opts.backend.label(),
        opts.threads,
        opts.duration_ms
    );

    let out = run_recorded(&opts);
    println!(
        "measured {:.1} txs/s ({} commits, {} aborts)",
        out.measurement.throughput, out.measurement.commits, out.measurement.aborts
    );
    let history = out
        .history
        .expect("recording was on")
        .expect("recording sound (no roll-over in the window)");
    println!("recorded {}", history.summary());

    // The checker rebuilds the version-order graph from the history and
    // proves it acyclic (serializable) and snapshot-consistent (opaque);
    // any violation would come with a minimal cycle witness naming the
    // transactions and stripes involved.
    let report = check_history(&history, &out.check_opts);
    println!("{report}");
    assert!(report.is_clean(), "recorded history failed the oracle");
}
