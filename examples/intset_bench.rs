//! Integer-set benchmark CLI — the paper's Section 3.3 harness as a
//! runnable example.
//!
//! Usage:
//!   cargo run --release --example intset_bench -- \
//!       [structure] [backend] [size] [update_pct] [threads] [ms]
//!
//! structure: list | rbtree | skiplist | hashset   (default rbtree)
//! backend:   wb | wt | tl2 | mutex                (default wb)
//!
//! Example: `cargo run --release --example intset_bench -- list wb 4096 20 8 500`

use std::time::Duration;
use stm_api::model::MutexTm;
use stm_api::TmHandle;
use stm_harness::{run_intset, IntSetWorkload, MeasureOpts};
use stm_structures::{HashSet, LinkedList, RbTree, SkipList, TxSet};
use stm_tl2::{Tl2, Tl2Config};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn build_set<H: TmHandle>(tm: H, structure: &str) -> Box<dyn TxSet> {
    match structure {
        "list" => Box::new(LinkedList::new(tm)),
        "rbtree" => Box::new(RbTree::new(tm)),
        "skiplist" => Box::new(SkipList::new(tm, 42)),
        "hashset" => Box::new(HashSet::new(tm, 1024)),
        other => panic!("unknown structure {other} (list|rbtree|skiplist|hashset)"),
    }
}

fn main() {
    let structure: String = arg(1, "rbtree".to_string());
    let backend: String = arg(2, "wb".to_string());
    let size: u64 = arg(3, 4096);
    let update_pct: u32 = arg(4, 20);
    let threads: usize = arg(5, 8);
    let ms: u64 = arg(6, 500);

    let workload = IntSetWorkload::new(size, update_pct);
    let opts = MeasureOpts::default()
        .with_threads(threads)
        .with_warmup(Duration::from_millis(ms / 4))
        .with_duration(Duration::from_millis(ms));

    let cm = CmPolicy::Backoff {
        base: 16,
        max_spins: 1 << 14,
    };
    let (set, stats): (
        Box<dyn TxSet>,
        Box<dyn Fn() -> stm_api::stats::BasicStats + Sync>,
    ) = match backend.as_str() {
        "wb" | "wt" => {
            let strategy = if backend == "wb" {
                AccessStrategy::WriteBack
            } else {
                AccessStrategy::WriteThrough
            };
            let stm = Stm::new(StmConfig::default().with_strategy(strategy).with_cm(cm)).unwrap();
            let h = stm.clone();
            (
                build_set(stm, &structure),
                Box::new(move || h.stats_snapshot()),
            )
        }
        "tl2" => {
            let tl2 = Tl2::new(Tl2Config::default().with_cm(cm)).unwrap();
            let h = tl2.clone();
            (
                build_set(tl2, &structure),
                Box::new(move || h.stats_snapshot()),
            )
        }
        "mutex" => {
            let tm = MutexTm::new();
            let h = tm.clone();
            (
                build_set(tm, &structure),
                Box::new(move || h.stats_snapshot()),
            )
        }
        other => panic!("unknown backend {other} (wb|wt|tl2|mutex)"),
    };

    println!("# intset: {structure} on {backend}, size={size}, updates={update_pct}%, threads={threads}, window={ms}ms");
    let m = run_intset(&*set, workload, opts, &*stats);
    println!(
        "throughput: {:>12.0} txs/s\naborts:     {:>12.0} /s  (ratio {:.2}%)\nfinal size: {:>12}",
        m.throughput,
        m.abort_rate,
        m.abort_ratio * 100.0,
        set.snapshot_len()
    );
}
