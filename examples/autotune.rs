//! Live dynamic tuning demo (Section 4): watch the hill climber walk the
//! configuration space while a linked-list workload runs.
//!
//! Usage:
//!   cargo run --release --example autotune -- [size] [threads] [configs] [period_ms]
//!
//! Prints one line per measurement period: the configuration, its
//! throughput, and the move the tuner took — the data behind Figures
//! 10 and 11.

use std::time::Duration;
use stm_harness::{drive_with_coordinator, IntSetOp, IntSetWorkload, MeasureOpts};
use stm_structures::LinkedList;
use stm_tuning::{autotune, AutoTuneOpts, TuningPoint};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let size: u64 = arg(1, 4096);
    let threads: usize = arg(2, 8);
    let configs: usize = arg(3, 20);
    let period_ms: u64 = arg(4, 150);

    // Start from the paper's deliberately poor configuration.
    let template = StmConfig::default()
        .with_strategy(AccessStrategy::WriteBack)
        .with_cm(CmPolicy::Backoff {
            base: 16,
            max_spins: 1 << 14,
        });
    let start = TuningPoint::experiment_start();
    let stm = Stm::new(start.apply(template)).unwrap();
    let list = LinkedList::new(stm.clone());
    let workload = IntSetWorkload::new(size, 20);
    stm_harness::populate(&list, &workload, 0xA070);

    println!(
        "# autotune: list size={size}, threads={threads}, start={}",
        start.label()
    );
    println!("idx,config,txs_per_s,move");

    let tune_opts = AutoTuneOpts {
        period: Duration::from_millis(period_ms),
        samples_per_config: 3,
        max_configs: configs,
        seed: 0xA070,
    };
    let outcome = drive_with_coordinator(
        MeasureOpts::default().with_threads(threads),
        |_t| {
            let mut op = IntSetOp::new(&list, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || autotune(&stm, template, start, tune_opts),
    );
    if let Some(e) = &outcome.error {
        eprintln!("autotune stopped early: {e}");
    }
    let records = &outcome.records;

    for r in records {
        println!(
            "{},{},{:.0},{}",
            r.index,
            r.point.label(),
            r.throughput,
            r.label
        );
    }
    let first = &records[0];
    let best = records
        .iter()
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .unwrap();
    println!(
        "# tuned {} -> {}: {:.0} -> {:.0} txs/s ({:+.0}%)",
        first.point.label(),
        best.point.label(),
        first.throughput,
        best.throughput,
        (best.throughput / first.throughput.max(1.0) - 1.0) * 100.0
    );
}
