//! Quickstart: transactional bank transfers on TinySTM.
//!
//! Demonstrates the safe typed layer (`TCell`, `TxExt`): concurrent
//! transfers between accounts with a read-only auditor that always sees
//! a consistent total — the atomicity + opacity guarantees of the STM.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stm_api::TxKind;
use tinystm::{Stm, StmConfig, TCell, TxExt};

fn main() {
    let stm = Stm::new(StmConfig::default()).expect("valid config");
    let n_accounts = 32;
    let initial = 1_000i64;
    let accounts: Arc<Vec<TCell<i64>>> =
        Arc::new((0..n_accounts).map(|_| TCell::new(initial)).collect());
    let expected_total = initial * n_accounts as i64;
    let stop = Arc::new(AtomicBool::new(false));

    println!("quickstart: {n_accounts} accounts x {initial} = {expected_total} total");

    // Four transfer threads.
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let stm = stm.clone();
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut seed = 0x5EED ^ (t << 16) | 1;
                for _ in 0..20_000 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let from = (seed >> 32) as usize % n_accounts;
                    let to = (seed >> 11) as usize % n_accounts;
                    let amount = (seed % 100) as i64;
                    stm.run(TxKind::ReadWrite, |tx| {
                        let balance = tx.read(&accounts[from])?;
                        tx.write(&accounts[from], balance - amount)?;
                        let other = tx.read(&accounts[to])?;
                        tx.write(&accounts[to], other + amount)
                    });
                }
            })
        })
        .collect();

    // One auditing thread: read-only snapshots are always consistent.
    let auditor = {
        let stm = stm.clone();
        let accounts = Arc::clone(&accounts);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let total: i64 = stm.run_ro(|tx| {
                    let mut sum = 0;
                    for a in accounts.iter() {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected_total, "torn snapshot!");
                audits += 1;
            }
            audits
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let audits = auditor.join().unwrap();

    let final_total: i64 = (0..n_accounts).map(|i| accounts[i].read_direct()).sum();
    let stats = stm.stats();
    println!("final total: {final_total} (expected {expected_total})");
    println!(
        "commits: {} (read-only: {}), aborts: {}, audits: {audits}",
        stats.totals.commits, stats.totals.ro_commits, stats.totals.aborts
    );
    assert_eq!(final_total, expected_total);
    println!("OK — every snapshot was consistent.");
}
