//! Transactional memory management demo (Section 3.1, "Memory
//! Management"): abort-safe allocation, commit-deferred frees, and
//! epoch-based physical reclamation.
//!
//! Builds a queue of transactionally allocated nodes, frees them from a
//! second thread while a slow reader still traverses, and shows the
//! limbo list holding blocks until the reader's epoch passes.
//!
//! Run with: `cargo run --release --example memory`

use std::sync::Arc;
use stm_api::{field_ptr, TmTx, TxKind};
use tinystm::{Stm, StmConfig, TCell};

const NODE_WORDS: usize = 2; // [value, next]

fn main() {
    let stm = Stm::new(StmConfig::default()).expect("valid config");
    let head = Arc::new(TCell::new(0usize));

    // Build a 1000-node list transactionally.
    let n = 1000;
    for i in (0..n).rev() {
        let head = &head;
        stm.run(TxKind::ReadWrite, |tx| {
            let node = tx.malloc(NODE_WORDS)?;
            // SAFETY: fresh node; head cell owned by this program.
            unsafe {
                tx.store_word(field_ptr(node, 0), i)?;
                let old_head = tx.load_word(head.addr())?;
                tx.store_word(field_ptr(node, 1), old_head)?;
                tx.store_word(head.addr(), node as usize)
            }
        });
    }
    println!("built {n} transactionally-allocated nodes");
    println!("stats after build:\n{}", stm.stats());

    // A slow reader traverses while another thread frees everything.
    let reader = {
        let (stm, head) = (stm.clone(), Arc::clone(&head));
        std::thread::spawn(move || {
            stm.run(TxKind::ReadWrite, |tx| {
                // SAFETY: nodes are reachable from head under this
                // transaction's snapshot; epoch reclamation keeps any
                // node we can reach alive until we finish.
                let mut sum = 0usize;
                let mut cur = unsafe { tx.load_word(head.addr()) }? as *mut usize;
                while !cur.is_null() {
                    sum += unsafe { tx.load_word(field_ptr(cur, 0)) }?;
                    std::thread::yield_now(); // be deliberately slow
                    cur = unsafe { tx.load_word(field_ptr(cur, 1)) }? as *mut usize;
                }
                let h = unsafe { tx.load_word(head.addr()) }?;
                unsafe { tx.store_word(head.addr(), h) }?;
                Ok(sum)
            })
        })
    };

    // Free the whole list, node by node.
    let mut freed = 0;
    loop {
        let done = stm.run(TxKind::ReadWrite, |tx| {
            // SAFETY: head is the program's root; nodes are whole blocks
            // allocated above.
            unsafe {
                let first = tx.load_word(head.addr())? as *mut usize;
                if first.is_null() {
                    return Ok(true);
                }
                let next = tx.load_word(field_ptr(first, 1))?;
                tx.store_word(head.addr(), next)?;
                tx.free(first, NODE_WORDS)?;
                Ok(false)
            }
        });
        if done {
            break;
        }
        freed += 1;
    }
    println!(
        "freed {freed} nodes; limbo pending: {}",
        stm.stats().limbo_pending
    );

    let sum = reader.join().unwrap();
    println!("slow reader saw a consistent snapshot, sum = {sum}");

    // With the reader gone, reclamation can drain the limbo list.
    let reclaimed = stm.reclaim_now();
    println!(
        "reclaimed {reclaimed} blocks; limbo pending: {}",
        stm.stats().limbo_pending
    );
    assert_eq!(stm.stats().limbo_pending, 0);
    println!("OK — every block outlived its readers and was reclaimed exactly once.");
}
