//! The vacation workload (Figure 7's substrate) as a runnable example:
//! a travel agency whose reservation, cancellation, and table-update
//! transactions each span several red-black trees.
//!
//! Usage:
//!   cargo run --release --example vacation -- [resources] [customers] [threads] [ms]

use std::time::Duration;
use stm_harness::{run_vacation, MeasureOpts, VacationWorkload};
use stm_structures::{ResourceKind, Vacation};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_resources: u64 = arg(1, 256);
    let n_customers: u64 = arg(2, 64);
    let threads: usize = arg(3, 8);
    let ms: u64 = arg(4, 500);

    let stm = Stm::new(
        StmConfig::default()
            .with_strategy(AccessStrategy::WriteBack)
            .with_hier_log2(2)
            .with_cm(CmPolicy::Backoff {
                base: 16,
                max_spins: 1 << 14,
            }),
    )
    .unwrap();

    println!(
        "# vacation: {n_resources} resources/table, {n_customers} customers, {threads} threads"
    );
    let workload = VacationWorkload {
        n_resources,
        n_customers,
        queries_per_tx: 4,
        reserve_pct: 80,
    };
    let opts = MeasureOpts::default()
        .with_threads(threads)
        .with_warmup(Duration::from_millis(ms / 4))
        .with_duration(Duration::from_millis(ms));
    let m = run_vacation(stm.clone(), workload, opts);
    println!(
        "throughput: {:.0} txs/s, aborts: {:.0}/s (ratio {:.2}%)",
        m.throughput,
        m.abort_rate,
        m.abort_ratio * 100.0
    );

    // Separate consistency demonstration: conservation audit.
    let v = Vacation::new(stm, 64, 16, 99);
    for c in 1..=16 {
        v.make_reservation(c, ResourceKind::from_index(c as usize), &[1, 2, 3, 4]);
    }
    let by_tables = v.outstanding_by_tables();
    let by_customers = v.outstanding_by_customers();
    println!("conservation audit: tables={by_tables:?} customers={by_customers:?}");
    assert_eq!(by_tables, by_customers);
    println!("OK — reservations conserved across tables and customer lists.");
}
