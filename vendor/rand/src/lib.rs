//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the narrow slice of `rand`'s API that the harness and benches use:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is
//! xoshiro256++, which matches the statistical quality class of the real
//! `SmallRng` and is fully deterministic per seed — exactly what the
//! reproducible benchmark driver needs.

#![forbid(unsafe_code)]

/// Core random-number-generator interface (subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (subset: `seed_from_u64` and `from_seed`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types uniform sampling is defined for (the `SampleUniform` analogue).
///
/// The blanket [`SampleRange`] impls below are generic over this trait —
/// one impl per range shape, as in real `rand` — so integer-literal
/// ranges unify with the surrounding expression's type instead of
/// defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, f64::from_bits(hi.to_bits() + 1))
    }
}

/// Types that can parameterize [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Debiased bounded sample in `[0, bound)` (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// User-facing convenience methods (subset).
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset: `SmallRng`).

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1u64..=64);
            assert!((1..=64).contains(&v));
            let w = rng.gen_range(0..100);
            assert!((0..100).contains(&w));
            let f = rng.gen_range(0.0f64..1e7);
            assert!((0.0..1e7).contains(&f));
        }
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = rng.gen_range(0u64..u64::MAX);
        let b = rng.gen_range(0u64..u64::MAX);
        assert_ne!(a, b);
    }
}
