//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics:
//! `lock()` returns the guard directly (no `Result`), poisoning is
//! transparently ignored (a panicked holder does not poison the lock for
//! everyone else), and `Condvar::wait` takes `&mut MutexGuard`.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// ownership of the underlying std guard through `&mut self`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
