//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the slice of proptest that the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter_map`, range / tuple / `any` strategies,
//! [`collection::vec`], weighted [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] macros. Inputs are generated deterministically from a
//! per-test seed (derived from the test's module path and name), so
//! failures reproduce across runs. Shrinking is intentionally not
//! implemented: a failing case prints its full generated input instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// RNG handed to [`crate::strategy::Strategy::generate`].
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Deterministic construction from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(SmallRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-`proptest!` block configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Stable FNV-1a hash of a test's identity, used as its base seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use core::fmt::Debug;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe so strategies can be boxed ([`BoxedStrategy`]); the
    /// combinator methods are `Self: Sized`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Keep only values for which `f` returns `Some`.
        fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                base: self,
                f,
                whence,
            }
        }

        /// Keep only values for which `f` returns `true`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                base: self,
                f,
                whence,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Rejection cap for filtering combinators before the test errors out.
    const MAX_REJECTS: u32 = 10_000;

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        base: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.base.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected {MAX_REJECTS} inputs: {}",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected {MAX_REJECTS} inputs: {}", self.whence);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weighted roll exceeded total")
        }
    }

    /// Full-range generation for primitive types (see [`crate::arbitrary::any`]).
    pub trait Arbitrary: Debug + Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Construct (used by `any()`).
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — unconstrained values of a primitive type.

    use crate::strategy::{Any, Arbitrary};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::fmt::Debug;
    use rand::Rng;

    /// Length specification for [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `proptest::prelude::prop` namespace alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Weighted (or unweighted) choice between strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically
/// generated inputs (seeded from the test's path, so failures reproduce).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let base = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                    base.wrapping_add(case as u64),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?} "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, desc,
                    );
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        let s = (0usize..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 200 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        let s = prop_oneof![5 => 0u32..1, 1 => 10u32..11];
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                0 => saw_low = true,
                10 => saw_high = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        let s = crate::collection::vec(0u8..255, 1..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 1u64..=64, ys in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!((1..=64).contains(&x));
            for y in &ys {
                prop_assert!(*y < 10, "y = {}", y);
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
