//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API used by this workspace's
//! micro-benchmarks: `Criterion::benchmark_group`, group knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple but real: each benchmark is warmed up, the
//! iteration count is calibrated to the measurement window, and the
//! harness reports mean time per iteration over the configured number of
//! samples. There is no statistical analysis, HTML report, or baseline
//! comparison — `cargo bench` prints one line per benchmark, and
//! `cargo bench --no-run` type-checks everything, which is what CI pins.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many per setup.
    SmallInput,
    /// Large per-iteration inputs: one per setup.
    LargeInput,
    /// Each iteration gets exactly one fresh input.
    PerIteration,
}

/// Per-benchmark timing loop handed to the closure of `bench_function`.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: core::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine` over the calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks with shared measurement knobs.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock budget for calibration before timing starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: run single iterations until the warm-up budget is
        // spent, to estimate the per-iteration cost.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            _marker: core::marker::PhantomData,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut probe);
            per_iter = probe.elapsed.max(Duration::from_nanos(1));
        }
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters =
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: core::marker::PhantomData,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("{}/{:<32} {:>12.1} ns/iter", self.name, id, mean_ns);
        self
    }

    /// End the group (marker for parity with criterion's API).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: String = id.into();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(2));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
