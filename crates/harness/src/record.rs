//! The driver's `--record` mode: run an existing workload (intset on
//! rbtree/list, the overwrite list, or the vacation mix) on a concrete
//! backend with transactional event recording attached, and drain the
//! per-thread logs into an [`stm_check::History`] for the offline
//! opacity/serializability checker.
//!
//! Recording is attached *before* population so the history covers
//! every committed write — the checker's version resolution depends on
//! seeing the whole run (a read of version `v` is matched to the commit
//! that produced it).

use crate::driver::{MeasureOpts, Measurement};
use crate::intset::{run_intset, run_overwrite, IntSetWorkload};
use crate::metrics::MetricsReporter;
use crate::vacation_mix::{run_vacation, VacationWorkload};
use core::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stm_api::TmHandle;
use stm_check::{CheckOpts, History, RecordingError, TraceSink};
use stm_structures::{LinkedList, RbTree};
use stm_tl2::{Tl2, Tl2Config};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

/// The recordable backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecBackend {
    /// TinySTM, write-back.
    TinyWb,
    /// TinySTM, write-through.
    TinyWt,
    /// TL2.
    Tl2,
}

impl RecBackend {
    /// All three backends (the CI matrix).
    pub const ALL: [RecBackend; 3] = [RecBackend::TinyWb, RecBackend::TinyWt, RecBackend::Tl2];

    /// Series label, matching the bench output.
    pub fn label(self) -> &'static str {
        match self {
            RecBackend::TinyWb => "tinystm-wb",
            RecBackend::TinyWt => "tinystm-wt",
            RecBackend::Tl2 => "tl2",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<RecBackend> {
        match name {
            "wb" | "tinystm-wb" => Some(RecBackend::TinyWb),
            "wt" | "tinystm-wt" => Some(RecBackend::TinyWt),
            "tl2" => Some(RecBackend::Tl2),
            _ => None,
        }
    }

    /// Checker options appropriate for this backend (write-through
    /// rollback may publish inflated versions on incarnation overflow;
    /// see `stm_check`'s module docs).
    pub fn check_opts(self) -> CheckOpts {
        CheckOpts {
            allow_version_inflation: matches!(self, RecBackend::TinyWt),
            ..CheckOpts::default()
        }
    }
}

/// The recordable workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecWorkload {
    /// Intset on the red-black tree.
    IntsetRbtree,
    /// Intset on the sorted linked list.
    IntsetList,
    /// The traverse-and-overwrite list workload (Figure 4 right).
    Overwrite,
    /// The STAMP-style vacation mix (Figure 7).
    Vacation,
}

impl RecWorkload {
    /// Label for CLI/CI output.
    pub fn label(self) -> &'static str {
        match self {
            RecWorkload::IntsetRbtree => "intset-rbtree",
            RecWorkload::IntsetList => "intset-list",
            RecWorkload::Overwrite => "overwrite",
            RecWorkload::Vacation => "vacation",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<RecWorkload> {
        match name {
            "intset-rbtree" | "rbtree" => Some(RecWorkload::IntsetRbtree),
            "intset-list" | "list" => Some(RecWorkload::IntsetList),
            "overwrite" => Some(RecWorkload::Overwrite),
            "vacation" => Some(RecWorkload::Vacation),
            _ => None,
        }
    }
}

/// Options for one recorded run.
#[derive(Debug, Clone, Copy)]
pub struct RecordOpts {
    /// Backend under test.
    pub backend: RecBackend,
    /// Workload to drive.
    pub workload: RecWorkload,
    /// Worker threads.
    pub threads: usize,
    /// Measurement window in milliseconds (warm-up is a quarter of it).
    pub duration_ms: u64,
    /// Structure size (intset/overwrite) or resources (vacation).
    pub size: u64,
    /// Update percentage (intset/overwrite; vacation uses its mix).
    pub update_pct: u32,
    /// Contention-management policy.
    pub cm: CmPolicy,
    /// Mid-window reconfigurations: a side thread switches the backend
    /// to an alternating lock-array geometry this many times, spread
    /// across the run. Recording stays sound across the switches (the
    /// checker segments per reconfigure epoch).
    pub reconfigures: usize,
    /// Whether to attach event recording (off measures the plain run).
    pub record: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RecordOpts {
    fn default() -> RecordOpts {
        RecordOpts {
            backend: RecBackend::TinyWb,
            workload: RecWorkload::IntsetRbtree,
            threads: 2,
            duration_ms: 50,
            size: 64,
            update_pct: 20,
            cm: CmPolicy::Immediate,
            reconfigures: 0,
            record: true,
            seed: 0x7153_77AD,
        }
    }
}

/// Result of one recorded run.
#[derive(Debug)]
pub struct RecordOutcome {
    /// Throughput/abort measurement of the run (partial histories from
    /// panicking workers are still recorded — the bracket structure
    /// survives because a panicking attempt aborts via `Drop`).
    pub measurement: Measurement,
    /// The drained history (`None` when recording was off; `Err` when
    /// the recording itself was unsound — e.g. the clock rolled over
    /// inside the window — which must fail loudly, never be checked).
    pub history: Option<Result<History, RecordingError>>,
    /// Backend label for reports.
    pub backend_label: &'static str,
    /// Checker options matching the backend.
    pub check_opts: CheckOpts,
}

fn measure_opts(opts: &RecordOpts) -> MeasureOpts {
    MeasureOpts::default()
        .with_threads(opts.threads)
        .with_warmup(Duration::from_millis((opts.duration_ms / 4).max(1)))
        .with_duration(Duration::from_millis(opts.duration_ms.max(1)))
        .with_seed(opts.seed)
}

fn run_workload<H: TmHandle>(tm: H, opts: &RecordOpts) -> Measurement {
    let mopts = measure_opts(opts);
    let stats = {
        let tm = tm.clone();
        move || tm.stats_snapshot()
    };
    match opts.workload {
        RecWorkload::IntsetRbtree => {
            let set = RbTree::new(tm);
            run_intset(
                &set,
                IntSetWorkload::new(opts.size, opts.update_pct),
                mopts,
                &stats,
            )
        }
        RecWorkload::IntsetList => {
            let set = LinkedList::new(tm);
            run_intset(
                &set,
                IntSetWorkload::new(opts.size, opts.update_pct),
                mopts,
                &stats,
            )
        }
        RecWorkload::Overwrite => {
            let list = LinkedList::new(tm);
            run_overwrite(
                &list,
                IntSetWorkload::new(opts.size, opts.update_pct),
                mopts,
                &stats,
            )
        }
        RecWorkload::Vacation => {
            let workload = VacationWorkload {
                n_resources: opts.size.max(8),
                n_customers: (opts.size / 4).max(4),
                ..VacationWorkload::default()
            };
            run_vacation(tm, workload, mopts)
        }
    }
}

/// Run `run` while a side thread performs `n` reconfigurations spread
/// evenly across `total` (the workload's warm-up + window). The side
/// thread stops promptly once the workload returns.
fn run_with_reconfigures<R: Send>(
    n: usize,
    total: Duration,
    reconfigure: impl Fn(usize) + Sync,
    run: impl FnOnce() -> R,
) -> R {
    if n == 0 {
        return run();
    }
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let interval = total / (n as u32 + 1);
            for i in 0..n {
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if done.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                if done.load(Ordering::Relaxed) {
                    return;
                }
                reconfigure(i);
            }
        });
        let r = run();
        done.store(true, Ordering::Relaxed);
        r
    })
}

/// The run's total wall span the reconfigure thread spreads over.
fn run_span(opts: &RecordOpts) -> Duration {
    Duration::from_millis(opts.duration_ms.max(1) + (opts.duration_ms / 4).max(1))
}

/// Run the workload, recording if requested, and drain the history.
pub fn run_recorded(opts: &RecordOpts) -> RecordOutcome {
    run_recorded_inner(opts, None)
}

/// [`run_recorded`], with the backend registered on `reporter` and its
/// hot-path telemetry instruments enabled for the run — scrape the
/// reporter after this returns for the run's metrics.
pub fn run_recorded_with_metrics(opts: &RecordOpts, reporter: &MetricsReporter) -> RecordOutcome {
    run_recorded_inner(opts, Some(reporter))
}

fn run_recorded_inner(opts: &RecordOpts, reporter: Option<&MetricsReporter>) -> RecordOutcome {
    let sink = opts.record.then(TraceSink::new);
    let measurement = match opts.backend {
        RecBackend::TinyWb | RecBackend::TinyWt => {
            let strategy = if opts.backend == RecBackend::TinyWb {
                AccessStrategy::WriteBack
            } else {
                AccessStrategy::WriteThrough
            };
            let base = StmConfig::default()
                .with_strategy(strategy)
                .with_cm(opts.cm);
            let stm = Stm::new(base).expect("record config valid");
            if let Some(rep) = reporter {
                stm.telemetry().set_enabled(true);
                rep.register(Arc::new(stm.clone()));
            }
            if let Some(sink) = &sink {
                stm.attach_trace(sink);
            }
            let m = run_with_reconfigures(
                opts.reconfigures,
                run_span(opts),
                |i| {
                    // Alternate between two geometries that really
                    // renumber stripes (different mask *and* shift).
                    let cfg = if i % 2 == 0 {
                        base.with_locks_log2(12).with_shifts(1)
                    } else {
                        base
                    };
                    stm.reconfigure(cfg).expect("alternate config valid");
                },
                || run_workload(stm.clone(), opts),
            );
            stm.detach_trace();
            m
        }
        RecBackend::Tl2 => {
            let base = Tl2Config::default().with_cm(opts.cm);
            let tl2 = Tl2::new(base).expect("record config valid");
            if let Some(rep) = reporter {
                tl2.telemetry().set_enabled(true);
                rep.register(Arc::new(tl2.clone()));
            }
            if let Some(sink) = &sink {
                tl2.attach_trace(sink);
            }
            let m = run_with_reconfigures(
                opts.reconfigures,
                run_span(opts),
                |i| {
                    let cfg = if i % 2 == 0 {
                        base.with_locks_log2(12).with_shifts(1)
                    } else {
                        base
                    };
                    tl2.reconfigure(cfg).expect("alternate config valid");
                },
                || run_workload(tl2.clone(), opts),
            );
            tl2.detach_trace();
            m
        }
    };
    // Safe drain: every workload driver joins its worker scope before
    // returning, so the close-and-wait handshake completes immediately;
    // an unsound window (clock roll-over) surfaces as `Err`.
    let history = sink.map(|sink: Arc<TraceSink>| sink.drain_history());
    RecordOutcome {
        measurement,
        history,
        backend_label: opts.backend.label(),
        check_opts: opts.backend.check_opts(),
    }
}

/// Report for one **sampled** window of a [`run_sampled_windows`] run
/// (windows the sampler skipped leave no report).
#[derive(Debug)]
pub struct WindowReport {
    /// Global window index (the sampler records every k-th, from 0).
    pub window: usize,
    /// The checker's verdict on the window's drained history.
    pub outcome: stm_telemetry::WindowOutcome,
    /// Committed transactions inside the window's history.
    pub committed: usize,
    /// Reconfigure epochs the window's history spans (ascending).
    pub epochs: Vec<u64>,
    /// Whole attempts skipped because the window's event cap filled.
    pub skipped_attempts: u64,
    /// Checker findings / recording error when the outcome isn't clean.
    pub detail: Option<String>,
}

/// Outcome of a [`run_sampled_windows`] run.
#[derive(Debug)]
pub struct SampledOutcome {
    /// Total windows driven (sampled and skipped).
    pub windows: usize,
    /// One report per sampled window, in order.
    pub reports: Vec<WindowReport>,
    /// The sampler's own counters (seen/sampled/clean/…).
    pub counts: stm_telemetry::SamplerCounts,
    /// Commits summed over every window's measurement.
    pub commits: u64,
    /// Union of reconfigure epochs across sampled histories, ascending.
    pub epochs_seen: Vec<u64>,
    /// Backend label for reports.
    pub backend_label: &'static str,
}

impl SampledOutcome {
    /// True iff every sampled window checked clean.
    pub fn all_clean(&self) -> bool {
        self.reports
            .iter()
            .all(|r| r.outcome == stm_telemetry::WindowOutcome::Clean)
    }
}

/// The continuous-checking loop shared by the backends: drive `windows`
/// consecutive workload windows on `tm`, attaching a fresh bounded sink
/// for every window the `sampler` elects, and check each sampled
/// window's history as soon as it drains.
///
/// Sampled windows are always checked with the sampler's
/// [`stm_telemetry::Sampler::check_opts`] (version inflation allowed):
/// a sink attached mid-run observes versions whose writers committed
/// before the window opened, on every backend.
fn sampled_loop<H: TmHandle>(
    tm: H,
    attach: &dyn Fn(&Arc<TraceSink>),
    detach: &dyn Fn(),
    opts: &RecordOpts,
    windows: usize,
    sampler: &stm_telemetry::Sampler,
) -> (Vec<WindowReport>, u64, Vec<u64>) {
    use stm_telemetry::WindowOutcome;
    let check_opts = sampler.check_opts();
    let mut reports = Vec::new();
    let mut commits = 0u64;
    let mut epochs_seen = std::collections::BTreeSet::new();
    for window in 0..windows {
        let sink = sampler.begin_window(0);
        if let Some(sink) = &sink {
            attach(sink);
        }
        let m = run_workload(tm.clone(), opts);
        commits += m.commits;
        let Some(sink) = sink else { continue };
        detach();
        let skipped_attempts = sink.skipped_attempts();
        let (outcome, committed, epochs, detail) = match sink.drain_history() {
            Err(e) => (WindowOutcome::Unsound, 0, Vec::new(), Some(e.to_string())),
            Ok(history) => {
                let epochs = history.epochs();
                epochs_seen.extend(epochs.iter().copied());
                let (committed, _, _, _, _) = history.totals();
                let report = stm_check::check_history(&history, &check_opts);
                if report.is_clean() {
                    (WindowOutcome::Clean, committed, epochs, None)
                } else {
                    (
                        WindowOutcome::Violation,
                        committed,
                        epochs,
                        Some(report.to_string()),
                    )
                }
            }
        };
        sampler.note_result(0, outcome, skipped_attempts);
        reports.push(WindowReport {
            window,
            outcome,
            committed,
            epochs,
            skipped_attempts,
            detail,
        });
    }
    (reports, commits, epochs_seen.into_iter().collect())
}

/// Continuous sampled checking: drive `windows` consecutive windows of
/// the workload on one backend instance, recording every
/// `sample_every`-th window into a fresh sink bounded at `event_cap`
/// events and checking it immediately — the telemetry plane's "checker
/// as a continuous monitor" mode. `opts.reconfigures` reconfigurations
/// are spread across the *whole* run, so sampled histories cross
/// reconfigure-epoch boundaries like production windows would.
pub fn run_sampled_windows(
    opts: &RecordOpts,
    windows: usize,
    sample_every: usize,
    event_cap: u64,
) -> SampledOutcome {
    run_sampled_windows_inner(opts, windows, sample_every, event_cap, None)
}

/// [`run_sampled_windows`], with the backend *and* the sampler
/// registered on `reporter` (so the exposition carries the
/// `stm_sampler_windows_*` families next to the transaction counters).
pub fn run_sampled_windows_with_metrics(
    opts: &RecordOpts,
    windows: usize,
    sample_every: usize,
    event_cap: u64,
    reporter: &MetricsReporter,
) -> SampledOutcome {
    run_sampled_windows_inner(opts, windows, sample_every, event_cap, Some(reporter))
}

fn run_sampled_windows_inner(
    opts: &RecordOpts,
    windows: usize,
    sample_every: usize,
    event_cap: u64,
    reporter: Option<&MetricsReporter>,
) -> SampledOutcome {
    let windows = windows.max(1);
    let sampler = Arc::new(stm_telemetry::Sampler::new(
        1,
        stm_telemetry::SamplerConfig {
            every: sample_every as u64,
            event_cap,
        },
    ));
    if let Some(rep) = reporter {
        rep.register(sampler.clone());
    }
    let total = run_span(opts) * windows as u32;
    let (reports, commits, epochs_seen) = match opts.backend {
        RecBackend::TinyWb | RecBackend::TinyWt => {
            let strategy = if opts.backend == RecBackend::TinyWb {
                AccessStrategy::WriteBack
            } else {
                AccessStrategy::WriteThrough
            };
            let base = StmConfig::default()
                .with_strategy(strategy)
                .with_cm(opts.cm);
            let stm = Stm::new(base).expect("record config valid");
            if let Some(rep) = reporter {
                stm.telemetry().set_enabled(true);
                rep.register(Arc::new(stm.clone()));
            }
            run_with_reconfigures(
                opts.reconfigures,
                total,
                |i| {
                    let cfg = if i % 2 == 0 {
                        base.with_locks_log2(12).with_shifts(1)
                    } else {
                        base
                    };
                    stm.reconfigure(cfg).expect("alternate config valid");
                },
                || {
                    sampled_loop(
                        stm.clone(),
                        &|sink| stm.attach_trace(sink),
                        &|| stm.detach_trace(),
                        opts,
                        windows,
                        &sampler,
                    )
                },
            )
        }
        RecBackend::Tl2 => {
            let base = Tl2Config::default().with_cm(opts.cm);
            let tl2 = Tl2::new(base).expect("record config valid");
            if let Some(rep) = reporter {
                tl2.telemetry().set_enabled(true);
                rep.register(Arc::new(tl2.clone()));
            }
            run_with_reconfigures(
                opts.reconfigures,
                total,
                |i| {
                    let cfg = if i % 2 == 0 {
                        base.with_locks_log2(12).with_shifts(1)
                    } else {
                        base
                    };
                    tl2.reconfigure(cfg).expect("alternate config valid");
                },
                || {
                    sampled_loop(
                        tl2.clone(),
                        &|sink| tl2.attach_trace(sink),
                        &|| tl2.detach_trace(),
                        opts,
                        windows,
                        &sampler,
                    )
                },
            )
        }
    };
    SampledOutcome {
        windows,
        reports,
        counts: sampler.counts(0),
        commits,
        epochs_seen,
        backend_label: opts.backend.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_check::check_history;

    fn quick(backend: RecBackend, workload: RecWorkload) -> RecordOpts {
        RecordOpts {
            backend,
            workload,
            threads: 2,
            duration_ms: 20,
            size: 32,
            ..RecordOpts::default()
        }
    }

    #[test]
    fn recorded_intset_history_is_clean() {
        let out = run_recorded(&quick(RecBackend::TinyWb, RecWorkload::IntsetRbtree));
        assert!(out.measurement.commits > 0);
        let history = out.history.expect("recording was on").expect("sound");
        let (committed, _, _, _, _) = history.totals();
        assert!(committed > 0, "populate alone commits");
        let report = check_history(&history, &out.check_opts);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn recording_off_yields_no_history() {
        let mut opts = quick(RecBackend::Tl2, RecWorkload::IntsetList);
        opts.record = false;
        let out = run_recorded(&opts);
        assert!(out.history.is_none());
        assert!(out.measurement.commits > 0);
    }

    #[test]
    fn vacation_on_tl2_records_and_checks() {
        let out = run_recorded(&quick(RecBackend::Tl2, RecWorkload::Vacation));
        let history = out.history.expect("recording was on").expect("sound");
        let report = check_history(&history, &out.check_opts);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn mid_window_reconfigure_records_multi_epoch_clean_history() {
        // The tentpole's acceptance shape: a recorded window crossing
        // reconfigure boundaries must still check clean on every
        // backend, with the history really spanning > 1 epoch.
        for backend in RecBackend::ALL {
            let mut opts = quick(backend, RecWorkload::IntsetList);
            opts.duration_ms = 40;
            opts.reconfigures = 3;
            let out = run_recorded(&opts);
            let history = out
                .history
                .expect("recording was on")
                .expect("reconfigure must not make the recording unsound");
            assert!(
                history.epochs().len() > 1,
                "{}: no reconfigure landed inside the window ({} epochs)",
                backend.label(),
                history.epochs().len()
            );
            let report = check_history(&history, &out.check_opts);
            assert!(report.is_clean(), "{}: {report}", backend.label());
        }
    }

    #[test]
    fn sampled_windows_check_clean_and_follow_cadence() {
        // 6 windows at cadence 2 ⇒ windows 0, 2, 4 sampled; every
        // sampled window must drain and check clean, even with
        // reconfigurations landing mid-run.
        for backend in RecBackend::ALL {
            let mut opts = quick(backend, RecWorkload::IntsetList);
            opts.duration_ms = 10;
            opts.reconfigures = 2;
            let out = run_sampled_windows(&opts, 6, 2, 1 << 16);
            assert_eq!(out.windows, 6);
            assert_eq!(out.counts.seen, 6, "{}", backend.label());
            assert_eq!(out.counts.sampled, 3, "{}", backend.label());
            assert_eq!(out.reports.len(), 3);
            assert_eq!(
                out.reports.iter().map(|r| r.window).collect::<Vec<_>>(),
                vec![0, 2, 4]
            );
            assert!(
                out.all_clean(),
                "{}: {:?}",
                backend.label(),
                out.reports
                    .iter()
                    .filter_map(|r| r.detail.as_deref())
                    .collect::<Vec<_>>()
            );
            assert_eq!(out.counts.clean, 3);
            assert!(out.commits > 0);
        }
    }

    #[test]
    fn sampled_window_event_cap_skips_attempts_loudly() {
        // A tiny cap: the recorded windows overflow, attempts are
        // skipped whole (history still checks clean), and the overflow
        // is tallied — never silent.
        let mut opts = quick(RecBackend::TinyWb, RecWorkload::IntsetList);
        opts.duration_ms = 15;
        let out = run_sampled_windows(&opts, 2, 1, 64);
        assert_eq!(out.counts.sampled, 2);
        assert!(
            out.reports.iter().any(|r| r.skipped_attempts > 0),
            "cap of 64 events must overflow: {:?}",
            out.reports
        );
        assert!(out.counts.overflowed > 0);
        // Skipping whole attempts keeps the retained history checkable.
        assert!(out.all_clean(), "{:?}", out.reports);
    }

    #[test]
    fn parse_labels_roundtrip() {
        for b in RecBackend::ALL {
            assert_eq!(RecBackend::parse(b.label()), Some(b));
        }
        for w in [
            RecWorkload::IntsetRbtree,
            RecWorkload::IntsetList,
            RecWorkload::Overwrite,
            RecWorkload::Vacation,
        ] {
            assert_eq!(RecWorkload::parse(w.label()), Some(w));
        }
        assert!(RecBackend::parse("mutex").is_none());
        assert!(RecWorkload::parse("skiplist").is_none());
    }
}
