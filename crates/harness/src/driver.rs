//! The measurement driver: spawn worker threads, warm up, measure
//! committed-transaction throughput over a wall-clock window.
//!
//! Mirrors the paper's harness (Section 3.3): per-thread deterministic
//! random streams, a fixed measurement duration, throughput reported as
//! transactions per second, aborts reported alongside (Figure 4).

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};
use stm_api::stats::BasicStats;
use stm_api::AbortReason;

/// Driver options.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOpts {
    /// Worker threads to spawn.
    pub threads: usize,
    /// Warm-up excluded from measurement.
    pub warmup: Duration,
    /// Measurement window.
    pub duration: Duration,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts {
            threads: 1,
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(500),
            seed: 0x7153_77AD,
        }
    }
}

impl MeasureOpts {
    /// Builder-style setter for the thread count.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Builder-style setter for the measurement window.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder-style setter for the warm-up window.
    pub fn with_warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Result of one measurement window.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Actual measured wall time.
    pub elapsed: Duration,
    /// Commits inside the window.
    pub commits: u64,
    /// Aborts inside the window.
    pub aborts: u64,
    /// Aborts broken down by reason, indexed per [`AbortReason::ALL`]
    /// (the taxonomy the perf records persist).
    pub aborts_by_reason: [u64; AbortReason::ALL.len()],
    /// Commits per second.
    pub throughput: f64,
    /// Aborts per second (Figure 4's unit).
    pub abort_rate: f64,
    /// Aborts / attempts.
    pub abort_ratio: f64,
    /// Threads used.
    pub threads: usize,
    /// Commit-timestamp acquisition conflicts inside the window (see
    /// [`BasicStats::clock_conflicts`]) — the commit-clock contention
    /// signal the shard-scaling bench gates on.
    pub clock_conflicts: u64,
    /// Workers that panicked during the run. Non-zero means the window
    /// was cut short and the counters are *partial* — still emitted so
    /// a failed run leaves a diagnosable record instead of nothing.
    pub worker_panics: u64,
}

impl Measurement {
    fn from_stats(
        delta: BasicStats,
        elapsed: Duration,
        threads: usize,
        worker_panics: u64,
    ) -> Measurement {
        let secs = elapsed.as_secs_f64().max(1e-9);
        Measurement {
            elapsed,
            commits: delta.commits,
            aborts: delta.aborts,
            aborts_by_reason: delta.aborts_by_reason,
            throughput: delta.commits as f64 / secs,
            abort_rate: delta.aborts as f64 / secs,
            abort_ratio: delta.abort_ratio(),
            threads,
            clock_conflicts: delta.clock_conflicts,
            worker_panics,
        }
    }

    /// True when a worker died and the counters cover a partial window.
    pub fn is_partial(&self) -> bool {
        self.worker_panics > 0
    }
}

/// Drive `opts.threads` workers running `make_op(t)` closures in a loop,
/// measuring committed throughput via `stats_fn` deltas.
///
/// `make_op` builds one stateful operation closure per thread (the
/// paper's harness keeps per-thread toggle state: update transactions
/// alternately add a new element and remove the last inserted one).
pub fn drive<F, G>(
    opts: MeasureOpts,
    stats_fn: &(dyn Fn() -> BasicStats + Sync),
    make_op: G,
) -> Measurement
where
    F: FnMut(&mut SmallRng) + Send,
    G: Fn(usize) -> F + Sync,
{
    let stop = AtomicBool::new(false);
    let panics = AtomicU64::new(0);
    let mut result = None;
    std::thread::scope(|scope| {
        for t in 0..opts.threads {
            let stop = &stop;
            let panics = &panics;
            let make_op = &make_op;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(opts.seed.wrapping_add(t as u64));
                let mut op = make_op(t);
                while !stop.load(Ordering::Relaxed) {
                    // A panicking worker must not take the whole
                    // measurement down (a panic escaping a scoped thread
                    // re-panics on join): record it, stop every worker,
                    // and let the driver report the partial window.
                    if std::panic::catch_unwind(AssertUnwindSafe(|| op(&mut rng))).is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        }
        // Sleep in ~1 ms slices so a worker panic ends the window at
        // the panic, not at the scheduled deadline. Sleeping the full
        // duration would dilute a partial window's throughput: the
        // post-window stats delta still holds the panicked workers'
        // pre-panic commits, but the divisor would include dead time in
        // which every worker had already stopped.
        sliced_sleep(opts.warmup, &stop);
        let before = stats_fn();
        let started = Instant::now();
        sliced_sleep(opts.duration, &stop);
        let after = stats_fn();
        let elapsed = started.elapsed();
        stop.store(true, Ordering::SeqCst);
        result = Some(Measurement::from_stats(
            after.since(&before),
            elapsed,
            opts.threads,
            panics.load(Ordering::Relaxed),
        ));
    });
    let mut m = result.expect("scope completed");
    // Workers may still panic between the post-window snapshot and
    // scope exit; fold those in so the record reflects every failure.
    m.worker_panics = panics.load(Ordering::Relaxed);
    m
}

/// Sleep for `total`, waking every ~1 ms to bail out early once `stop`
/// is set (a panicked worker sets it; see [`drive`]).
fn sliced_sleep(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(1)));
    }
}

/// Drive workers indefinitely while a coordinator closure runs (used by
/// the auto-tuning experiments, where the coordinator reconfigures the
/// STM between measurement periods). The coordinator receives a stats
/// closure and returns its own result; workers stop when it returns.
pub fn drive_with_coordinator<F, G, R>(
    opts: MeasureOpts,
    make_op: G,
    coordinator: impl FnOnce() -> R,
) -> R
where
    F: FnMut(&mut SmallRng) + Send,
    G: Fn(usize) -> F + Sync,
{
    let stop = AtomicBool::new(false);
    let panics = AtomicU64::new(0);
    let mut result = None;
    std::thread::scope(|scope| {
        for t in 0..opts.threads {
            let stop = &stop;
            let panics = &panics;
            let make_op = &make_op;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(opts.seed.wrapping_add(t as u64));
                let mut op = make_op(t);
                while !stop.load(Ordering::Relaxed) {
                    if std::panic::catch_unwind(AssertUnwindSafe(|| op(&mut rng))).is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        }
        result = Some(coordinator());
        stop.store(true, Ordering::SeqCst);
    });
    let worker_panics = panics.load(Ordering::Relaxed);
    if worker_panics > 0 {
        eprintln!("stm-harness: {worker_panics} worker(s) panicked; coordinator result is partial");
    }
    result.expect("coordinator ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicU64;

    #[test]
    fn drive_measures_committed_work() {
        // Fake backend: an atomic counter standing in for commits.
        let commits = AtomicU64::new(0);
        let stats = || BasicStats {
            commits: commits.load(Ordering::Relaxed),
            ..BasicStats::ZERO
        };
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(10))
            .with_duration(Duration::from_millis(50));
        let m = drive(opts, &stats, |_t| {
            let commits = &commits;
            move |_rng: &mut SmallRng| {
                commits.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });
        assert!(m.commits > 0, "no work measured");
        assert!(m.throughput > 0.0);
        assert_eq!(m.aborts, 0);
        assert_eq!(m.threads, 2);
    }

    #[test]
    fn coordinator_variant_returns_result() {
        let commits = AtomicU64::new(0);
        let opts = MeasureOpts::default().with_threads(1);
        let out = drive_with_coordinator(
            opts,
            |_t| {
                let commits = &commits;
                move |_rng: &mut SmallRng| {
                    commits.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            },
            || {
                std::thread::sleep(Duration::from_millis(30));
                42
            },
        );
        assert_eq!(out, 42);
        assert!(commits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn measurement_math() {
        let delta = BasicStats {
            commits: 1000,
            aborts: 100,
            aborts_by_reason: [100, 0, 0, 0, 0, 0, 0, 0],
            clock_conflicts: 42,
        };
        let m = Measurement::from_stats(delta, Duration::from_secs(2), 4, 0);
        assert_eq!(m.clock_conflicts, 42);
        assert!((m.throughput - 500.0).abs() < 1e-9);
        assert!((m.abort_rate - 50.0).abs() < 1e-9);
        assert!((m.abort_ratio - 100.0 / 1100.0).abs() < 1e-9);
        assert_eq!(m.aborts_by_reason[AbortReason::ReadLocked.index()], 100);
        assert!(!m.is_partial());
    }

    #[test]
    fn worker_panic_yields_partial_measurement_not_a_crash() {
        // One worker panics after a few ops; the driver must survive and
        // still report the work the other worker committed, flagged as
        // partial.
        let commits = AtomicU64::new(0);
        let stats = || BasicStats {
            commits: commits.load(Ordering::Relaxed),
            ..BasicStats::ZERO
        };
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(40));
        let m = drive(opts, &stats, |t| {
            let commits = &commits;
            let mut steps = 0u32;
            move |_rng: &mut SmallRng| {
                commits.fetch_add(1, Ordering::Relaxed);
                if t == 1 {
                    steps += 1;
                    if steps > 3 {
                        panic!("intentional test panic: worker failure injection");
                    }
                }
                std::thread::yield_now();
            }
        });
        assert!(m.is_partial(), "panic must be recorded");
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.threads, 2);
        // The pre-panic commits are still visible in the totals the
        // stats closure sees (partial, but diagnosable).
        assert!(commits.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn panic_cut_window_keeps_counters_and_true_elapsed() {
        // Both workers panic almost immediately into a long scheduled
        // window. The regression this guards (vs. the PR 2 partial-
        // window test above): the driver used to sleep out the *full*
        // duration after the panic, so the partial window's commits were
        // divided by dead time — silently underreporting throughput.
        // The sliced sleep must end the window at the panic instead.
        let commits = AtomicU64::new(0);
        let stats = || BasicStats {
            commits: commits.load(Ordering::Relaxed),
            ..BasicStats::ZERO
        };
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(2_000));
        let started = Instant::now();
        let m = drive(opts, &stats, |_t| {
            let commits = &commits;
            let mut steps = 0u32;
            move |_rng: &mut SmallRng| {
                commits.fetch_add(1, Ordering::Relaxed);
                // Pace the ops so the panic lands *inside* the measured
                // window (past the 5 ms warmup snapshot), ~60 ms in.
                std::thread::sleep(Duration::from_millis(2));
                steps += 1;
                if steps > 30 {
                    panic!("intentional test panic: worker failure injection");
                }
            }
        });
        let wall = started.elapsed();
        assert!(m.is_partial());
        // The pre-panic commits survived into the measurement...
        assert!(m.commits > 0, "panicked workers' partial counters lost");
        // ...and neither the reported window nor the call itself waited
        // out the 2 s schedule (generous bound for slow CI).
        assert!(
            m.elapsed < Duration::from_millis(1_000),
            "window not cut at the panic: {:?}",
            m.elapsed
        );
        assert!(
            wall < Duration::from_millis(1_500),
            "driver slept out the dead window: {wall:?}"
        );
        // Throughput is computed over the cut window, so it reflects the
        // pre-panic rate rather than commits-over-dead-time.
        assert!(m.throughput >= m.commits as f64 / 1.0);
    }
}
