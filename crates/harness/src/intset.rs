//! The paper's integer-set harness (Section 3.3).
//!
//! Differences from the TL2 harness that the paper calls out, faithfully
//! reproduced:
//!
//! * the structure is pre-populated with `initial_size` elements and its
//!   size stays *almost constant*: update transactions alternately add a
//!   new element and remove the last inserted one, so updates always
//!   write (they never fail on duplicate/missing keys);
//! * reads are `contains` on uniformly random keys;
//! * `update_pct` percent of operations are updates.
//!
//! The overwrite variant (Figure 4 right) replaces the add/remove pair
//! with a traversal that writes every node up to a random key.

use crate::driver::{drive, MeasureOpts, Measurement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_structures::TxSet;

/// Workload parameters for the intset benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct IntSetWorkload {
    /// Elements inserted before measurement; size stays ≈ constant.
    pub initial_size: u64,
    /// Keys are drawn from `[1, key_range]`; the paper uses twice the
    /// initial size so half the membership tests succeed.
    pub key_range: u64,
    /// Percentage (0–100) of operations that are updates.
    pub update_pct: u32,
}

impl IntSetWorkload {
    /// Standard workload: range = 2 × size (as in the TL2/TinySTM
    /// evaluations).
    pub fn new(initial_size: u64, update_pct: u32) -> IntSetWorkload {
        assert!(update_pct <= 100);
        IntSetWorkload {
            initial_size,
            key_range: initial_size * 2,
            update_pct,
        }
    }
}

/// Pre-populate `set` with `initial_size` distinct keys from the range,
/// deterministically from `seed`.
pub fn populate<S: TxSet + ?Sized>(set: &S, w: &IntSetWorkload, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inserted = 0;
    while inserted < w.initial_size {
        let key = rng.gen_range(1..=w.key_range);
        if set.add(key) {
            inserted += 1;
        }
    }
}

/// Per-thread operation state: the alternating add/remove toggle.
pub struct IntSetOp<'a, S: TxSet + ?Sized> {
    set: &'a S,
    workload: IntSetWorkload,
    /// `Some(k)` when the next update must remove `k`.
    last_inserted: Option<u64>,
}

impl<'a, S: TxSet + ?Sized> IntSetOp<'a, S> {
    /// Fresh per-thread state.
    pub fn new(set: &'a S, workload: IntSetWorkload) -> IntSetOp<'a, S> {
        IntSetOp {
            set,
            workload,
            last_inserted: None,
        }
    }

    /// Execute one harness operation.
    pub fn step(&mut self, rng: &mut SmallRng) {
        let w = &self.workload;
        if rng.gen_range(0..100) < w.update_pct {
            match self.last_inserted.take() {
                Some(k) => {
                    // Remove the element we inserted; if a collision with
                    // another thread stole it, the transaction still ran.
                    self.set.remove(k);
                }
                None => {
                    // Insert a fresh element (retry keys until new).
                    for _ in 0..64 {
                        let k = rng.gen_range(1..=w.key_range);
                        if self.set.add(k) {
                            self.last_inserted = Some(k);
                            break;
                        }
                    }
                }
            }
        } else {
            let k = rng.gen_range(1..=w.key_range);
            let _ = self.set.contains(k);
        }
    }
}

/// Run the full intset benchmark: populate, then measure.
pub fn run_intset<S: TxSet + ?Sized>(
    set: &S,
    workload: IntSetWorkload,
    opts: MeasureOpts,
    stats_fn: &(dyn Fn() -> stm_api::stats::BasicStats + Sync),
) -> Measurement {
    populate(set, &workload, opts.seed ^ 0xD1D1);
    drive(opts, stats_fn, |_t| {
        let mut op = IntSetOp::new(set, workload);
        move |rng: &mut SmallRng| op.step(rng)
    })
}

/// The overwrite workload of Figure 4 (right): `update_pct` percent of
/// operations traverse-and-overwrite up to a random key; the rest are
/// reads.
pub fn run_overwrite<H: stm_api::TmHandle>(
    list: &stm_structures::LinkedList<H>,
    workload: IntSetWorkload,
    opts: MeasureOpts,
    stats_fn: &(dyn Fn() -> stm_api::stats::BasicStats + Sync),
) -> Measurement {
    populate(list, &workload, opts.seed ^ 0xD1D1);
    drive(opts, stats_fn, |t| {
        let w = workload;
        let tag = t as u64;
        move |rng: &mut SmallRng| {
            let k = rng.gen_range(1..=w.key_range);
            if rng.gen_range(0..100) < w.update_pct {
                list.overwrite_to(k, tag);
            } else {
                let _ = list.contains(k);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use stm_api::model::MutexTm;
    use stm_api::TmHandle;
    use stm_structures::LinkedList;

    #[test]
    fn populate_reaches_exact_size() {
        let tm = MutexTm::new();
        let list = LinkedList::new(tm);
        let w = IntSetWorkload::new(64, 20);
        populate(&list, &w, 7);
        assert_eq!(list.snapshot_len(), 64);
        // Deterministic: same seed, same content.
        let list2 = LinkedList::new(MutexTm::new());
        populate(&list2, &w, 7);
        assert_eq!(list.keys(), list2.keys());
    }

    #[test]
    fn updates_keep_size_nearly_constant() {
        let tm = MutexTm::new();
        let list = LinkedList::new(tm);
        let w = IntSetWorkload::new(32, 100);
        populate(&list, &w, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut op = IntSetOp::new(&list, w);
        for _ in 0..200 {
            op.step(&mut rng);
        }
        let n = list.snapshot_len();
        assert!(
            (31..=33).contains(&n),
            "size drifted to {n} under alternating updates"
        );
    }

    #[test]
    fn zero_update_pct_never_writes() {
        let tm = MutexTm::new();
        let list = LinkedList::new(tm.clone());
        let w = IntSetWorkload::new(16, 0);
        populate(&list, &w, 3);
        let writes_before = tm.stats_snapshot().commits;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut op = IntSetOp::new(&list, w);
        for _ in 0..50 {
            op.step(&mut rng);
        }
        assert_eq!(list.snapshot_len(), 16);
        assert!(tm.stats_snapshot().commits > writes_before);
    }

    #[test]
    fn full_bench_roundtrip_smoke() {
        let tm = MutexTm::new();
        let list = LinkedList::new(tm.clone());
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(40));
        let stats = {
            let tm = tm.clone();
            move || tm.stats_snapshot()
        };
        let m = run_intset(&list, IntSetWorkload::new(32, 20), opts, &stats);
        assert!(m.commits > 0);
        assert!(m.throughput > 0.0);
    }

    #[test]
    fn overwrite_bench_smoke() {
        let tm = MutexTm::new();
        let list = LinkedList::new(tm.clone());
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(40));
        let stats = {
            let tm = tm.clone();
            move || tm.stats_snapshot()
        };
        let m = run_overwrite(&list, IntSetWorkload::new(32, 5), opts, &stats);
        assert!(m.commits > 0);
        assert_eq!(list.snapshot_len(), 32, "overwrite must not change size");
    }
}
