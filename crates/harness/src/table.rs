//! Plain-text series output for the benchmark harness.
//!
//! Every figure bench prints rows in a uniform, grep-able format:
//! a `# fig...` header naming the experiment, a column header, then one
//! comma-separated row per measured point — the same series the paper
//! plots.

use std::io::Write;

/// A simple CSV-ish table writer.
pub struct SeriesWriter<W: Write> {
    out: W,
}

impl<W: Write> SeriesWriter<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> SeriesWriter<W> {
        SeriesWriter { out }
    }

    /// Print the experiment header (`# <name>: <description>`).
    pub fn experiment(&mut self, name: &str, description: &str) {
        writeln!(self.out, "# {name}: {description}").expect("write");
    }

    /// Print the column header.
    pub fn columns(&mut self, cols: &[&str]) {
        writeln!(self.out, "{}", cols.join(",")).expect("write");
    }

    /// Print one row of cells.
    pub fn row(&mut self, cells: &[Cell]) {
        let line = cells.iter().map(Cell::render).collect::<Vec<_>>().join(",");
        writeln!(self.out, "{line}").expect("write");
    }

    /// Blank separator line between series.
    pub fn gap(&mut self) {
        writeln!(self.out).expect("write");
    }

    /// Consume and return the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl Default for SeriesWriter<std::io::Stdout> {
    fn default() -> Self {
        SeriesWriter::new(std::io::stdout())
    }
}

/// A table cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Text label.
    Str(String),
    /// Integer value.
    Int(u64),
    /// Float rendered with one decimal.
    F1(f64),
    /// Float rendered with three decimals.
    F3(f64),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::F1(v) => format!("{v:.1}"),
            Cell::F3(v) => format!("{v:.3}"),
        }
    }
}

/// Shorthand constructors.
pub fn s(v: impl Into<String>) -> Cell {
    Cell::Str(v.into())
}

/// Integer cell.
pub fn i(v: u64) -> Cell {
    Cell::Int(v)
}

/// One-decimal float cell.
pub fn f1(v: f64) -> Cell {
    Cell::F1(v)
}

/// Three-decimal float cell.
pub fn f3(v: f64) -> Cell {
    Cell::F3(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_csv_rows() {
        let mut w = SeriesWriter::new(Vec::new());
        w.experiment("fig02", "red-black tree throughput");
        w.columns(&["backend", "threads", "txs_per_sec"]);
        w.row(&[s("tinystm-wb"), i(4), f1(123456.78)]);
        w.gap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(
            text,
            "# fig02: red-black tree throughput\nbackend,threads,txs_per_sec\ntinystm-wb,4,123456.8\n\n"
        );
    }

    #[test]
    fn cell_render_formats() {
        assert_eq!(Cell::Int(7).render(), "7");
        assert_eq!(Cell::F1(1.25).render(), "1.2");
        assert_eq!(Cell::F3(0.12349).render(), "0.123");
        assert_eq!(s("x").render(), "x");
    }
}
