//! # stm-harness — the paper's workload harness
//!
//! Reproduces the measurement methodology of Section 3.3: pre-populated
//! structures of (almost) constant size, per-thread deterministic random
//! streams, update transactions that always write (alternating
//! add/remove), throughput in committed transactions per second and
//! abort rates per second, over configurable thread counts, sizes, and
//! update percentages.
//!
//! * [`driver`] — thread spawning + windowed measurement (closed-loop);
//! * [`open_loop`] — arrival-rate scheduled requests with per-request
//!   latency measured from the scheduled arrival (queueing included);
//! * [`intset`] — the red-black tree / linked list / overwrite harness;
//! * [`metrics`] — the [`MetricsReporter`]: scrape registered
//!   `stm-telemetry` sources, lint the exposition in-process, render
//!   Prometheus text / JSONL at exit;
//! * [`vacation_mix`] — the STAMP-style vacation mix (Figure 7);
//! * [`table`] — the series printer shared by the figure benches;
//! * [`record`] (feature `record`) — the `--record` mode: run any
//!   workload on a concrete backend with event recording attached and
//!   drain the history for the `stm-check` oracle (also exposed as the
//!   `stm-record` binary);
//! * [`durable`] (feature `durable`) — the `--durable` mode: a KV
//!   workload on the durable sharded engine with an optional mid-run
//!   crash, followed by WAL recovery and verification (plus the
//!   replay-equivalence oracle when `record` is also on); stores are
//!   in-memory by default or real files via `--file-store`;
//! * [`chaos`] (feature `durable`) — the `--chaos` mode: the same KV
//!   workload under deterministic seeded fault injection (transient
//!   bursts, torn appends, permanent failures, fsync errors), with a
//!   supervisor rejoining degraded shards and a no-lost-acked-commit
//!   verification pass;
//! * [`service_load`] (feature `durable`) — the `--service` mode:
//!   open-loop clients driving the multi-tenant [`stm_engine::StmService`]
//!   (per-shard group commit) with an optional mid-run power cut, a
//!   power-cycle, and the acked-survival verification.

#[cfg(feature = "durable")]
pub mod chaos;
pub mod driver;
#[cfg(feature = "durable")]
pub mod durable;
pub mod intset;
pub mod metrics;
pub mod open_loop;
#[cfg(feature = "record")]
pub mod record;
#[cfg(feature = "durable")]
pub mod service_load;
pub mod table;
pub mod vacation_mix;

#[cfg(feature = "durable")]
pub use chaos::{run_chaos, ChaosOpts, ChaosReport};
pub use driver::{drive, drive_with_coordinator, MeasureOpts, Measurement};
#[cfg(feature = "durable")]
pub use durable::{run_durable, DurBackend, DurableOpts, DurableReport};
pub use intset::{populate, run_intset, run_overwrite, IntSetOp, IntSetWorkload};
pub use metrics::MetricsReporter;
pub use open_loop::{run_open_loop, LatencyRecorder, OpenLoopOpts, OpenLoopResult};
#[cfg(feature = "record")]
pub use record::{
    run_recorded, run_recorded_with_metrics, run_sampled_windows, run_sampled_windows_with_metrics,
    RecBackend, RecWorkload, RecordOpts, RecordOutcome, SampledOutcome, WindowReport,
};
#[cfg(feature = "durable")]
pub use service_load::{run_service, ServiceOpts, ServiceReport};
pub use vacation_mix::{run_vacation, vacation_op, VacationWorkload};
