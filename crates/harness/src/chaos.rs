//! The `--chaos` driver mode (features `durable`): a threaded KV
//! workload on the durable engine with **deterministic seeded fault
//! injection** on every shard's store, a supervisor that rejoins
//! degraded shards while the workload runs, and a verification pass
//! asserting the fault-tolerance contract:
//!
//! * every **acknowledged** commit survives recovery — the recovered
//!   state equals the engine's in-memory state (memory holds exactly
//!   the acked writes: failed publishes roll back with zero memory
//!   effect);
//! * every write either succeeds or fails **typed** — no panic, no
//!   hang, no silent drop;
//! * with the `record` feature, the recovered log cross-checks against
//!   the recorded history (`stm_check::check_wal_commits`, prefix mode
//!   — mid-run rejoin checkpoints fold records into snapshots).
//!
//! ## Reproducibility
//!
//! The per-shard fault schedules are drawn from the seed alone
//! ([`stm_wal::FaultPlan::random`]), positioned in *append-attempt*
//! counts, so the same seed injects the same faults at the same log
//! positions regardless of thread interleaving. A failing run prints
//! the seed and every shard's schedule on stderr; `STM_CHAOS_SEED`
//! overrides the configured seed to replay a reported failure.

use crate::durable::DurBackend;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use stm_engine::{DurableEngine, ShardBackend, ShardHealth, WriteError};
use stm_tl2::{Tl2, Tl2Config};
use stm_wal::{CrashSwitch, FaultPlan, FaultStore, MemStore, WalStore};
use tinystm::{AccessStrategy, Stm, StmConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Backend to run.
    pub backend: DurBackend,
    /// Shard count.
    pub shards: usize,
    /// Key-space size.
    pub keys: usize,
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread (4 of 5 are puts).
    pub ops: usize,
    /// Fault events injected per shard.
    pub faults_per_shard: usize,
    /// Seed for the fault schedules and the workload streams
    /// (`STM_CHAOS_SEED` in the environment overrides it).
    pub seed: u64,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            backend: DurBackend::WriteBack,
            shards: 2,
            keys: 64,
            threads: 2,
            ops: 2_000,
            faults_per_shard: 3,
            seed: 0xC4A0_5EED,
        }
    }
}

/// What one chaos run produced.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed actually used (after any `STM_CHAOS_SEED` override).
    pub seed: u64,
    /// Per-shard fault schedules, human-readable.
    pub schedules: Vec<String>,
    /// Puts acknowledged (committed and synced).
    pub acked: u64,
    /// Puts rejected up front (shard Degraded/Quarantined).
    pub rejected: u64,
    /// Puts that failed typed inside their commit (shard degrading).
    pub wal_failed: u64,
    /// Shards Quarantined at the end (store permanently dead).
    pub quarantined: usize,
    /// Fault counters from the engine.
    pub fault_stats: stm_api::stats::FaultSnapshot,
    /// Per-shard health after the final rejoin sweep
    /// (`healthy` / `degraded` / `quarantined`).
    pub healths: Vec<String>,
    /// Verification failures (empty = the contract held).
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "seed {:#x}: {} acked, {} rejected, {} wal-failed, {} rejoin(s), \
             {} retry(ies), {} quarantined shard(s): {}",
            self.seed,
            self.acked,
            self.rejected,
            self.wal_failed,
            self.fault_stats.rejoins,
            self.fault_stats.wal_retries,
            self.quarantined,
            if self.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", self.failures.len())
            }
        )
    }
}

/// Run the chaos workload → supervise/rejoin → recover → verify flow.
/// `Err` means the run could not execute at all; contract violations
/// come back inside the report (and are printed to stderr with the
/// seed and schedules, so any failure is reproducible).
pub fn run_chaos(opts: &ChaosOpts) -> Result<ChaosReport, String> {
    if opts.shards == 0 || opts.keys == 0 || opts.threads == 0 {
        return Err("--chaos needs shards, keys and threads >= 1".to_string());
    }
    let mut opts = opts.clone();
    if let Ok(s) = std::env::var("STM_CHAOS_SEED") {
        opts.seed = parse_seed(&s).ok_or_else(|| format!("STM_CHAOS_SEED: bad seed {s:?}"))?;
    }
    match opts.backend {
        DurBackend::WriteBack => run_one::<Stm>(
            &opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteBack),
        ),
        DurBackend::WriteThrough => run_one::<Stm>(
            &opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteThrough),
        ),
        DurBackend::Tl2 => run_one::<Tl2>(&opts, &Tl2Config::default()),
    }
}

/// Accept decimal or `0x`-prefixed hex (the report prints hex).
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn run_one<B: ShardBackend>(opts: &ChaosOpts, config: &B::Config) -> Result<ChaosReport, String> {
    // Deterministic per-shard schedules: positions are append-attempt
    // counts on that shard's store. The horizon targets the log's
    // expected fill so every event can actually fire.
    let expected_appends_per_shard =
        ((opts.threads * opts.ops * 4 / 5) / opts.shards).max(8) as u64;
    let faults: Vec<Arc<FaultStore>> = (0..opts.shards)
        .map(|i| {
            let plan = FaultPlan::random(
                opts.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                opts.faults_per_shard,
                expected_appends_per_shard,
            );
            FaultStore::new(MemStore::new(CrashSwitch::unlimited()), plan)
        })
        .collect();
    let schedules: Vec<String> = faults
        .iter()
        .enumerate()
        .map(|(i, f)| format!("shard {i}: {}", f.plan()))
        .collect();
    let dyns: Vec<Arc<dyn WalStore>> = faults
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn WalStore>)
        .collect();
    let engine: DurableEngine<B> = DurableEngine::new(opts.shards, opts.keys, config, dyns)
        .map_err(|e| format!("chaos engine: {e}"))?;

    #[cfg(feature = "record")]
    let sinks: Vec<_> = (0..opts.shards)
        .map(|_| stm_check::TraceSink::new())
        .collect();
    #[cfg(feature = "record")]
    for (i, sink) in sinks.iter().enumerate() {
        engine.engine().shard(i).shard_attach_trace(sink);
    }

    let acked = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let wal_failed = AtomicU64::new(0);
    let live_workers = AtomicUsize::new(opts.threads);
    std::thread::scope(|scope| {
        // The supervisor: polls shard health and rejoins Degraded
        // shards while the workload runs (a Quarantined verdict is
        // terminal and left alone).
        scope.spawn(|| {
            while live_workers.load(Ordering::Acquire) > 0 {
                for i in 0..opts.shards {
                    if engine.health(i) == ShardHealth::Degraded {
                        // A failed rejoin quarantines the shard; the
                        // loop naturally stops retrying it.
                        let _ = engine.rejoin(i);
                    }
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        for t in 0..opts.threads as u64 {
            let engine = &engine;
            let (acked, rejected, wal_failed) = (&acked, &rejected, &wal_failed);
            let live_workers = &live_workers;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(opts.seed ^ (t << 32) ^ 0xC4A0);
                for i in 0..opts.ops {
                    let key = rng.gen_range(0u64..opts.keys as u64);
                    if i % 5 == 4 {
                        // Reads must serve in every health state.
                        engine.get(key);
                        continue;
                    }
                    match engine.put(key, (t << 48) | i as u64) {
                        Ok(()) => {
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(WriteError::Rejected { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            // Give the supervisor a beat to rejoin.
                            std::thread::yield_now();
                        }
                        Err(WriteError::Wal { .. }) => {
                            wal_failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                live_workers.fetch_sub(1, Ordering::Release);
            });
        }
    });

    // Final sweep: bring every still-Degraded shard back so the stores
    // hold a checkpoint of the acked state (Quarantined shards keep
    // their acked log prefix as-is).
    for i in 0..opts.shards {
        if engine.health(i) == ShardHealth::Degraded {
            let _ = engine.rejoin(i);
        }
    }
    #[cfg(feature = "record")]
    for i in 0..opts.shards {
        engine.engine().shard(i).shard_detach_trace();
    }
    let quarantined = (0..opts.shards)
        .filter(|&i| engine.health(i) == ShardHealth::Quarantined)
        .count();
    let fault_stats = engine.fault_stats();
    let healths: Vec<String> = (0..opts.shards)
        .map(|i| engine.health(i).to_string())
        .collect();
    let pre_state = engine.read_all();
    // Records appended to the log but never durability-confirmed (and
    // never acked): exempt from the replay oracle below. After the
    // final sweep this is non-empty only on Quarantined shards.
    let in_doubt: Vec<BTreeSet<(u64, u64)>> = (0..opts.shards)
        .map(|i| {
            engine
                .in_doubt(i)
                .iter()
                .map(|c| (c.epoch, c.commit_ts))
                .collect()
        })
        .collect();
    let stores: Vec<Arc<dyn WalStore>> = (0..opts.shards)
        .map(|i| Arc::clone(engine.store(i)))
        .collect();
    drop(engine);

    // Power-cycle onto healthy stores holding the surviving bytes (the
    // next incarnation's machine is new; the fault schedule died with
    // the old one).
    let boot: Vec<Arc<dyn WalStore>> = stores
        .iter()
        .map(|s| MemStore::rebooted(&**s) as Arc<dyn WalStore>)
        .collect();
    let mut failures = Vec::new();
    match DurableEngine::<B>::recover(opts.shards, opts.keys, config, boot) {
        Err(e) => failures.push(format!("recovery failed: {e}")),
        Ok((recovered, reports)) => {
            // The core contract: no acknowledged commit is lost. The
            // engine's memory held exactly the acked writes, so the
            // recovered state must reproduce it — including on shards
            // that degraded, rejoined, or died mid-run.
            let state = recovered.read_all();
            if state != pre_state {
                let diverged = state
                    .iter()
                    .filter(|(k, v)| pre_state.get(k) != Some(v))
                    .count();
                failures.push(format!(
                    "acked commits lost: {diverged} of {} keys diverged after recovery",
                    state.len()
                ));
            }
            #[cfg(feature = "record")]
            verify_replay(&sinks, &reports, &in_doubt, &mut failures);
            #[cfg(not(feature = "record"))]
            let _ = (&reports, &in_doubt);
        }
    }

    let report = ChaosReport {
        seed: opts.seed,
        schedules,
        acked: acked.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        wal_failed: wal_failed.load(Ordering::Relaxed),
        quarantined,
        fault_stats,
        healths,
        failures,
    };
    if !report.failures.is_empty() {
        // Reproduction recipe on stderr: seed + every shard's schedule.
        eprintln!(
            "chaos: FAILED with seed {:#x} (rerun with STM_CHAOS_SEED={:#x})",
            report.seed, report.seed
        );
        for s in &report.schedules {
            eprintln!("chaos:   {s}");
        }
        for f in &report.failures {
            eprintln!("chaos:   failure: {f}");
        }
    }
    Ok(report)
}

/// The replay oracle under chaos: every WAL record that survived to
/// recovery must correspond to a committed transaction in the recorded
/// history (prefix mode — rejoin checkpoints fold earlier records into
/// snapshots, so completeness is not required). In-doubt records (the
/// fsync-failed orphans) are exempt: their transactions rolled back.
#[cfg(feature = "record")]
fn verify_replay(
    sinks: &[Arc<stm_check::TraceSink>],
    reports: &[stm_wal::Recovery],
    in_doubt: &[BTreeSet<(u64, u64)>],
    failures: &mut Vec<String>,
) {
    for (shard, (sink, report)) in sinks.iter().zip(reports).enumerate() {
        let history = match sink.drain_history() {
            Ok(h) => h,
            Err(e) => {
                failures.push(format!("shard {shard}: recording unsound: {e}"));
                continue;
            }
        };
        let check = stm_check::check_history(&history, &stm_check::CheckOpts::default());
        if !check.is_clean() {
            failures.push(format!("shard {shard}: history not opaque:\n{check}"));
        }
        let commits: Vec<stm_check::WalCommit> = report
            .records
            .iter()
            .filter(|r| !in_doubt[shard].contains(&(r.epoch, r.commit_ts)))
            .map(|r| stm_check::WalCommit {
                epoch: r.epoch,
                commit_ts: r.commit_ts,
            })
            .collect();
        for v in stm_check::check_wal_commits(&history, &commits, false) {
            failures.push(format!("shard {shard}: {v}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_contract_holds_on_every_backend() {
        for backend in [
            DurBackend::WriteBack,
            DurBackend::WriteThrough,
            DurBackend::Tl2,
        ] {
            let report = run_chaos(&ChaosOpts {
                backend,
                ops: 800,
                ..ChaosOpts::default()
            })
            .unwrap();
            assert!(
                report.failures.is_empty(),
                "{backend:?} seed {:#x}: {:?}\nschedules: {:?}",
                report.seed,
                report.failures,
                report.schedules
            );
            assert!(report.acked > 0, "{backend:?}: nothing acked");
        }
    }

    #[test]
    fn chaos_is_seed_deterministic_in_schedule() {
        let a = run_chaos(&ChaosOpts {
            ops: 200,
            seed: 42,
            ..ChaosOpts::default()
        })
        .unwrap();
        let b = run_chaos(&ChaosOpts {
            ops: 200,
            seed: 42,
            ..ChaosOpts::default()
        })
        .unwrap();
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn seed_parses_dec_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed("0X2a"), Some(42));
        assert_eq!(parse_seed("zzz"), None);
    }
}
