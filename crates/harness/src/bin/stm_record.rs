//! `stm-record` — run a workload with transactional event recording and
//! (optionally) verify the history with the stm-check oracle.
//!
//! ```text
//! stm-record [options]
//!   --workload W     intset-rbtree | intset-list | overwrite | vacation
//!                    (default intset-rbtree)
//!   --backend B      wb | wt | tl2             (default wb)
//!   --threads N      worker threads            (default 2)
//!   --ms MS          measurement window in ms  (default 50)
//!   --size N         structure size            (default 64)
//!   --update-pct P   update percentage         (default 20)
//!   --cm POLICY      immediate | suicide | delay | backoff
//!                    (default immediate)
//!   --reconfigure N  perform N mid-window reconfigurations (the
//!                    recording segments per epoch and stays checkable)
//!   --seed S         base RNG seed
//!   --no-record      measure only, record nothing
//!   --check          run the opacity/serializability checker
//!   --dump PATH      write the history as readable text to PATH
//!
//! telemetry (record mode):
//!   --metrics OUT    scrape the backend's metrics at exit and write
//!                    the Prometheus text exposition to OUT (`-` for
//!                    stdout); the text is linted in-process first
//!   --metrics-jsonl PATH
//!                    also write the scrape as line-delimited JSON
//!   --sample-every K continuous sampled checking: drive --windows
//!                    consecutive windows, record every K-th into a
//!                    bounded sink and check it immediately; exits 1
//!                    unless every sampled window checks clean
//!   --windows N      windows to drive in sampled mode (default 8)
//!   --event-cap N    per-window event budget; overflowing windows
//!                    skip whole attempts, tallied loudly
//!                    (default 65536)
//!
//! durable mode (needs the `durable` cargo feature):
//!   --durable        run the KV workload on the durable sharded engine
//!                    instead (WAL + recovery); --backend/--threads/
//!                    --size/--seed apply, --size is the key space
//!   --shards N       shard count                (default 2)
//!   --crash-at N     cut the stores after N puts, then recover the
//!                    torn logs (default: clean shutdown)
//!   --recover-check  verify recovery: exact state match when clean,
//!                    second-incarnation durability, and (when built
//!                    with `record` too) the WAL/history replay oracle
//!   --file-store DIR back the WAL with real files under DIR (one
//!                    shard-N subdirectory per shard; DIR should start
//!                    empty) instead of in-memory stores
//!
//! chaos mode (needs the `durable` cargo feature):
//!   --chaos          run the KV workload under deterministic seeded
//!                    fault injection (transient bursts, torn appends,
//!                    permanent failures, fsync errors) with live
//!                    shard rejoin, then verify no acked commit is
//!                    lost; --backend/--threads/--size apply
//!   --chaos-seed S   fault-schedule seed (decimal or 0x-hex; the
//!                    STM_CHAOS_SEED env var overrides it — failures
//!                    print the seed + schedules on stderr)
//!   --chaos-faults N fault events injected per shard (default 3)
//!
//! service mode (needs the `durable` cargo feature):
//!   --service        drive the multi-tenant StmService (per-shard
//!                    group commit) with open-loop clients, then
//!                    power-cycle and assert no *acked* submission is
//!                    lost (staged-but-unflushed writes may
//!                    legitimately vanish); --backend/--shards/
//!                    --crash-at apply, --size is keys per tenant
//!   --clients N      client threads, one tenant each (default 4)
//!   --rate R         offered submissions/second across all clients
//!                    (default 0 = closed loop)
//! ```
//!
//! Exit codes: 0 clean, 1 checker violation, unsound recording (e.g. a
//! clock roll-over inside the window) or failed recovery verification,
//! 2 usage error. This is the CI `record-check`/`durability` gate: any
//! violation on any backend fails the job with a printed witness.

use std::process::ExitCode;
use stm_harness::record::{
    run_recorded, run_recorded_with_metrics, run_sampled_windows, run_sampled_windows_with_metrics,
    RecBackend, RecWorkload, RecordOpts,
};
use stm_harness::MetricsReporter;
use tinystm::CmPolicy;

/// Where `--metrics` writes the Prometheus exposition.
enum MetricsOut {
    Stdout,
    File(std::path::PathBuf),
}

struct Args {
    opts: RecordOpts,
    check: bool,
    dump: Option<std::path::PathBuf>,
    metrics: Option<MetricsOut>,
    metrics_jsonl: Option<std::path::PathBuf>,
    sample_every: Option<usize>,
    windows: usize,
    event_cap: u64,
    durable: bool,
    shards: usize,
    crash_at: Option<u64>,
    recover_check: bool,
    file_store: Option<std::path::PathBuf>,
    chaos: bool,
    chaos_seed: Option<u64>,
    chaos_faults: usize,
    service: bool,
    clients: usize,
    rate: u64,
}

fn usage() -> String {
    "usage: stm-record [--workload intset-rbtree|intset-list|overwrite|vacation] \
     [--backend wb|wt|tl2] [--threads N] [--ms MS] [--size N] [--update-pct P] \
     [--cm immediate|suicide|delay|backoff] [--reconfigure N] [--seed S] \
     [--no-record] [--check] [--dump PATH] \
     [--metrics -|PATH] [--metrics-jsonl PATH] \
     [--sample-every K [--windows N] [--event-cap N]] \
     [--durable [--shards N] [--crash-at N] [--recover-check] [--file-store DIR]] \
     [--chaos [--chaos-seed S] [--chaos-faults N]] \
     [--service [--clients N] [--rate R]]"
        .to_string()
}

/// Decimal or `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut opts = RecordOpts::default();
    let mut check = false;
    let mut dump = None;
    let mut metrics = None;
    let mut metrics_jsonl = None;
    let mut sample_every = None;
    let mut windows = 8usize;
    let mut event_cap = 1u64 << 16;
    let mut durable = false;
    let mut shards = 2usize;
    let mut crash_at = None;
    let mut recover_check = false;
    let mut file_store = None;
    let mut chaos = false;
    let mut chaos_seed = None;
    let mut chaos_faults = 3usize;
    let mut service = false;
    let mut clients = 4usize;
    let mut rate = 0u64;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => {
                let v = value("--workload")?;
                opts.workload =
                    RecWorkload::parse(v).ok_or_else(|| format!("unknown workload {v}"))?;
            }
            "--backend" => {
                let v = value("--backend")?;
                opts.backend =
                    RecBackend::parse(v).ok_or_else(|| format!("unknown backend {v}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--ms" => {
                opts.duration_ms = value("--ms")?.parse().map_err(|e| format!("--ms: {e}"))?;
            }
            "--size" => {
                opts.size = value("--size")?
                    .parse()
                    .map_err(|e| format!("--size: {e}"))?;
            }
            "--update-pct" => {
                opts.update_pct = value("--update-pct")?
                    .parse()
                    .map_err(|e| format!("--update-pct: {e}"))?;
                if opts.update_pct > 100 {
                    return Err("--update-pct must be <= 100".to_string());
                }
            }
            "--cm" => {
                let v = value("--cm")?;
                opts.cm = CmPolicy::parse(v).ok_or_else(|| format!("unknown cm policy {v}"))?;
            }
            "--reconfigure" => {
                opts.reconfigures = value("--reconfigure")?
                    .parse()
                    .map_err(|e| format!("--reconfigure: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--no-record" => opts.record = false,
            "--check" => check = true,
            "--dump" => dump = Some(std::path::PathBuf::from(value("--dump")?)),
            "--metrics" => {
                let v = value("--metrics")?;
                metrics = Some(if v == "-" {
                    MetricsOut::Stdout
                } else {
                    MetricsOut::File(std::path::PathBuf::from(v))
                });
            }
            "--metrics-jsonl" => {
                metrics_jsonl = Some(std::path::PathBuf::from(value("--metrics-jsonl")?));
            }
            "--sample-every" => {
                let k: usize = value("--sample-every")?
                    .parse()
                    .map_err(|e| format!("--sample-every: {e}"))?;
                if k == 0 {
                    return Err("--sample-every must be >= 1".to_string());
                }
                sample_every = Some(k);
            }
            "--windows" => {
                windows = value("--windows")?
                    .parse()
                    .map_err(|e| format!("--windows: {e}"))?;
                if windows == 0 {
                    return Err("--windows must be >= 1".to_string());
                }
            }
            "--event-cap" => {
                event_cap = value("--event-cap")?
                    .parse()
                    .map_err(|e| format!("--event-cap: {e}"))?;
            }
            "--durable" => durable = true,
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--crash-at" => {
                crash_at = Some(
                    value("--crash-at")?
                        .parse()
                        .map_err(|e| format!("--crash-at: {e}"))?,
                );
            }
            "--recover-check" => recover_check = true,
            "--file-store" => {
                file_store = Some(std::path::PathBuf::from(value("--file-store")?));
            }
            "--chaos" => chaos = true,
            "--chaos-seed" => {
                let v = value("--chaos-seed")?;
                chaos_seed =
                    Some(parse_u64(v).ok_or_else(|| format!("--chaos-seed: bad seed {v}"))?);
            }
            "--chaos-faults" => {
                chaos_faults = value("--chaos-faults")?
                    .parse()
                    .map_err(|e| format!("--chaos-faults: {e}"))?;
            }
            "--service" => service = true,
            "--clients" => {
                clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--rate" => {
                rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    if check && !opts.record {
        return Err("--check requires recording (drop --no-record)".to_string());
    }
    if sample_every.is_some() && !opts.record {
        return Err("--sample-every requires recording (drop --no-record)".to_string());
    }
    if sample_every.is_none() && (windows != 8 || event_cap != 1 << 16) {
        return Err("--windows/--event-cap need --sample-every".to_string());
    }
    if (durable || chaos)
        && (metrics.is_some() || metrics_jsonl.is_some() || sample_every.is_some())
    {
        return Err(
            "--metrics/--metrics-jsonl/--sample-every apply to record mode only".to_string(),
        );
    }
    if !durable && (recover_check || file_store.is_some()) {
        return Err("--recover-check/--file-store need --durable".to_string());
    }
    if !durable && !service && crash_at.is_some() {
        return Err("--crash-at needs --durable or --service".to_string());
    }
    if !chaos && (chaos_seed.is_some() || chaos_faults != 3) {
        return Err("--chaos-seed/--chaos-faults need --chaos".to_string());
    }
    if [chaos, durable, service].iter().filter(|&&m| m).count() > 1 {
        return Err("--chaos, --durable and --service are exclusive modes".to_string());
    }
    if !service && (clients != 4 || rate != 0) {
        return Err("--clients/--rate need --service".to_string());
    }
    if service && (metrics.is_some() || metrics_jsonl.is_some() || sample_every.is_some()) {
        return Err(
            "--metrics/--metrics-jsonl/--sample-every apply to record mode only".to_string(),
        );
    }
    Ok(Args {
        opts,
        check,
        dump,
        metrics,
        metrics_jsonl,
        sample_every,
        windows,
        event_cap,
        durable,
        shards,
        crash_at,
        recover_check,
        file_store,
        chaos,
        chaos_seed,
        chaos_faults,
        service,
        clients,
        rate,
    })
}

/// The `--service` mode: open-loop clients → StmService → (maybe)
/// power cut → power-cycle → acked-survival verification, via
/// [`stm_harness::service_load`].
#[cfg(feature = "durable")]
fn service_mode(args: &Args) -> ExitCode {
    use stm_harness::durable::DurBackend;
    use stm_harness::service_load::{run_service, ServiceOpts};
    let backend = match args.opts.backend {
        RecBackend::TinyWb => DurBackend::WriteBack,
        RecBackend::TinyWt => DurBackend::WriteThrough,
        RecBackend::Tl2 => DurBackend::Tl2,
    };
    let opts = ServiceOpts {
        backend,
        shards: args.shards,
        clients: args.clients,
        keys_per_tenant: args.opts.size as usize,
        rate: args.rate,
        crash_at: args.crash_at,
        ..ServiceOpts::default()
    };
    println!(
        "# stm-record --service: backend={} shards={} clients={} keys/tenant={} ops={} \
         rate={} crash_at={:?}",
        opts.backend.label(),
        opts.shards,
        opts.clients,
        opts.keys_per_tenant,
        opts.ops,
        opts.rate,
        opts.crash_at,
    );
    match run_service(&opts) {
        Err(e) => {
            eprintln!("stm-record: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!("{}", report.summary());
            print_fault_lines(&report.fault_stats, &report.healths);
            for f in &report.failures {
                eprintln!("FAILURE: {f}");
            }
            if report.failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}

#[cfg(not(feature = "durable"))]
fn service_mode(args: &Args) -> ExitCode {
    let _ = (args.clients, args.rate);
    eprintln!(
        "stm-record: this binary was built without the `durable` feature; \
         rebuild with `--features record,durable`"
    );
    ExitCode::from(2)
}

/// The `--durable` mode: workload → (maybe) crash → recover → verify,
/// via [`stm_harness::durable`].
#[cfg(feature = "durable")]
fn durable_mode(args: &Args) -> ExitCode {
    use stm_harness::durable::{run_durable, DurBackend, DurableOpts};
    let backend = match args.opts.backend {
        RecBackend::TinyWb => DurBackend::WriteBack,
        RecBackend::TinyWt => DurBackend::WriteThrough,
        RecBackend::Tl2 => DurBackend::Tl2,
    };
    let opts = DurableOpts {
        backend,
        shards: args.shards,
        keys: args.opts.size as usize,
        threads: args.opts.threads,
        crash_at: args.crash_at,
        recover_check: args.recover_check,
        seed: args.opts.seed,
        file_store: args.file_store.clone(),
        ..DurableOpts::default()
    };
    println!(
        "# stm-record --durable: backend={} shards={} keys={} threads={} ops={} \
         crash_at={:?} recover_check={}",
        opts.backend.label(),
        opts.shards,
        opts.keys,
        opts.threads,
        opts.ops,
        opts.crash_at,
        opts.recover_check,
    );
    match run_durable(&opts) {
        Err(e) => {
            eprintln!("stm-record: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!("{}", report.summary());
            print_fault_lines(&report.fault_stats, &report.healths);
            for f in &report.failures {
                eprintln!("FAILURE: {f}");
            }
            if report.failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}

/// The `--durable`/`--chaos` exit lines: the engine's fault counters
/// and every shard's final health state, one look before the process
/// dies (the same numbers a scrape would export as
/// `stm_wal_retries_total` … `stm_shard_health`).
#[cfg(feature = "durable")]
fn print_fault_lines(stats: &stm_api::stats::FaultSnapshot, healths: &[String]) {
    println!(
        "faults: wal_retries={} wal_faults={} degraded_rejects={} rejoins={}",
        stats.wal_retries, stats.wal_faults, stats.degraded_rejects, stats.rejoins,
    );
    let states: Vec<String> = healths
        .iter()
        .enumerate()
        .map(|(i, h)| format!("shard{i}={h}"))
        .collect();
    println!("health: {}", states.join(" "));
}

#[cfg(not(feature = "durable"))]
fn durable_mode(args: &Args) -> ExitCode {
    let _ = (
        args.shards,
        args.crash_at,
        args.recover_check,
        &args.file_store,
    );
    eprintln!(
        "stm-record: this binary was built without the `durable` feature; \
         rebuild with `--features record,durable`"
    );
    ExitCode::from(2)
}

/// The `--chaos` mode: workload under seeded fault injection → rejoin →
/// recover → verify, via [`stm_harness::chaos`].
#[cfg(feature = "durable")]
fn chaos_mode(args: &Args) -> ExitCode {
    use stm_harness::chaos::{run_chaos, ChaosOpts};
    use stm_harness::durable::DurBackend;
    let backend = match args.opts.backend {
        RecBackend::TinyWb => DurBackend::WriteBack,
        RecBackend::TinyWt => DurBackend::WriteThrough,
        RecBackend::Tl2 => DurBackend::Tl2,
    };
    let mut opts = ChaosOpts {
        backend,
        shards: args.shards,
        keys: args.opts.size as usize,
        threads: args.opts.threads,
        faults_per_shard: args.chaos_faults,
        ..ChaosOpts::default()
    };
    if let Some(seed) = args.chaos_seed {
        opts.seed = seed;
    }
    // Chaos runs fly with the recorder on: a quarantine dumps the
    // per-thread flight rings to stderr (see `DurableEngine::rejoin`),
    // which is exactly the run where that context matters.
    stm_telemetry::flight::set_enabled(true);
    println!(
        "# stm-record --chaos: backend={} shards={} keys={} threads={} ops={} \
         faults/shard={} seed={:#x}",
        opts.backend.label(),
        opts.shards,
        opts.keys,
        opts.threads,
        opts.ops,
        opts.faults_per_shard,
        opts.seed,
    );
    match run_chaos(&opts) {
        Err(e) => {
            eprintln!("stm-record: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            println!("{}", report.summary());
            print_fault_lines(&report.fault_stats, &report.healths);
            for s in &report.schedules {
                println!("  {s}");
            }
            if report.failures.is_empty() {
                ExitCode::SUCCESS
            } else {
                // run_chaos already printed the reproduction recipe.
                ExitCode::from(1)
            }
        }
    }
}

#[cfg(not(feature = "durable"))]
fn chaos_mode(args: &Args) -> ExitCode {
    let _ = (args.chaos_seed, args.chaos_faults);
    eprintln!(
        "stm-record: this binary was built without the `durable` feature; \
         rebuild with `--features record,durable`"
    );
    ExitCode::from(2)
}

/// Write the reporter's scrape wherever `--metrics`/`--metrics-jsonl`
/// point. A lint failure is a bug in a `MetricsSource`, reported like a
/// checker violation (exit 1), not a usage error.
fn emit_metrics(reporter: &MetricsReporter, args: &Args) -> Result<(), ExitCode> {
    if let Some(out) = &args.metrics {
        let text = match reporter.prometheus() {
            Ok(text) => text,
            Err(findings) => {
                for f in &findings {
                    eprintln!("stm-record: exposition lint: {f}");
                }
                return Err(ExitCode::from(1));
            }
        };
        match out {
            MetricsOut::Stdout => print!("{text}"),
            MetricsOut::File(path) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("stm-record: metrics {}: {e}", path.display());
                    return Err(ExitCode::from(2));
                }
                println!("metrics written to {}", path.display());
            }
        }
    }
    if let Some(path) = &args.metrics_jsonl {
        if let Err(e) = std::fs::write(path, reporter.jsonl()) {
            eprintln!("stm-record: metrics-jsonl {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
        println!("metrics JSONL written to {}", path.display());
    }
    Ok(())
}

/// The `--sample-every` mode: continuous sampled checking over
/// `--windows` consecutive windows.
fn sampled_mode(args: &Args, sample_every: usize, reporter: Option<&MetricsReporter>) -> ExitCode {
    let opts = &args.opts;
    println!(
        "# stm-record --sample-every {sample_every}: workload={} backend={} threads={} \
         ms={} windows={} event_cap={} reconfigures={}",
        opts.workload.label(),
        opts.backend.label(),
        opts.threads,
        opts.duration_ms,
        args.windows,
        args.event_cap,
        opts.reconfigures,
    );
    let out = match reporter {
        Some(rep) => {
            run_sampled_windows_with_metrics(opts, args.windows, sample_every, args.event_cap, rep)
        }
        None => run_sampled_windows(opts, args.windows, sample_every, args.event_cap),
    };
    for r in &out.reports {
        println!(
            "window {:>3}: {:?} ({} committed, epochs {:?}, {} attempt(s) skipped)",
            r.window, r.outcome, r.committed, r.epochs, r.skipped_attempts,
        );
        if let Some(detail) = &r.detail {
            eprintln!("window {}: {detail}", r.window);
        }
    }
    let c = &out.counts;
    println!(
        "sampler: {}/{} windows sampled, {} clean, {} violation(s), {} unsound, \
         {} overflowed; {} commits total; epochs seen {:?}",
        c.sampled,
        c.seen,
        c.clean,
        c.violations,
        c.unsound,
        c.overflowed,
        out.commits,
        out.epochs_seen,
    );
    if let Some(rep) = reporter {
        if let Err(code) = emit_metrics(rep, args) {
            return code;
        }
    }
    if out.all_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    // Any worker panic dumps the flight rings before unwinding — cheap
    // insurance, and a no-op while the recorder stays disabled.
    stm_telemetry::flight::install_panic_hook();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.chaos {
        return chaos_mode(&args);
    }
    if args.durable {
        return durable_mode(&args);
    }
    if args.service {
        return service_mode(&args);
    }

    let reporter =
        (args.metrics.is_some() || args.metrics_jsonl.is_some()).then(MetricsReporter::new);
    if let Some(k) = args.sample_every {
        return sampled_mode(&args, k, reporter.as_ref());
    }

    let opts = args.opts;
    println!(
        "# stm-record: workload={} backend={} threads={} ms={} size={} update%={} cm={} \
         reconfigures={} record={}",
        opts.workload.label(),
        opts.backend.label(),
        opts.threads,
        opts.duration_ms,
        opts.size,
        opts.update_pct,
        opts.cm.label(),
        opts.reconfigures,
        opts.record,
    );
    let out = match &reporter {
        Some(rep) => run_recorded_with_metrics(&opts, rep),
        None => run_recorded(&opts),
    };
    let m = &out.measurement;
    println!(
        "throughput: {:.1} txs/s, {} commits, {} aborts (ratio {:.4}), {} panics",
        m.throughput, m.commits, m.aborts, m.abort_ratio, m.worker_panics
    );
    if let Some(rep) = &reporter {
        if let Err(code) = emit_metrics(rep, &args) {
            return code;
        }
    }

    let Some(history) = out.history else {
        println!("recording off: nothing to check");
        return ExitCode::SUCCESS;
    };
    let history = match history {
        Ok(history) => history,
        Err(e) => {
            // A dedicated loud failure: an unsound window (e.g. clock
            // roll-over) must never be silently checked.
            eprintln!("stm-record: recording unsound: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "history: {} ({} epoch(s))",
        history.summary(),
        history.epochs().len()
    );

    if let Some(path) = &args.dump {
        let mut text = String::new();
        for (s, session) in history.sessions.iter().enumerate() {
            for t in session {
                text.push_str(&format!(
                    "s{s} {:?} epoch={} start={} reads={:?} writes={:?}\n",
                    t.outcome, t.epoch, t.start, t.reads, t.writes
                ));
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("stm-record: dump {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("dumped history to {}", path.display());
    }

    if args.check {
        let report = stm_check::check_history(&history, &out.check_opts);
        println!("{report}");
        if !report.is_clean() {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
