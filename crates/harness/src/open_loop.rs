//! Open-loop (arrival-rate) measurement driver.
//!
//! The closed-loop driver in [`crate::driver`] measures *throughput*:
//! workers issue the next operation the instant the previous one
//! finishes, so the system is always saturated and latency is
//! meaningless (it is just 1/throughput). Service-style claims — "the
//! sharded engine holds its p99 at a fixed offered load" — need the
//! opposite: requests arrive on a schedule that does **not** slow down
//! when the system does, and per-request latency is measured from the
//! *scheduled* arrival, so queueing delay counts (no coordinated
//! omission).
//!
//! Mechanics: arrival `i` of a run at `rate` requests/sec is due at
//! `t_i = i / rate` after the start. Workers pull arrival tickets from
//! a shared counter, wait until the ticket is due (coarse sleep far
//! out, yield-spin close in), execute the operation, and record
//! `completion − t_i` into their own [`LatencyRecorder`] — merging is
//! the caller's problem, which keeps this crate free of any histogram
//! dependency (`stm-perf` implements the trait for its histogram and
//! depends on us, not vice versa). If the run falls behind schedule by
//! more than `max_lag` the offered load exceeds capacity; the run stops
//! early and reports `on_schedule = false` rather than emitting
//! latencies that only measure the backlog.

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

/// Sink for one latency sample per completed request.
///
/// Implemented by `stm_perf::LatencyHist`; tests use plain `Vec<u64>`.
pub trait LatencyRecorder {
    /// Record one request latency in nanoseconds.
    fn record_latency(&mut self, nanos: u64);
}

impl LatencyRecorder for Vec<u64> {
    fn record_latency(&mut self, nanos: u64) {
        self.push(nanos);
    }
}

/// Open-loop run options.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOpts {
    /// Offered load in arrivals per second.
    pub rate: f64,
    /// Warm-up: arrivals scheduled inside it run but are not recorded.
    pub warmup: Duration,
    /// Measured window (after warm-up).
    pub duration: Duration,
    /// Worker threads draining the arrival schedule.
    pub workers: usize,
    /// Lag bound: when the next ticket is already overdue by more than
    /// this, the offered load exceeds capacity — stop and report
    /// `on_schedule = false`.
    pub max_lag: Duration,
    /// Base RNG seed; worker `w` uses `seed + w`.
    pub seed: u64,
}

impl Default for OpenLoopOpts {
    fn default() -> Self {
        OpenLoopOpts {
            rate: 10_000.0,
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(500),
            workers: 1,
            max_lag: Duration::from_millis(250),
            seed: 0x0417_CAFE,
        }
    }
}

impl OpenLoopOpts {
    /// Builder-style setter for the offered rate (arrivals/sec).
    pub fn with_rate(mut self, r: f64) -> Self {
        self.rate = r;
        self
    }

    /// Builder-style setter for the measured window.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder-style setter for the warm-up window.
    pub fn with_warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Builder-style setter for the worker count.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopResult {
    /// Arrivals the schedule offered (warm-up + measured window).
    pub offered: u64,
    /// Arrivals actually executed.
    pub completed: u64,
    /// Completed arrivals inside the measured window (samples recorded).
    pub measured: u64,
    /// Wall time from start to last completion.
    pub elapsed: Duration,
    /// False when the run hit the `max_lag` bound and stopped early:
    /// the offered rate exceeds capacity and recorded latencies would
    /// only measure backlog depth.
    pub on_schedule: bool,
    /// Completed requests per second of elapsed time.
    pub throughput: f64,
    /// Workers whose operation panicked. Each such worker stops pulling
    /// tickets but its recorder (with every pre-panic sample) is still
    /// returned; non-zero also clears `on_schedule`.
    pub worker_panics: u64,
}

/// Run an open-loop measurement.
///
/// `make_worker(w)` builds, per worker, a latency recorder and the
/// operation closure it times. Returns the run outcome plus every
/// worker's recorder (merge them for a run-wide histogram).
pub fn run_open_loop<R, F, G>(opts: OpenLoopOpts, make_worker: G) -> (OpenLoopResult, Vec<R>)
where
    R: LatencyRecorder + Send,
    F: FnMut(&mut SmallRng) + Send,
    G: Fn(usize) -> (R, F) + Sync,
{
    assert!(opts.rate > 0.0, "open-loop rate must be positive");
    assert!(opts.workers > 0, "open-loop needs at least one worker");
    let interval_ns = 1e9 / opts.rate;
    let warmup_ns = opts.warmup.as_nanos() as u64;
    let total_ns = (opts.warmup + opts.duration).as_nanos() as u64;
    let offered = ((total_ns as f64) / interval_ns).floor() as u64;
    let max_lag_ns = opts.max_lag.as_nanos() as u64;

    let next = AtomicU64::new(0);
    let saturated = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let measured = AtomicU64::new(0);
    let panics = AtomicU64::new(0);
    let start = Instant::now();

    let mut recorders: Vec<Option<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(opts.workers);
        for w in 0..opts.workers {
            let next = &next;
            let saturated = &saturated;
            let completed = &completed;
            let measured = &measured;
            let panics = &panics;
            let make_worker = &make_worker;
            handles.push(scope.spawn(move || {
                let (mut rec, mut op) = make_worker(w);
                let mut rng = SmallRng::seed_from_u64(opts.seed.wrapping_add(w as u64));
                loop {
                    if saturated.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= offered {
                        break;
                    }
                    let due_ns = (i as f64 * interval_ns) as u64;
                    // Wait out the schedule: coarse sleep while the
                    // deadline is far, then yield-spin — on a loaded
                    // single-core host the yields double as the only way
                    // other workers make progress.
                    loop {
                        let now_ns = start.elapsed().as_nanos() as u64;
                        if now_ns >= due_ns {
                            if now_ns - due_ns > max_lag_ns {
                                saturated.store(true, Ordering::Relaxed);
                            }
                            break;
                        }
                        let gap = due_ns - now_ns;
                        if gap > 1_000_000 {
                            std::thread::sleep(Duration::from_nanos(gap - 500_000));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    if saturated.load(Ordering::Relaxed) {
                        break;
                    }
                    // A panic must not escape the scoped thread: the
                    // join would re-panic and `recorders` would silently
                    // drop this worker's pre-panic samples. Catch it,
                    // count it, and return the recorder intact.
                    if std::panic::catch_unwind(AssertUnwindSafe(|| op(&mut rng))).is_err() {
                        panics.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    let done_ns = start.elapsed().as_nanos() as u64;
                    completed.fetch_add(1, Ordering::Relaxed);
                    if due_ns >= warmup_ns {
                        rec.record_latency(done_ns.saturating_sub(due_ns));
                        measured.fetch_add(1, Ordering::Relaxed);
                    }
                }
                rec
            }));
        }
        for h in handles {
            recorders.push(h.join().ok());
        }
    });
    let elapsed = start.elapsed();

    let completed = completed.load(Ordering::Relaxed);
    let worker_panics = panics.load(Ordering::Relaxed);
    let result = OpenLoopResult {
        offered,
        completed,
        measured: measured.load(Ordering::Relaxed),
        elapsed,
        on_schedule: !saturated.load(Ordering::Relaxed)
            && completed == offered
            && worker_panics == 0,
        throughput: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        worker_panics,
    };
    (result, recorders.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_schedule_at_modest_rate() {
        let opts = OpenLoopOpts::default()
            .with_rate(2_000.0)
            .with_warmup(Duration::from_millis(20))
            .with_duration(Duration::from_millis(100));
        let (res, recs) = run_open_loop(opts, |_w| {
            (Vec::new(), move |_rng: &mut SmallRng| {
                std::hint::black_box(0u64);
            })
        });
        assert!(res.on_schedule, "trivial op must keep schedule: {res:?}");
        assert_eq!(res.completed, res.offered);
        let samples: usize = recs.iter().map(Vec::len).sum();
        assert_eq!(samples as u64, res.measured);
        assert!(res.measured > 0, "no measured samples");
        // Warm-up arrivals ran but were not recorded.
        assert!(res.measured < res.offered);
    }

    #[test]
    fn latency_counts_queueing_from_scheduled_arrival() {
        // One worker, op takes ~2 ms, arrivals every 1 ms: each request
        // queues behind its predecessor, so recorded latency must grow
        // well beyond the 2 ms service time (no coordinated omission).
        let opts = OpenLoopOpts {
            rate: 1_000.0,
            warmup: Duration::ZERO,
            duration: Duration::from_millis(40),
            workers: 1,
            max_lag: Duration::from_secs(5),
            seed: 1,
        };
        let (res, recs) = run_open_loop(opts, |_w| {
            (Vec::new(), move |_rng: &mut SmallRng| {
                std::thread::sleep(Duration::from_millis(2));
            })
        });
        let samples = &recs[0];
        assert!(!samples.is_empty());
        let max = *samples.iter().max().expect("non-empty");
        assert!(
            max > 5_000_000,
            "queueing must inflate tail latency, max={max}ns {res:?}"
        );
    }

    #[test]
    fn saturation_stops_the_run_and_clears_on_schedule() {
        // Offered load far above capacity with a tight lag bound: the
        // driver must bail out instead of grinding through the backlog.
        let opts = OpenLoopOpts {
            rate: 10_000.0,
            warmup: Duration::ZERO,
            duration: Duration::from_secs(2),
            workers: 1,
            max_lag: Duration::from_millis(20),
            seed: 2,
        };
        let started = Instant::now();
        let (res, _recs) = run_open_loop(opts, |_w| {
            (Vec::new(), move |_rng: &mut SmallRng| {
                std::thread::sleep(Duration::from_millis(5));
            })
        });
        assert!(!res.on_schedule, "overload must be detected: {res:?}");
        assert!(res.completed < res.offered);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "saturated run must stop early"
        );
    }

    #[test]
    fn panicked_worker_keeps_its_recorder_and_is_counted() {
        // Worker 1 panics a few requests in; worker 0 keeps draining.
        // Regression: `h.join().ok()` + flatten used to drop the
        // panicked worker's recorder — every sample it had measured
        // vanished without a trace. Now the recorder survives and the
        // panic is reported.
        let opts = OpenLoopOpts {
            rate: 2_000.0,
            warmup: Duration::ZERO,
            duration: Duration::from_millis(80),
            workers: 2,
            max_lag: Duration::from_secs(5),
            seed: 3,
        };
        let (res, recs) = run_open_loop(opts, |w| {
            let mut steps = 0u32;
            (Vec::new(), move |_rng: &mut SmallRng| {
                if w == 1 {
                    steps += 1;
                    if steps > 5 {
                        panic!("intentional test panic: worker failure injection");
                    }
                }
                std::hint::black_box(0u64);
            })
        });
        assert_eq!(res.worker_panics, 1);
        assert!(!res.on_schedule, "a panicked run is not on schedule");
        assert_eq!(recs.len(), 2, "panicked worker's recorder dropped");
        // The panicked worker measured its pre-panic completions.
        assert!(recs.iter().any(|r| (1..=5).contains(&r.len())));
        // Bookkeeping still balances: samples == measured.
        let total: usize = recs.iter().map(Vec::len).sum();
        assert_eq!(total as u64, res.measured);
    }

    #[test]
    fn multiple_workers_split_the_schedule() {
        let opts = OpenLoopOpts::default()
            .with_rate(2_000.0)
            .with_warmup(Duration::ZERO)
            .with_duration(Duration::from_millis(80))
            .with_workers(2);
        let (res, recs) = run_open_loop(opts, |_w| {
            (Vec::new(), move |_rng: &mut SmallRng| {
                std::hint::black_box(0u64);
            })
        });
        assert_eq!(recs.len(), 2);
        let total: usize = recs.iter().map(Vec::len).sum();
        assert_eq!(total as u64, res.measured);
        assert_eq!(res.completed, res.offered);
    }
}
