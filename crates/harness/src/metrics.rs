//! Metrics exposition for harness runs: one reporter that scrapes
//! every registered [`stm_telemetry::MetricsSource`] and renders the
//! result in the formats the tooling consumes.
//!
//! The reporter is a thin façade over [`stm_telemetry::Registry`]: the
//! driver registers its backend (or engine) once, runs the workload,
//! and asks for Prometheus text and/or JSONL at exit. Rendering runs
//! the exposition lint in-process first, so a malformed frame fails the
//! run that produced it instead of the scrape pipeline downstream.

use std::sync::Arc;
use stm_telemetry::{lint_exposition, render_jsonl, render_prometheus, MetricsSource, Registry};

/// Scrapes registered sources and renders Prometheus text / JSONL.
#[derive(Default)]
pub struct MetricsReporter {
    registry: Registry,
}

impl MetricsReporter {
    /// An empty reporter.
    pub fn new() -> MetricsReporter {
        MetricsReporter::default()
    }

    /// Register a source; scraped on every render, in registration
    /// order.
    pub fn register(&self, source: Arc<dyn MetricsSource + Send + Sync>) {
        self.registry.register(source);
    }

    /// Scrape all sources into Prometheus text exposition.
    ///
    /// # Errors
    /// The lint findings, if the rendered text violates the exposition
    /// format (a bug in a `MetricsSource`, never user error).
    pub fn prometheus(&self) -> Result<String, Vec<String>> {
        let frame = self.registry.collect();
        let text = render_prometheus(&frame);
        let findings = lint_exposition(&text);
        if findings.is_empty() {
            Ok(text)
        } else {
            Err(findings)
        }
    }

    /// Scrape all sources into line-delimited JSON (one object per
    /// sample; summaries carry their quantiles inline).
    pub fn jsonl(&self) -> String {
        render_jsonl(&self.registry.collect())
    }
}

impl std::fmt::Debug for MetricsReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsReporter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_telemetry::MetricsFrame;

    struct FakeSource;

    impl MetricsSource for FakeSource {
        fn collect(&self, frame: &mut MetricsFrame) {
            frame.counter("stm_commits_total", "Committed transactions.", &[], 7);
            frame.gauge("stm_shard_health", "Shard health.", &[("shard", "0")], 0.0);
        }
    }

    #[test]
    fn reporter_renders_lint_clean_prometheus_and_jsonl() {
        let reporter = MetricsReporter::new();
        reporter.register(Arc::new(FakeSource));
        let text = reporter.prometheus().expect("lint-clean");
        assert!(text.contains("# TYPE stm_commits_total counter"));
        assert!(text.contains("stm_commits_total 7"));
        assert!(text.contains("stm_shard_health{shard=\"0\"} 0"));
        let jsonl = reporter.jsonl();
        assert!(jsonl.lines().count() >= 2);
        assert!(jsonl.contains("\"metric\":\"stm_commits_total\""));
    }

    struct BrokenSource;

    impl MetricsSource for BrokenSource {
        fn collect(&self, frame: &mut MetricsFrame) {
            frame.counter("bad name with spaces", "Invalid.", &[], 1);
        }
    }

    #[test]
    fn reporter_surfaces_lint_findings_instead_of_bad_text() {
        let reporter = MetricsReporter::new();
        reporter.register(Arc::new(BrokenSource));
        let findings = reporter.prometheus().expect_err("must fail lint");
        assert!(!findings.is_empty());
    }
}
