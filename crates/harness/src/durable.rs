//! The `--durable` driver mode: run a threaded KV workload on the
//! durable sharded engine, optionally kill the stores at a chosen
//! operation count, recover from the WAL, and verify what recovery
//! produced.
//!
//! The kill is a [`CrashSwitch`] cut raced against live committers —
//! whatever frame was in flight when the budget hit becomes a torn
//! tail, exactly the failure recovery must absorb. Verification layers
//! by build:
//!
//! * always — recovery itself must succeed (corruption fails loudly),
//!   an uncrashed run must recover the exact pre-shutdown state, and
//!   the recovered engine must keep accepting commits that survive a
//!   *second* recovery;
//! * with the `record` feature too — the replay-equivalence oracle:
//!   each shard's WAL is cross-checked against its recorded history
//!   ([`stm_check::check_wal_commits`]; complete equality when the run
//!   was not crashed) and the history itself must check opaque.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm_engine::{DurableEngine, ShardBackend};
use stm_tl2::{Tl2, Tl2Config};
use stm_wal::{CrashSwitch, MemStore, WalStore};

#[cfg(feature = "record")]
use stm_wal::Recovery;
use tinystm::{AccessStrategy, Stm, StmConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Backend selector for the durable driver (mirrors the record-mode
/// labels: `wb` | `wt` | `tl2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurBackend {
    /// TinySTM, write-back.
    WriteBack,
    /// TinySTM, write-through.
    WriteThrough,
    /// TL2.
    Tl2,
}

impl DurBackend {
    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<DurBackend> {
        match s {
            "wb" => Some(DurBackend::WriteBack),
            "wt" => Some(DurBackend::WriteThrough),
            "tl2" => Some(DurBackend::Tl2),
            _ => None,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DurBackend::WriteBack => "wb",
            DurBackend::WriteThrough => "wt",
            DurBackend::Tl2 => "tl2",
        }
    }
}

/// Options for one durable run.
#[derive(Debug, Clone)]
pub struct DurableOpts {
    /// Backend to run.
    pub backend: DurBackend,
    /// Shard count.
    pub shards: usize,
    /// Key-space size.
    pub keys: usize,
    /// Worker threads.
    pub threads: usize,
    /// Put operations per thread.
    pub ops: usize,
    /// Cut the stores after this many puts across all threads
    /// (`None` = run to completion, clean shutdown).
    pub crash_at: Option<u64>,
    /// Run the recovery verification (state equality / replay oracle).
    pub recover_check: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Back the WAL with real files under this directory (one
    /// `shard-N` subdirectory per shard) instead of in-memory stores;
    /// the recovery incarnation reopens the same directories, so the
    /// crash-consistency path exercises actual appends, fsyncs, and
    /// atomic checkpoint renames. The directory should start empty.
    pub file_store: Option<std::path::PathBuf>,
}

impl Default for DurableOpts {
    fn default() -> Self {
        DurableOpts {
            backend: DurBackend::WriteBack,
            shards: 2,
            keys: 64,
            threads: 2,
            ops: 2_000,
            crash_at: None,
            recover_check: true,
            seed: 0x0D_07_AB_1E,
            file_store: None,
        }
    }
}

/// What one durable run produced.
#[derive(Debug)]
pub struct DurableReport {
    /// Puts issued (the cut does not stop the workload; later commits
    /// simply miss the log, as they would a real crash).
    pub issued: u64,
    /// WAL records recovery replayed, all shards.
    pub recovered_records: usize,
    /// Shards whose log ended in a torn (truncated) tail.
    pub torn_shards: usize,
    /// Whether the run was cut.
    pub crashed: bool,
    /// Fault counters of the workload incarnation at shutdown
    /// (retries, faults, rejections, rejoins).
    pub fault_stats: stm_api::stats::FaultSnapshot,
    /// Per-shard health of the workload incarnation at shutdown
    /// (`healthy` / `degraded` / `quarantined`).
    pub healths: Vec<String>,
    /// Verification failures (empty = everything checked out). Only
    /// populated when `recover_check` was set.
    pub failures: Vec<String>,
}

impl DurableReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} puts issued, {} WAL records recovered, {} torn shard(s), {}: {}",
            self.issued,
            self.recovered_records,
            self.torn_shards,
            if self.crashed { "crashed" } else { "clean" },
            if self.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", self.failures.len())
            }
        )
    }
}

/// Run the durable workload → (maybe) crash → recover → verify flow.
/// `Err` means the run could not execute at all (bad options); check
/// failures come back inside the report.
pub fn run_durable(opts: &DurableOpts) -> Result<DurableReport, String> {
    if opts.shards == 0 || opts.keys == 0 || opts.threads == 0 {
        return Err("--durable needs shards, keys and threads >= 1".to_string());
    }
    match opts.backend {
        DurBackend::WriteBack => run_one::<Stm>(
            opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteBack),
        ),
        DurBackend::WriteThrough => run_one::<Stm>(
            opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteThrough),
        ),
        DurBackend::Tl2 => run_one::<Tl2>(opts, &Tl2Config::default()),
    }
}

fn stores(switch: &Arc<CrashSwitch>, shards: usize) -> Vec<Arc<dyn WalStore>> {
    (0..shards)
        .map(|_| MemStore::new(Arc::clone(switch)) as Arc<dyn WalStore>)
        .collect()
}

fn run_one<B: ShardBackend>(
    opts: &DurableOpts,
    config: &B::Config,
) -> Result<DurableReport, String> {
    let switch = CrashSwitch::unlimited();
    let file_dirs: Option<Vec<std::path::PathBuf>> = opts.file_store.as_ref().map(|root| {
        (0..opts.shards)
            .map(|i| root.join(format!("shard-{i}")))
            .collect()
    });
    let dyns: Vec<Arc<dyn WalStore>> = match &file_dirs {
        Some(dirs) => dirs
            .iter()
            .map(|dir| {
                stm_wal::FileStore::with_switch(dir, Arc::clone(&switch))
                    .map(|s| s as Arc<dyn WalStore>)
                    .map_err(|e| format!("file store {}: {e}", dir.display()))
            })
            .collect::<Result<_, _>>()?,
        None => stores(&switch, opts.shards),
    };
    let engine: DurableEngine<B> = DurableEngine::new(opts.shards, opts.keys, config, dyns.clone())
        .map_err(|e| format!("durable engine: {e}"))?;

    #[cfg(feature = "record")]
    let sinks: Vec<_> = (0..opts.shards)
        .map(|_| stm_check::TraceSink::new())
        .collect();
    #[cfg(feature = "record")]
    for (i, sink) in sinks.iter().enumerate() {
        engine.engine().shard(i).shard_attach_trace(sink);
    }

    // The workload: every thread hammers puts (plus interleaved gets)
    // over the shared key space; a global put counter triggers the cut.
    let issued = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..opts.threads as u64 {
            let engine = &engine;
            let issued = &issued;
            let switch = &switch;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(opts.seed ^ (t << 32));
                for i in 0..opts.ops {
                    let key = rng.gen_range(0u64..opts.keys as u64);
                    if i % 5 == 4 {
                        engine.get(key);
                        continue;
                    }
                    let n = issued.fetch_add(1, Ordering::Relaxed) + 1;
                    if opts.crash_at == Some(n) {
                        switch.cut_now();
                    }
                    engine.put(key, (t << 48) | i as u64).unwrap();
                }
            });
        }
    });
    let issued = issued.load(Ordering::Relaxed);
    let crashed = switch.is_cut();

    #[cfg(feature = "record")]
    for i in 0..opts.shards {
        engine.engine().shard(i).shard_detach_trace();
    }
    let pre_state = engine.read_all();
    let fault_stats = engine.fault_stats();
    let healths: Vec<String> = (0..opts.shards)
        .map(|i| engine.health(i).to_string())
        .collect();
    drop(engine);

    // Power-cycle: the next incarnation boots healthy stores holding
    // whatever bytes survived (the old crash switch dies with the old
    // machine), so the recovered engine can log and checkpoint again.
    // File-backed stores reboot by reopening their directories — the
    // surviving bytes are whatever actually reached the files.
    let boot: Vec<Arc<dyn WalStore>> = match &file_dirs {
        Some(dirs) => dirs
            .iter()
            .map(|dir| {
                stm_wal::FileStore::open(dir)
                    .map(|s| s as Arc<dyn WalStore>)
                    .map_err(|e| format!("file store reopen {}: {e}", dir.display()))
            })
            .collect::<Result<_, _>>()?,
        None => dyns
            .iter()
            .map(|s| MemStore::rebooted(&**s) as Arc<dyn WalStore>)
            .collect(),
    };
    let (recovered, reports) = DurableEngine::<B>::recover(opts.shards, opts.keys, config, boot)
        .map_err(|e| format!("recovery failed: {e}"))?;
    let recovered_records: usize = reports.iter().map(|r| r.records.len()).sum();
    let torn_shards = reports.iter().filter(|r| !r.tail.is_clean()).count();

    let mut failures = Vec::new();
    if opts.recover_check {
        verify_state(&recovered, &pre_state, crashed, &mut failures);
        #[cfg(feature = "record")]
        verify_replay(&sinks, &reports, crashed, &mut failures);
        verify_liveness::<B>(recovered, opts, config, &mut failures);
    }

    Ok(DurableReport {
        issued,
        recovered_records,
        torn_shards,
        crashed,
        fault_stats,
        healths,
        failures,
    })
}

/// Clean shutdown: recovery must reproduce the exact final state. After
/// a crash the recovered state is a per-shard prefix, so only the
/// weaker containment applies: every recovered value was either the
/// initial zero or really written.
fn verify_state<B: ShardBackend>(
    recovered: &DurableEngine<B>,
    pre_state: &BTreeMap<u64, u64>,
    crashed: bool,
    failures: &mut Vec<String>,
) {
    let state = recovered.read_all();
    if !crashed && &state != pre_state {
        failures.push(format!(
            "clean-shutdown recovery diverged: {} of {} keys differ",
            state
                .iter()
                .filter(|(k, v)| pre_state.get(k) != Some(v))
                .count(),
            state.len()
        ));
    }
}

/// The recovered engine must keep accepting commits, and those commits
/// must survive a second recovery — durability is a property of every
/// incarnation, not just the first.
fn verify_liveness<B: ShardBackend>(
    recovered: DurableEngine<B>,
    opts: &DurableOpts,
    config: &B::Config,
    failures: &mut Vec<String>,
) {
    let dyns: Vec<Arc<dyn WalStore>> = (0..opts.shards)
        .map(|i| Arc::clone(recovered.store(i)))
        .collect();
    for k in 0..(opts.keys as u64).min(8) {
        recovered.put(k, 0x000A_11CE + k).unwrap();
    }
    let expected = recovered.read_all();
    drop(recovered);
    match DurableEngine::<B>::recover(opts.shards, opts.keys, config, dyns) {
        Err(e) => failures.push(format!("second recovery failed: {e}")),
        Ok((again, _)) => {
            if again.read_all() != expected {
                failures.push("post-recovery commits were lost by a second recovery".to_string());
            }
        }
    }
}

/// The replay-equivalence oracle: per shard, the recovered WAL commits
/// against the recorded history (complete equality when uncrashed), and
/// the history itself must be opaque.
#[cfg(feature = "record")]
fn verify_replay(
    sinks: &[Arc<stm_check::TraceSink>],
    reports: &[Recovery],
    crashed: bool,
    failures: &mut Vec<String>,
) {
    for (shard, (sink, report)) in sinks.iter().zip(reports).enumerate() {
        let history = match sink.drain_history() {
            Ok(h) => h,
            Err(e) => {
                failures.push(format!("shard {shard}: recording unsound: {e}"));
                continue;
            }
        };
        let check = stm_check::check_history(&history, &stm_check::CheckOpts::default());
        if !check.is_clean() {
            failures.push(format!("shard {shard}: history not opaque:\n{check}"));
        }
        let commits: Vec<stm_check::WalCommit> = report
            .records
            .iter()
            .map(|r| stm_check::WalCommit {
                epoch: r.epoch,
                commit_ts: r.commit_ts,
            })
            .collect();
        for v in stm_check::check_wal_commits(&history, &commits, !crashed) {
            failures.push(format!("shard {shard}: {v}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_checks_out_on_every_backend() {
        for backend in [
            DurBackend::WriteBack,
            DurBackend::WriteThrough,
            DurBackend::Tl2,
        ] {
            let report = run_durable(&DurableOpts {
                backend,
                ops: 300,
                ..DurableOpts::default()
            })
            .unwrap();
            assert!(!report.crashed);
            assert!(
                report.failures.is_empty(),
                "{backend:?}: {:?}",
                report.failures
            );
            assert!(report.recovered_records > 0);
        }
    }

    #[test]
    fn crashed_run_recovers_a_prefix() {
        let report = run_durable(&DurableOpts {
            crash_at: Some(200),
            ops: 400,
            ..DurableOpts::default()
        })
        .unwrap();
        assert!(report.crashed);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // The cut raced live committers: the log holds roughly the
        // pre-cut commits, never the full run.
        assert!(report.recovered_records < report.issued as usize);
    }

    #[test]
    fn file_store_clean_and_crashed_runs_check_out() {
        let root = std::env::temp_dir().join(format!("stm-harness-fs-{}", std::process::id()));
        for (tag, crash_at) in [("clean", None), ("crashed", Some(150))] {
            let dir = root.join(tag);
            let _ = std::fs::remove_dir_all(&dir);
            let report = run_durable(&DurableOpts {
                crash_at,
                ops: 300,
                file_store: Some(dir.clone()),
                ..DurableOpts::default()
            })
            .unwrap();
            assert_eq!(report.crashed, crash_at.is_some(), "{tag}");
            assert!(report.failures.is_empty(), "{tag}: {:?}", report.failures);
            assert!(report.recovered_records > 0, "{tag}");
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn parse_backend_labels() {
        assert_eq!(DurBackend::parse("wb"), Some(DurBackend::WriteBack));
        assert_eq!(DurBackend::parse("wt"), Some(DurBackend::WriteThrough));
        assert_eq!(DurBackend::parse("tl2"), Some(DurBackend::Tl2));
        assert_eq!(DurBackend::parse("bogus"), None);
    }
}
