//! The `--service` driver mode: open-loop clients driving an
//! [`StmService`] (multi-tenant, per-shard group commit), an optional
//! mid-run power cut, a power-cycle, and the acked-survival
//! verification.
//!
//! The contract under test is the service's ack: [`StmService::put`]
//! returns `Ok` only once the submission's group batch has been
//! flushed **and** synced, so an acked write must survive the reboot.
//! The converse is explicitly allowed: a write that was *staged* into
//! a batch but whose flush never completed before the cut may vanish —
//! its `put` was still blocked, the client never saw an ack, and
//! memory never ran ahead of the log. The verification therefore
//! brackets each key between the client's last *acked* value (the
//! floor an acked commit must clear) and its last *submitted* value
//! (the ceiling nothing can exceed), exploiting that each client owns
//! its tenant's keys and writes strictly increasing values.
//!
//! "Acked before the cut" is observed as `Ok` with the crash switch
//! still intact afterwards: the ack happened-before that observation,
//! so the batch's bytes were admitted before the cut. (A cut
//! [`MemStore`] keeps acking into the void, like real hardware losing
//! power — those post-cut acks are exactly the ones the client must
//! not count.)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stm_engine::{DurableEngine, ServiceConfig, ShardBackend, StmService};
use stm_tl2::{Tl2, Tl2Config};
use stm_wal::{CrashSwitch, GroupCommitConfig, MemStore, WalStore};
use tinystm::{AccessStrategy, Stm, StmConfig};

use crate::durable::DurBackend;

/// Options for one service run.
#[derive(Debug, Clone)]
pub struct ServiceOpts {
    /// Backend to run.
    pub backend: DurBackend,
    /// Shard count.
    pub shards: usize,
    /// Client threads; each client is its own tenant.
    pub clients: usize,
    /// Keys per tenant.
    pub keys_per_tenant: usize,
    /// Submissions per client.
    pub ops: usize,
    /// Offered rate, submissions/second across all clients
    /// (0 = closed loop, submit as fast as acks return).
    pub rate: u64,
    /// Cut the stores after this many submissions across all clients
    /// (`None` = clean shutdown).
    pub crash_at: Option<u64>,
    /// Group-commit batch bounds for the engine under the service.
    pub group: GroupCommitConfig,
}

impl Default for ServiceOpts {
    fn default() -> Self {
        ServiceOpts {
            backend: DurBackend::WriteBack,
            shards: 2,
            clients: 4,
            keys_per_tenant: 32,
            ops: 500,
            rate: 0,
            crash_at: None,
            group: GroupCommitConfig::default(),
        }
    }
}

/// What one service run produced.
#[derive(Debug)]
pub struct ServiceReport {
    /// Submissions issued (acked or not; the cut does not stop the
    /// clients, as it would not stop real ones).
    pub issued: u64,
    /// Submissions acked before the cut (all acked submissions, when
    /// the run was clean).
    pub acked: u64,
    /// Submissions rejected by queue backpressure.
    pub overloaded: u64,
    /// Whether the run was cut.
    pub crashed: bool,
    /// Mean records per flushed WAL batch (the amortization).
    pub mean_batch: f64,
    /// Submit→ack p50 / max latency, nanoseconds.
    pub ack_p50_ns: u64,
    /// Largest observed submit→ack latency, nanoseconds.
    pub ack_max_ns: u64,
    /// Fault counters of the service incarnation at shutdown.
    pub fault_stats: stm_api::stats::FaultSnapshot,
    /// Per-shard health at shutdown.
    pub healths: Vec<String>,
    /// Verification failures (empty = everything checked out).
    pub failures: Vec<String>,
}

impl ServiceReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} submissions issued, {} acked, {} overloaded, mean batch {:.2}, \
             ack p50 {}µs max {}µs, {}: {}",
            self.issued,
            self.acked,
            self.overloaded,
            self.mean_batch,
            self.ack_p50_ns / 1_000,
            self.ack_max_ns / 1_000,
            if self.crashed { "crashed" } else { "clean" },
            if self.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", self.failures.len())
            }
        )
    }
}

/// Run the service workload → (maybe) crash → power-cycle → verify
/// flow. `Err` means the run could not execute at all (bad options);
/// check failures come back inside the report.
pub fn run_service(opts: &ServiceOpts) -> Result<ServiceReport, String> {
    if opts.shards == 0 || opts.clients == 0 || opts.keys_per_tenant == 0 {
        return Err("--service needs shards, clients and keys >= 1".to_string());
    }
    match opts.backend {
        DurBackend::WriteBack => run_one::<Stm>(
            opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteBack),
        ),
        DurBackend::WriteThrough => run_one::<Stm>(
            opts,
            &StmConfig::default().with_strategy(AccessStrategy::WriteThrough),
        ),
        DurBackend::Tl2 => run_one::<Tl2>(opts, &Tl2Config::default()),
    }
}

fn run_one<B: ShardBackend + 'static>(
    opts: &ServiceOpts,
    config: &B::Config,
) -> Result<ServiceReport, String> {
    let switch = CrashSwitch::unlimited();
    let dyns: Vec<Arc<dyn WalStore>> = (0..opts.shards)
        .map(|_| MemStore::new(Arc::clone(&switch)) as Arc<dyn WalStore>)
        .collect();
    let n_keys = opts.clients * opts.keys_per_tenant;
    let engine = Arc::new(
        DurableEngine::<B>::new_grouped(opts.shards, n_keys, config, dyns.clone(), opts.group)
            .map_err(|e| format!("durable engine: {e}"))?,
    );
    let svc = Arc::new(StmService::start(
        Arc::clone(&engine),
        ServiceConfig::default()
            .with_tenants(opts.clients)
            .with_keys_per_tenant(opts.keys_per_tenant),
    ));

    // Each client owns tenant `t` and writes strictly increasing
    // values round-robin over its keys; the open-loop pacing offers
    // `rate` submissions/second across all clients.
    let issued = Arc::new(AtomicU64::new(0));
    let interval =
        (opts.rate > 0).then(|| Duration::from_secs_f64(opts.clients as f64 / opts.rate as f64));
    type KeyMap = BTreeMap<u64, u64>;
    let clients: Vec<_> = (0..opts.clients)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let switch = Arc::clone(&switch);
            let issued = Arc::clone(&issued);
            let crash_at = opts.crash_at;
            let (ops, keys) = (opts.ops, opts.keys_per_tenant as u64);
            std::thread::spawn(move || {
                let start = Instant::now();
                let mut acked: KeyMap = BTreeMap::new();
                let mut submitted: KeyMap = BTreeMap::new();
                let mut acked_count = 0u64;
                for i in 0..ops {
                    if let Some(iv) = interval {
                        let target = start + iv * i as u32;
                        while Instant::now() < target {
                            std::thread::yield_now();
                        }
                    }
                    let key = i as u64 % keys;
                    let value = i as u64 + 1;
                    let n = issued.fetch_add(1, Ordering::Relaxed) + 1;
                    if crash_at == Some(n) {
                        switch.cut_now();
                    }
                    submitted.insert(key, value);
                    if svc.put(t, key, value).is_ok() && !switch.is_cut() {
                        acked.insert(key, value);
                        acked_count += 1;
                    }
                }
                (t, acked, submitted, acked_count)
            })
        })
        .collect();
    let per_client: Vec<(usize, KeyMap, KeyMap, u64)> = clients
        .into_iter()
        .map(|c| c.join().map_err(|_| "client panicked".to_string()))
        .collect::<Result<_, _>>()?;
    let issued = issued.load(Ordering::Relaxed);
    let crashed = switch.is_cut();

    let hist = svc.ack_latency();
    let overloaded = svc.overloaded();
    let fault_stats = engine.fault_stats();
    let healths: Vec<String> = (0..opts.shards)
        .map(|i| engine.health(i).to_string())
        .collect();
    let mean_batch = engine.group_mean_batch().unwrap_or(0.0);
    svc.stop();
    drop(svc);
    drop(engine);

    // Power-cycle: the next incarnation boots healthy stores holding
    // whatever bytes were admitted before the cut.
    let boot: Vec<Arc<dyn WalStore>> = dyns
        .iter()
        .map(|s| MemStore::rebooted(&**s) as Arc<dyn WalStore>)
        .collect();
    let (recovered, _reports) =
        DurableEngine::<B>::recover_grouped(opts.shards, n_keys, config, boot, opts.group)
            .map_err(|e| format!("recovery failed: {e}"))?;

    // No acked submission lost, no value from the future.
    let state = recovered.read_all();
    let mut failures = Vec::new();
    let mut acked_total = 0u64;
    for (t, acked, submitted, acked_count) in &per_client {
        acked_total += acked_count;
        for key in 0..opts.keys_per_tenant as u64 {
            let global = (*t * opts.keys_per_tenant) as u64 + key;
            let got = state.get(&global).copied().unwrap_or(0);
            let floor = acked.get(&key).copied().unwrap_or(0);
            let ceil = submitted.get(&key).copied().unwrap_or(0);
            if got < floor {
                failures.push(format!(
                    "tenant {t} key {key}: recovered {got} < last acked {floor} — \
                     an acked submission was lost"
                ));
            }
            if got > ceil {
                failures.push(format!(
                    "tenant {t} key {key}: recovered {got} > last submitted {ceil} — \
                     phantom value"
                ));
            }
        }
    }
    if crashed && acked_total == 0 {
        failures.push("the cut landed before any submission was acked".to_string());
    }

    Ok(ServiceReport {
        issued,
        acked: acked_total,
        overloaded,
        crashed,
        mean_batch,
        ack_p50_ns: hist.value_at_percentile(50.0),
        ack_max_ns: hist.max,
        fault_stats,
        healths,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_service_run_checks_out_on_every_backend() {
        for backend in [
            DurBackend::WriteBack,
            DurBackend::WriteThrough,
            DurBackend::Tl2,
        ] {
            let report = run_service(&ServiceOpts {
                backend,
                ops: 200,
                ..ServiceOpts::default()
            })
            .unwrap();
            assert!(!report.crashed);
            assert!(
                report.failures.is_empty(),
                "{backend:?}: {:?}",
                report.failures
            );
            assert_eq!(report.acked, report.issued, "clean run acks everything");
        }
    }

    #[test]
    fn crashed_service_run_keeps_every_ack() {
        let report = run_service(&ServiceOpts {
            crash_at: Some(600),
            ops: 400,
            ..ServiceOpts::default()
        })
        .unwrap();
        assert!(report.crashed);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(
            report.acked < report.issued,
            "post-cut acks are not counted"
        );
    }

    #[test]
    fn paced_run_respects_the_offered_rate() {
        let start = Instant::now();
        let report = run_service(&ServiceOpts {
            clients: 2,
            ops: 50,
            rate: 2_000,
            ..ServiceOpts::default()
        })
        .unwrap();
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // 100 submissions at 2k/s is >= 50ms of schedule.
        assert!(start.elapsed() >= Duration::from_millis(45));
    }
}
