//! The Vacation workload driver (Figure 7): STAMP-style operation mix
//! over the travel-reservation database.

use crate::driver::{drive, MeasureOpts, Measurement};
use rand::rngs::SmallRng;
use rand::Rng;
use stm_api::TmHandle;
use stm_structures::{ResourceKind, Vacation};

/// Vacation workload parameters (STAMP's "low contention" defaults,
/// scaled down).
#[derive(Debug, Clone, Copy)]
pub struct VacationWorkload {
    /// Resources per table.
    pub n_resources: u64,
    /// Customers.
    pub n_customers: u64,
    /// Resource queries per reservation transaction.
    pub queries_per_tx: usize,
    /// Percent of operations that are reservations (the rest split
    /// between customer deletions and table updates).
    pub reserve_pct: u32,
}

impl Default for VacationWorkload {
    fn default() -> Self {
        VacationWorkload {
            n_resources: 256,
            n_customers: 64,
            queries_per_tx: 4,
            reserve_pct: 80,
        }
    }
}

/// One vacation operation, STAMP mix.
pub fn vacation_op<H: TmHandle>(v: &Vacation<H>, w: &VacationWorkload, rng: &mut SmallRng) {
    let roll = rng.gen_range(0..100);
    if roll < w.reserve_pct {
        let customer = rng.gen_range(1..=w.n_customers);
        let kind = ResourceKind::from_index(rng.gen_range(0..3));
        let ids: Vec<u64> = (0..w.queries_per_tx)
            .map(|_| rng.gen_range(1..=w.n_resources))
            .collect();
        v.make_reservation(customer, kind, &ids);
    } else if roll < w.reserve_pct + (100 - w.reserve_pct) / 2 {
        let customer = rng.gen_range(1..=w.n_customers);
        v.delete_customer(customer);
    } else {
        let kind = ResourceKind::from_index(rng.gen_range(0..3));
        let id = rng.gen_range(1..=w.n_resources);
        let price = rng.gen_range(100..600) as u32;
        v.update_tables(&[(kind, id, Some(price))]);
    }
}

/// Build the database and measure the mixed workload.
pub fn run_vacation<H: TmHandle>(
    tm: H,
    workload: VacationWorkload,
    opts: MeasureOpts,
) -> Measurement {
    let v = Vacation::new(
        tm.clone(),
        workload.n_resources,
        workload.n_customers,
        opts.seed ^ 0xACA7,
    );
    let stats = move || tm.stats_snapshot();
    drive(opts, &stats, |_t| {
        let v = &v;
        let w = workload;
        move |rng: &mut SmallRng| vacation_op(v, &w, rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::time::Duration;
    use stm_api::model::MutexTm;

    #[test]
    fn vacation_mix_smoke() {
        let tm = MutexTm::new();
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(50));
        let m = run_vacation(tm, VacationWorkload::default(), opts);
        assert!(m.commits > 0);
    }

    #[test]
    fn vacation_ops_cover_all_kinds() {
        let tm = MutexTm::new();
        let w = VacationWorkload {
            n_resources: 32,
            n_customers: 8,
            queries_per_tx: 3,
            reserve_pct: 50,
        };
        let v = Vacation::new(tm, w.n_resources, w.n_customers, 5);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            vacation_op(&v, &w, &mut rng);
        }
        assert_eq!(v.outstanding_by_tables(), v.outstanding_by_customers());
    }
}
