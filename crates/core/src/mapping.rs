//! The address→lock mapping: lock array, hash, and hierarchy counters.
//!
//! This bundles everything that changes atomically under dynamic
//! reconfiguration (Section 4): the lock array (`#locks`), the hash
//! shift (`#shifts`), and the hierarchical array (`h`). `Stm` holds the
//! current `Mapping` behind an atomic pointer swapped inside a quiesce
//! fence.
//!
//! The hash is the paper's per-stripe mapping: right-shift the address by
//! the implicit word shift (3 on 64-bit) plus the tunable `#shifts`, then
//! reduce modulo `#locks` (a mask, since `#locks` is a power of two).
//! `2^shifts` consecutive words therefore share a lock — the
//! spatial-locality knob. The hierarchy hash is consistent by
//! construction: `hier_index = lock_index mod h` with `h | #locks`.

use crate::config::StmConfig;
use crate::hierarchy::HierArray;
use core::sync::atomic::{AtomicUsize, Ordering};

/// Implicit right shift accounting for word-based addressing (the paper's
/// "right shift of 3" on 64-bit architectures).
pub const WORD_SHIFT: u32 = 3;

/// Immutable snapshot of the tunable state: lock array + hierarchy +
/// hash parameters.
///
/// Layout: `repr(C, align(64))` pins the declaration order so the hot
/// scalars every `load_impl`/`store_impl` touches — the lock-array fat
/// pointer, `lock_mask`, `hier_mask`, `addr_shift` — pack into the
/// first cache line (16 + 8 + 8 + 4 bytes), with the read-mostly
/// `hier`/`config` tail behind them. All of these fields are immutable
/// after construction (the mapping is swapped wholesale inside a
/// quiesce fence), so the line stays in shared state across cores; the
/// alignment keeps it from straddling into a neighbor's written line.
#[derive(Debug)]
#[repr(C, align(64))]
pub struct Mapping {
    locks: Box<[AtomicUsize]>,
    lock_mask: usize,
    hier_mask: usize,
    addr_shift: u32,
    hier: HierArray,
    config: StmConfig,
}

impl Mapping {
    /// Build a mapping for `config` (which must be validated).
    pub fn new(config: StmConfig) -> Mapping {
        debug_assert!(config.validate().is_ok());
        let n = config.n_locks();
        let locks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        Mapping {
            locks: locks.into_boxed_slice(),
            lock_mask: n - 1,
            hier_mask: config.hier_size() - 1,
            addr_shift: WORD_SHIFT + config.shifts,
            hier: HierArray::new(config.hier_size()),
            config,
        }
    }

    /// The configuration this mapping realizes.
    #[inline]
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    /// Number of locks.
    #[inline]
    pub fn n_locks(&self) -> usize {
        self.locks.len()
    }

    /// Map a word address to its lock index.
    #[inline(always)]
    pub fn lock_index(&self, addr: usize) -> usize {
        (addr >> self.addr_shift) & self.lock_mask
    }

    /// Map a lock index to its hierarchy partition (consistent hash).
    #[inline(always)]
    pub fn hier_index(&self, lock_idx: usize) -> usize {
        lock_idx & self.hier_mask
    }

    /// The lock word at `idx`.
    #[inline(always)]
    pub fn lock(&self, idx: usize) -> &AtomicUsize {
        &self.locks[idx]
    }

    /// The hierarchical counter array.
    #[inline(always)]
    pub fn hier(&self) -> &HierArray {
        &self.hier
    }

    /// Whether the hierarchy fast path is active (`h > 1`).
    #[inline(always)]
    pub fn hier_enabled(&self) -> bool {
        !self.hier.is_disabled()
    }

    /// Zero every lock version and hierarchy counter. Only inside a
    /// quiesce fence (clock roll-over).
    ///
    /// Relaxed stores: no transaction is active inside the fence, and
    /// the fence's own synchronization (site Q1 in `quiesce.rs`)
    /// publishes the zeroed words to transactions that enter after it
    /// lifts.
    pub fn reset_versions(&self) {
        for l in self.locks.iter() {
            debug_assert_eq!(
                l.load(Ordering::Relaxed) & crate::lockword::OWNED_BIT,
                0,
                "reset with an owned lock — fence violated"
            );
            l.store(0, Ordering::Relaxed);
        }
        self.hier.reset();
    }

    /// Count currently-owned locks (diagnostics/tests; racy outside a
    /// fence).
    pub fn owned_locks(&self) -> usize {
        self.locks
            .iter()
            .filter(|l| crate::lockword::is_owned(l.load(Ordering::Relaxed)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mapping(locks_log2: u32, shifts: u32, hier_log2: u32) -> Mapping {
        Mapping::new(
            StmConfig::default()
                .with_locks_log2(locks_log2)
                .with_shifts(shifts)
                .with_hier_log2(hier_log2),
        )
    }

    #[test]
    fn consecutive_words_map_to_distinct_locks_at_shift_zero() {
        let m = mapping(8, 0, 0);
        let base = 0x10000usize;
        let idx: Vec<usize> = (0..4).map(|i| m.lock_index(base + i * 8)).collect();
        assert_eq!(idx[1], (idx[0] + 1) & 255);
        assert_eq!(idx[2], (idx[0] + 2) & 255);
        assert_eq!(idx[3], (idx[0] + 3) & 255);
    }

    #[test]
    fn shifts_group_consecutive_words() {
        // With #shifts = 2, runs of 4 consecutive words share a lock.
        let m = mapping(8, 2, 0);
        let base = 0x40000usize; // aligned so the run starts a stripe
        let first = m.lock_index(base);
        for i in 0..4 {
            assert_eq!(m.lock_index(base + i * 8), first);
        }
        assert_ne!(m.lock_index(base + 4 * 8), first);
    }

    #[test]
    fn hier_hash_is_consistent_with_lock_hash() {
        // Two addresses mapping to the same lock must map to the same
        // counter — the paper's consistency requirement.
        let m = mapping(10, 1, 3);
        let a = 0x8000usize;
        // Same lock: differs by #locks * stripe_bytes in the hashed bits.
        let b = a + (1 << 10) * 8 * 2;
        assert_eq!(m.lock_index(a), m.lock_index(b));
        assert_eq!(m.hier_index(m.lock_index(a)), m.hier_index(m.lock_index(b)));
    }

    #[test]
    fn lock_array_starts_unowned_version_zero() {
        let m = mapping(6, 0, 0);
        assert_eq!(m.n_locks(), 64);
        for i in 0..64 {
            assert_eq!(m.lock(i).load(Ordering::Relaxed), 0);
        }
        assert_eq!(m.owned_locks(), 0);
    }

    #[test]
    fn reset_versions_zeroes_locks_and_counters() {
        let m = mapping(4, 0, 2);
        m.lock(3)
            .store(crate::lockword::wb_make(99), Ordering::Relaxed);
        m.hier().increment(1);
        m.reset_versions();
        assert_eq!(m.lock(3).load(Ordering::Relaxed), 0);
        assert_eq!(m.hier().load(1), 0);
    }

    #[test]
    fn hier_disabled_maps_everything_to_partition_zero() {
        let m = mapping(8, 0, 0);
        assert!(!m.hier_enabled());
        for idx in [0usize, 17, 255] {
            assert_eq!(m.hier_index(idx), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_lock_index_in_range(
            addr in any::<usize>(),
            locks_log2 in 1u32..16,
            shifts in 0u32..8,
        ) {
            let m = mapping(locks_log2, shifts, 0);
            prop_assert!(m.lock_index(addr) < m.n_locks());
        }

        #[test]
        fn prop_hier_consistency(
            addr in any::<usize>(),
            locks_log2 in 4u32..14,
            shifts in 0u32..6,
            hier_log2 in 0u32..4,
        ) {
            let m = mapping(locks_log2, shifts, hier_log2);
            let li = m.lock_index(addr);
            prop_assert_eq!(m.hier_index(li), li % m.hier().len());
        }

        #[test]
        fn prop_words_in_same_stripe_share_lock(
            base in (0usize..1 << 40).prop_map(|a| a & !7),
            shifts in 0u32..6,
            offset_words in 0usize..64,
        ) {
            let m = mapping(12, shifts, 0);
            let stripe_words = 1usize << shifts;
            let aligned = base & !((stripe_words * 8) - 1);
            let within = offset_words % stripe_words;
            prop_assert_eq!(
                m.lock_index(aligned),
                m.lock_index(aligned + within * 8)
            );
        }
    }
}
