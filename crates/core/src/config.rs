//! Runtime configuration of the STM — the three tuning parameters of
//! Section 4 of the paper plus the design-level switches of Section 3.
//!
//! The paper's dynamic tuning manipulates exactly three knobs:
//!
//! 1. `#locks` — the number of entries in the lock array (`ℓ`),
//! 2. `#shifts` — extra right shifts in the address→lock hash
//!    (spatial-locality control; on top of the implicit word shift),
//! 3. `h` — the size of the hierarchical array (1 disables it).
//!
//! All three are powers of two so the modulo reductions are masks.

/// How transactional writes reach memory (Section 3.1, "Write-through vs.
/// Write-back").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessStrategy {
    /// Buffer updates in a redo log, apply at commit. Lower abort cost,
    /// no incarnation numbers needed.
    #[default]
    WriteBack,
    /// Write directly to memory, undo on abort. Lower commit cost, O(1)
    /// read-after-write, needs 3-bit incarnation numbers in lock words.
    WriteThrough,
}

impl AccessStrategy {
    /// Short name used in bench series labels ("wb" / "wt").
    pub fn short_name(self) -> &'static str {
        match self {
            AccessStrategy::WriteBack => "wb",
            AccessStrategy::WriteThrough => "wt",
        }
    }
}

/// Contention-management policy applied by the retry loop after an abort.
///
/// The paper aborts and restarts immediately; TinySTM's reference
/// implementation additionally ships the classic CM alternatives
/// (`CM_SUICIDE`, `CM_DELAY`, `CM_BACKOFF`), which are surfaced here so
/// the harness can benchmark them against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CmPolicy {
    /// Restart immediately (the paper's choice).
    #[default]
    Immediate,
    /// TinySTM's `CM_SUICIDE`: abort self and restart immediately.
    /// Behaviourally identical to [`CmPolicy::Immediate`]; kept as a
    /// distinct variant so CLIs and the tuning space can name the
    /// paper's policy explicitly.
    Suicide,
    /// TinySTM's `CM_DELAY`: after a lock conflict, wait (bounded)
    /// until the contended stripe is released before retrying, so the
    /// retry does not re-collide with the same owner.
    Delay,
    /// Exponential randomized backoff: spin for a random number of
    /// iterations up to `min(max_spins, base << consecutive_aborts)`.
    Backoff {
        /// Initial spin bound.
        base: u32,
        /// Upper bound on the spin count.
        max_spins: u32,
    },
}

impl CmPolicy {
    /// Short label for CLI/bench output.
    pub fn label(self) -> &'static str {
        match self {
            CmPolicy::Immediate => "immediate",
            CmPolicy::Suicide => "suicide",
            CmPolicy::Delay => "delay",
            CmPolicy::Backoff { .. } => "backoff",
        }
    }

    /// Parse a CLI name (`immediate`, `suicide`, `delay`, `backoff`);
    /// `backoff` uses the bench defaults (base 16, max 2^14 spins).
    pub fn parse(name: &str) -> Option<CmPolicy> {
        match name {
            "immediate" => Some(CmPolicy::Immediate),
            "suicide" => Some(CmPolicy::Suicide),
            "delay" => Some(CmPolicy::Delay),
            "backoff" => Some(CmPolicy::Backoff {
                base: 16,
                max_spins: 1 << 14,
            }),
            _ => None,
        }
    }
}

/// The hard ceiling on `h`: transaction-private masks are 256 bits.
pub const MAX_HIER: usize = 256;
/// Ceiling on the lock-array exponent (2^26 × 8 B = 512 MiB).
pub const MAX_LOCKS_LOG2: u32 = 26;
/// Ceiling on the extra shift count.
pub const MAX_SHIFTS: u32 = 16;

/// Errors produced by [`StmConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `locks_log2` outside `[1, MAX_LOCKS_LOG2]`.
    LocksOutOfRange(u32),
    /// `shifts` above [`MAX_SHIFTS`].
    ShiftsOutOfRange(u32),
    /// `hier_log2` produces `h > MAX_HIER` or `h > #locks`.
    HierOutOfRange(u32),
    /// `max_clock` too small to be usable.
    MaxClockTooSmall(u64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::LocksOutOfRange(v) => {
                write!(f, "locks_log2={v} outside [1, {MAX_LOCKS_LOG2}]")
            }
            ConfigError::ShiftsOutOfRange(v) => write!(f, "shifts={v} above {MAX_SHIFTS}"),
            ConfigError::HierOutOfRange(v) => write!(
                f,
                "hier_log2={v}: h must satisfy h <= {MAX_HIER} and h <= #locks"
            ),
            ConfigError::MaxClockTooSmall(v) => write!(f, "max_clock={v} too small (need >= 16)"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full STM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmConfig {
    /// log2 of the number of locks (`ℓ = 2^locks_log2`). Paper default:
    /// 16 (65 536 locks).
    pub locks_log2: u32,
    /// Extra right shifts applied to addresses before the lock hash, on
    /// top of the implicit word shift of 3 (64-bit). Controls how many
    /// consecutive words share a lock: `2^shifts` words per stripe.
    pub shifts: u32,
    /// log2 of the hierarchical array size (`h = 2^hier_log2`);
    /// `hier_log2 == 0` (h = 1) disables hierarchical locking, as in the
    /// paper.
    pub hier_log2: u32,
    /// Write-back or write-through memory access.
    pub strategy: AccessStrategy,
    /// Clock value that triggers the roll-over mechanism. Kept
    /// configurable so tests can exercise roll-over cheaply; the paper's
    /// 64-bit bound (2^63, or 2^60 for write-through) never fires in
    /// practice.
    pub max_clock: u64,
    /// Retry-loop contention management.
    pub cm: CmPolicy,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            locks_log2: 16,
            shifts: 0,
            hier_log2: 0,
            strategy: AccessStrategy::WriteBack,
            max_clock: 1 << 50,
            cm: CmPolicy::Immediate,
        }
    }
}

impl StmConfig {
    /// The paper's initial configuration for the dynamic tuning
    /// experiments: 2^8 locks, shift 0, hierarchy disabled (they start
    /// from a deliberately poor point to show convergence).
    pub fn tuning_start() -> StmConfig {
        StmConfig {
            locks_log2: 8,
            ..StmConfig::default()
        }
    }

    /// Number of locks `ℓ`.
    pub fn n_locks(&self) -> usize {
        1usize << self.locks_log2
    }

    /// Hierarchical array size `h` (1 = disabled).
    pub fn hier_size(&self) -> usize {
        1usize << self.hier_log2
    }

    /// Whether hierarchical locking is active.
    pub fn hier_enabled(&self) -> bool {
        self.hier_log2 > 0
    }

    /// Builder-style setter for `locks_log2`.
    pub fn with_locks_log2(mut self, v: u32) -> Self {
        self.locks_log2 = v;
        self
    }

    /// Builder-style setter for `shifts`.
    pub fn with_shifts(mut self, v: u32) -> Self {
        self.shifts = v;
        self
    }

    /// Builder-style setter for `hier_log2`.
    pub fn with_hier_log2(mut self, v: u32) -> Self {
        self.hier_log2 = v;
        self
    }

    /// Builder-style setter for the access strategy.
    pub fn with_strategy(mut self, s: AccessStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Builder-style setter for the roll-over threshold.
    pub fn with_max_clock(mut self, v: u64) -> Self {
        self.max_clock = v;
        self
    }

    /// Builder-style setter for contention management.
    pub fn with_cm(mut self, cm: CmPolicy) -> Self {
        self.cm = cm;
        self
    }

    /// Check all invariants; [`crate::Stm::new`] and
    /// [`crate::Stm::reconfigure`] call this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.locks_log2 == 0 || self.locks_log2 > MAX_LOCKS_LOG2 {
            return Err(ConfigError::LocksOutOfRange(self.locks_log2));
        }
        if self.shifts > MAX_SHIFTS {
            return Err(ConfigError::ShiftsOutOfRange(self.shifts));
        }
        let h = 1u64 << self.hier_log2;
        if h > MAX_HIER as u64 || self.hier_log2 > self.locks_log2 {
            return Err(ConfigError::HierOutOfRange(self.hier_log2));
        }
        if self.max_clock < 16 {
            return Err(ConfigError::MaxClockTooSmall(self.max_clock));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = StmConfig::default();
        assert_eq!(c.n_locks(), 1 << 16);
        assert_eq!(c.shifts, 0);
        assert_eq!(c.hier_size(), 1);
        assert!(!c.hier_enabled());
        assert_eq!(c.strategy, AccessStrategy::WriteBack);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn tuning_start_is_2_pow_8_locks() {
        let c = StmConfig::tuning_start();
        assert_eq!(c.n_locks(), 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_locks() {
        let c = StmConfig::default().with_locks_log2(0);
        assert_eq!(c.validate(), Err(ConfigError::LocksOutOfRange(0)));
    }

    #[test]
    fn rejects_huge_lock_array() {
        let c = StmConfig::default().with_locks_log2(MAX_LOCKS_LOG2 + 1);
        assert!(matches!(c.validate(), Err(ConfigError::LocksOutOfRange(_))));
    }

    #[test]
    fn rejects_excessive_shifts() {
        let c = StmConfig::default().with_shifts(MAX_SHIFTS + 1);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::ShiftsOutOfRange(_))
        ));
    }

    #[test]
    fn rejects_hier_larger_than_locks() {
        let c = StmConfig::default().with_locks_log2(4).with_hier_log2(5);
        assert!(matches!(c.validate(), Err(ConfigError::HierOutOfRange(_))));
    }

    #[test]
    fn rejects_hier_above_mask_capacity() {
        // 2^9 = 512 > 256-bit masks.
        let c = StmConfig::default().with_locks_log2(20).with_hier_log2(9);
        assert!(matches!(c.validate(), Err(ConfigError::HierOutOfRange(_))));
    }

    #[test]
    fn accepts_max_hier() {
        let c = StmConfig::default().with_locks_log2(20).with_hier_log2(8);
        assert!(c.validate().is_ok());
        assert_eq!(c.hier_size(), 256);
    }

    #[test]
    fn rejects_tiny_max_clock() {
        let c = StmConfig::default().with_max_clock(2);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::MaxClockTooSmall(2))
        ));
    }

    #[test]
    fn builders_compose() {
        let c = StmConfig::default()
            .with_locks_log2(12)
            .with_shifts(3)
            .with_hier_log2(2)
            .with_strategy(AccessStrategy::WriteThrough)
            .with_cm(CmPolicy::Backoff {
                base: 4,
                max_spins: 1024,
            });
        assert_eq!(c.n_locks(), 4096);
        assert_eq!(c.shifts, 3);
        assert_eq!(c.hier_size(), 4);
        assert_eq!(c.strategy, AccessStrategy::WriteThrough);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cm_policy_parse_label_roundtrip() {
        for name in ["immediate", "suicide", "delay", "backoff"] {
            let policy = CmPolicy::parse(name).expect("known policy");
            assert_eq!(policy.label(), name);
        }
        assert_eq!(CmPolicy::parse("polite"), None);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::LocksOutOfRange(99).to_string();
        assert!(e.contains("99"));
        let e = ConfigError::HierOutOfRange(9).to_string();
        assert!(e.contains("h must satisfy"));
    }
}
