//! The read set, logically partitioned `h` ways for hierarchical
//! validation (Section 3.2: "read sets are partitioned into h
//! independent parts").
//!
//! Layout note: the paper describes `h` separate parts; we store one
//! flat vector with a partition tag per entry and have validation
//! precompute the set of skippable partitions (a 256-bit mask), then
//! make a single pass. This is semantically identical — whole
//! partitions are skipped or processed — but keeps the per-read push to
//! a single vector append, which dominates the paper's list workloads.
//!
//! Read-only transactions never touch this structure (the LSA snapshot
//! is incrementally consistent without one).

/// One invisible read: which lock covered it, the version observed, and
/// the hierarchy partition it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// Version the lock carried when the read was validated in-line.
    pub version: u64,
    /// Index into the lock array (`#locks <= 2^26` fits comfortably).
    pub lock_idx: u32,
    /// Hierarchy partition (0 when the hierarchy is disabled).
    pub part: u32,
}

// Keep the hot traversal footprint at 16 bytes per read (large read
// sets are the paper's stress case).
const _: () = assert!(core::mem::size_of::<ReadEntry>() == 16);

/// Flat, partition-tagged read set, reused across attempts.
#[derive(Debug)]
pub struct ReadSet {
    entries: Vec<ReadEntry>,
    h: usize,
}

impl ReadSet {
    /// Empty read set for a hierarchy of size `h`.
    pub fn new(h: usize) -> ReadSet {
        ReadSet {
            entries: Vec::new(),
            h,
        }
    }

    /// Clear for a new attempt (capacity retained); adopts the current
    /// hierarchy size after dynamic reconfiguration.
    pub fn reset(&mut self, h: usize) {
        self.entries.clear();
        self.h = h;
    }

    /// Record a read in partition `part`.
    #[inline(always)]
    pub fn push(&mut self, part: usize, lock_idx: usize, version: u64) {
        debug_assert!(part < self.h);
        debug_assert!(lock_idx <= u32::MAX as usize);
        self.entries.push(ReadEntry {
            version,
            lock_idx: lock_idx as u32,
            part: part as u32,
        });
    }

    /// Record a read in partition `part`, skipping the push when it
    /// would duplicate the most recent entry (same stripe, same
    /// version).
    ///
    /// Re-reading the stripe just touched is the dominant pattern in
    /// the list workloads (a node's fields share a stripe whenever
    /// `shifts ≥ 1`, and retries revisit the same words); since
    /// validation checks `(lock_idx, version)` pairs, a duplicate of
    /// the last entry adds work without adding coverage. Only the tail
    /// entry is consulted — an O(1) check on a cache-hot word, not a
    /// search. Skipping is sound: if the stripe has meanwhile moved to
    /// a *different* version, the version comparison fails and the
    /// entry is pushed as usual (and the snapshot-extension machinery
    /// has already doomed the older entry anyway).
    #[inline(always)]
    pub fn push_dedup_last(&mut self, part: usize, lock_idx: usize, version: u64) {
        if let Some(last) = self.entries.last() {
            if last.lock_idx as usize == lock_idx && last.version == version {
                debug_assert_eq!(
                    last.part as usize, part,
                    "partition hash must be a function of the lock index"
                );
                return;
            }
        }
        self.push(part, lock_idx, version);
    }

    /// Total entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no reads were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of partitions `h` this set was sized for.
    #[inline]
    pub fn partitions(&self) -> usize {
        self.h
    }

    /// All entries, in recording order.
    #[inline]
    pub fn entries(&self) -> &[ReadEntry] {
        &self.entries
    }

    /// Entries of partition `i` (test/diagnostic helper; validation
    /// uses the flat pass).
    pub fn part(&self, i: usize) -> Vec<ReadEntry> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.part as usize == i)
            .collect()
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &ReadEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tags_partition() {
        let mut rs = ReadSet::new(4);
        rs.push(0, 10, 1);
        rs.push(3, 20, 2);
        rs.push(3, 30, 3);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.part(0).len(), 1);
        assert_eq!(rs.part(3).len(), 2);
        assert_eq!(rs.part(1).len(), 0);
        assert_eq!(
            rs.part(3)[1],
            ReadEntry {
                version: 3,
                lock_idx: 30,
                part: 3
            }
        );
    }

    #[test]
    fn reset_clears_and_adopts_h() {
        let mut rs = ReadSet::new(2);
        rs.push(1, 5, 9);
        rs.reset(8);
        assert!(rs.is_empty());
        assert_eq!(rs.partitions(), 8);
        rs.push(7, 1, 1);
        assert_eq!(rs.part(7).len(), 1);
    }

    #[test]
    fn iter_visits_everything_in_order() {
        let mut rs = ReadSet::new(3);
        for i in 0..9 {
            rs.push(i % 3, i, i as u64);
        }
        let seen: Vec<usize> = rs.iter().map(|e| e.lock_idx as usize).collect();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
        assert_eq!(rs.entries().len(), 9);
    }

    #[test]
    fn dedup_skips_only_exact_tail_repeats() {
        let mut rs = ReadSet::new(4);
        rs.push_dedup_last(1, 10, 5);
        rs.push_dedup_last(1, 10, 5); // exact repeat: skipped
        assert_eq!(rs.len(), 1);
        rs.push_dedup_last(1, 10, 6); // same stripe, newer version: kept
        assert_eq!(rs.len(), 2);
        rs.push_dedup_last(2, 11, 6); // different stripe: kept
        rs.push_dedup_last(1, 10, 6); // not the tail anymore: kept
        assert_eq!(rs.len(), 4);
        let idxs: Vec<u32> = rs.iter().map(|e| e.lock_idx).collect();
        assert_eq!(idxs, vec![10, 10, 11, 10]);
    }

    #[test]
    fn dedup_on_empty_set_pushes() {
        let mut rs = ReadSet::new(2);
        rs.push_dedup_last(0, 3, 1);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.entries()[0].version, 1);
    }

    #[test]
    fn single_partition_degenerate_case() {
        let mut rs = ReadSet::new(1);
        for i in 0..100 {
            rs.push(0, i, 0);
        }
        assert_eq!(rs.part(0).len(), 100);
        assert_eq!(rs.len(), 100);
    }
}
