//! Per-thread statistics counters.
//!
//! Each registered thread owns a `ThreadStats` that it updates with
//! relaxed atomics (no cross-thread contention — only the aggregator
//! reads them). Figure 12 of the paper plots two of these counters:
//! read-set locks *processed* vs *skipped* during validation.

use core::sync::atomic::{AtomicU64, Ordering};
use stm_api::stats::BasicStats;
use stm_api::AbortReason;

/// Lively counters owned by one thread (one per thread × STM instance).
#[derive(Debug, Default)]
pub struct ThreadStats {
    /// Committed transactions.
    pub commits: AtomicU64,
    /// Committed read-only transactions (subset of `commits`).
    pub ro_commits: AtomicU64,
    /// Aborted attempts.
    pub aborts: AtomicU64,
    /// Aborts by [`AbortReason::index`].
    pub aborts_by_reason: [AtomicU64; AbortReason::ALL.len()],
    /// Transactional loads performed.
    pub reads: AtomicU64,
    /// Loads performed by attempts that later aborted — the "useless
    /// work" encounter-time locking avoids (Section 3).
    pub wasted_reads: AtomicU64,
    /// Transactional stores performed.
    pub writes: AtomicU64,
    /// Successful snapshot extensions.
    pub extensions: AtomicU64,
    /// Failed snapshot extensions (each also aborts).
    pub extend_failures: AtomicU64,
    /// Full read-set validations performed (extension + commit time).
    pub validations: AtomicU64,
    /// Read-set entries whose lock was checked during validation.
    pub val_locks_processed: AtomicU64,
    /// Read-set entries skipped thanks to the hierarchical fast path.
    pub val_locks_skipped: AtomicU64,
    /// Commit-time validations skipped because `wv == end + 1`.
    pub commit_validation_skips: AtomicU64,
    /// Transactional allocations.
    pub allocs: AtomicU64,
    /// Transactional frees (deferred to commit).
    pub frees: AtomicU64,
    /// Commit-timestamp acquisition conflicts: foreign commit
    /// timestamps that landed on the shared clock between this
    /// transaction's (last validated) snapshot and its own commit
    /// increment. Measures commit-clock *contention* independently of
    /// throughput — a partitioned (per-shard) clock drives it down even
    /// on a single core.
    pub clock_conflicts: AtomicU64,
}

macro_rules! bump {
    ($($name:ident => $field:ident),* $(,)?) => {
        $(
            #[doc = concat!("Increment `", stringify!($field), "` by one.")]
            #[inline]
            pub fn $name(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl ThreadStats {
    bump! {
        bump_commit => commits,
        bump_ro_commit => ro_commits,
        bump_read => reads,
        bump_write => writes,
        bump_extension => extensions,
        bump_extend_failure => extend_failures,
        bump_validation => validations,
        bump_commit_validation_skip => commit_validation_skips,
        bump_alloc => allocs,
        bump_free => frees,
    }

    /// Record an abort with its reason.
    #[inline]
    pub fn bump_abort(&self, reason: AbortReason) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
        self.aborts_by_reason[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Charge `n` reads to the wasted-work account (attempt aborted).
    #[inline]
    pub fn add_wasted_reads(&self, n: u64) {
        self.wasted_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` foreign commit timestamps to the clock-conflict tally.
    #[inline]
    pub fn add_clock_conflicts(&self, n: u64) {
        self.clock_conflicts.fetch_add(n, Ordering::Relaxed);
    }

    /// Add to the validation processed/skipped tallies.
    #[inline]
    pub fn add_validation_locks(&self, processed: u64, skipped: u64) {
        self.val_locks_processed
            .fetch_add(processed, Ordering::Relaxed);
        self.val_locks_skipped.fetch_add(skipped, Ordering::Relaxed);
    }

    /// Copy the counters into a plain snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut by_reason = [0u64; AbortReason::ALL.len()];
        for (slot, c) in by_reason.iter_mut().zip(self.aborts_by_reason.iter()) {
            *slot = c.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            ro_commits: self.ro_commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            aborts_by_reason: by_reason,
            reads: self.reads.load(Ordering::Relaxed),
            wasted_reads: self.wasted_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            extend_failures: self.extend_failures.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            val_locks_processed: self.val_locks_processed.load(Ordering::Relaxed),
            val_locks_skipped: self.val_locks_skipped.load(Ordering::Relaxed),
            commit_validation_skips: self.commit_validation_skips.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            clock_conflicts: self.clock_conflicts.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data aggregate of [`ThreadStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub commits: u64,
    pub ro_commits: u64,
    pub aborts: u64,
    pub aborts_by_reason: [u64; AbortReason::ALL.len()],
    pub reads: u64,
    pub wasted_reads: u64,
    pub writes: u64,
    pub extensions: u64,
    pub extend_failures: u64,
    pub validations: u64,
    pub val_locks_processed: u64,
    pub val_locks_skipped: u64,
    pub commit_validation_skips: u64,
    pub allocs: u64,
    pub frees: u64,
    pub clock_conflicts: u64,
}

macro_rules! fieldwise {
    ($self:ident, $other:ident, $op:ident, [$($f:ident),* $(,)?]) => {
        StatsSnapshot {
            $( $f: $self.$f.$op($other.$f), )*
            aborts_by_reason: {
                let mut r = [0u64; AbortReason::ALL.len()];
                for i in 0..r.len() {
                    r[i] = $self.aborts_by_reason[i].$op($other.aborts_by_reason[i]);
                }
                r
            },
        }
    };
}

impl StatsSnapshot {
    /// Counter-wise sum.
    pub fn merged(&self, other: &StatsSnapshot) -> StatsSnapshot {
        fieldwise!(
            self,
            other,
            wrapping_add,
            [
                commits,
                ro_commits,
                aborts,
                reads,
                wasted_reads,
                writes,
                extensions,
                extend_failures,
                validations,
                val_locks_processed,
                val_locks_skipped,
                commit_validation_skips,
                allocs,
                frees,
                clock_conflicts,
            ]
        )
    }

    /// Counter-wise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        fieldwise!(
            self,
            earlier,
            saturating_sub,
            [
                commits,
                ro_commits,
                aborts,
                reads,
                wasted_reads,
                writes,
                extensions,
                extend_failures,
                validations,
                val_locks_processed,
                val_locks_skipped,
                commit_validation_skips,
                allocs,
                frees,
                clock_conflicts,
            ]
        )
    }

    /// Project onto the backend-independent [`BasicStats`].
    pub fn basic(&self) -> BasicStats {
        BasicStats {
            commits: self.commits,
            aborts: self.aborts,
            aborts_by_reason: self.aborts_by_reason,
            clock_conflicts: self.clock_conflicts,
        }
    }

    /// Fraction of validation lock checks avoided by the hierarchy fast
    /// path, in `[0, 1]`.
    pub fn validation_skip_fraction(&self) -> f64 {
        let total = self.val_locks_processed + self.val_locks_skipped;
        if total == 0 {
            0.0
        } else {
            self.val_locks_skipped as f64 / total as f64
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "commits: {} (read-only {}), aborts: {}",
            self.commits, self.ro_commits, self.aborts
        )?;
        write!(f, "  aborts by reason:")?;
        for r in AbortReason::ALL {
            let n = self.aborts_by_reason[r.index()];
            if n > 0 {
                write!(f, " {}={n}", r.label())?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "  reads: {}, writes: {}, extensions: {} (+{} failed)",
            self.reads, self.writes, self.extensions, self.extend_failures
        )?;
        write!(
            f,
            "  validations: {} ({} skipped at commit), locks processed/skipped: {}/{} ({:.1}% fast path)",
            self.validations,
            self.commit_validation_skips,
            self.val_locks_processed,
            self.val_locks_skipped,
            self.validation_skip_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_snapshot() {
        let s = ThreadStats::default();
        s.bump_commit();
        s.bump_commit();
        s.bump_abort(AbortReason::ReadLocked);
        s.bump_read();
        s.add_validation_locks(10, 90);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.aborts_by_reason[AbortReason::ReadLocked.index()], 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.val_locks_processed, 10);
        assert_eq!(snap.val_locks_skipped, 90);
    }

    #[test]
    fn merged_sums_everything() {
        let a = ThreadStats::default();
        a.bump_commit();
        a.bump_write();
        let b = ThreadStats::default();
        b.bump_commit();
        b.bump_abort(AbortReason::WriteLocked);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.commits, 2);
        assert_eq!(m.writes, 1);
        assert_eq!(m.aborts, 1);
    }

    #[test]
    fn since_is_monotone_delta() {
        let s = ThreadStats::default();
        s.bump_commit();
        let t0 = s.snapshot();
        s.bump_commit();
        s.bump_extension();
        let t1 = s.snapshot();
        let d = t1.since(&t0);
        assert_eq!(d.commits, 1);
        assert_eq!(d.extensions, 1);
        assert_eq!(d.aborts, 0);
    }

    #[test]
    fn basic_projection() {
        let s = ThreadStats::default();
        s.bump_commit();
        s.bump_abort(AbortReason::ValidationFailed);
        let b = s.snapshot().basic();
        assert_eq!(b.commits, 1);
        assert_eq!(b.aborts, 1);
        assert_eq!(b.aborts_by_reason[AbortReason::ValidationFailed.index()], 1);
    }
}
