//! Recording plumbing for the `record` cargo feature (shared by the
//! TinySTM core and the TL2 crate): an instance-level [`TraceControl`]
//! holding the attached [`stm_check::TraceSink`], and a per-thread
//! [`TraceLocal`] that caches this thread's registered session log.
//!
//! Cost model: with no sink attached (or after detach) the per-attempt
//! cost is one `Relaxed` atomic load (the generation check); per-access
//! cost is one branch on a cached `Option`. The registry mutex is only
//! taken when a thread first observes a new generation. With the
//! feature disabled none of this exists.

use core::sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::sync::Arc;
use stm_check::{SessionLog, TraceSink};

/// Instance-level recording state: which sink (if any) is attached.
#[derive(Debug, Default)]
pub struct TraceControl {
    /// The attached sink; swapped under the mutex.
    sink: Mutex<Option<Arc<TraceSink>>>,
    /// Bumped on every attach/detach; 0 means "never attached", which
    /// lets threads skip the mutex entirely on the common path.
    generation: AtomicU64,
}

impl TraceControl {
    /// Fresh control with nothing attached.
    pub fn new() -> TraceControl {
        TraceControl::default()
    }

    /// Attach a sink: subsequent transaction attempts on every thread
    /// record into sessions registered with it.
    pub fn attach(&self, sink: &Arc<TraceSink>) {
        let mut guard = self.sink.lock();
        *guard = Some(Arc::clone(sink));
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Detach the current sink; threads stop recording at their next
    /// attempt (their already-registered session logs stay alive in the
    /// sink for draining).
    pub fn detach(&self) {
        let mut guard = self.sink.lock();
        *guard = None;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Current generation (Relaxed; pairs with [`TraceLocal::session`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Snapshot the attached sink (slow path).
    fn current(&self) -> (u64, Option<Arc<TraceSink>>) {
        let guard = self.sink.lock();
        (self.generation.load(Ordering::Acquire), guard.clone())
    }
}

/// Per-thread cache of the registered session log.
#[derive(Debug, Default)]
pub struct TraceLocal {
    /// Generation this cache was refreshed at (0 = never attached).
    generation: u64,
    /// This thread's session in the attached sink, if recording.
    log: Option<Arc<SessionLog>>,
}

impl TraceLocal {
    /// Fresh, detached cache.
    pub fn new() -> TraceLocal {
        TraceLocal::default()
    }

    /// The session log to record this attempt into, refreshing the
    /// cache if the control's generation moved (attach/detach).
    #[inline]
    pub fn session(&mut self, control: &TraceControl) -> Option<&SessionLog> {
        let generation = control.generation();
        if generation != self.generation {
            let (generation, sink) = control.current();
            self.log = sink.map(|s| s.register_session());
            self.generation = generation;
        }
        self.log.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_check::Event;

    #[test]
    fn detached_control_yields_no_session_without_locking() {
        let control = TraceControl::new();
        let mut local = TraceLocal::new();
        assert!(local.session(&control).is_none());
        assert_eq!(control.generation(), 0);
    }

    #[test]
    fn attach_registers_one_session_per_thread_cache() {
        let control = TraceControl::new();
        let sink = TraceSink::new();
        control.attach(&sink);
        let mut local = TraceLocal::new();
        // Two attempts reuse the same session.
        for start in 0..2 {
            let log = local.session(&control).expect("recording");
            // SAFETY: single-threaded test, this is the owning thread.
            unsafe {
                log.push(Event::Begin { start });
                log.push(Event::Commit { version: None });
            }
        }
        assert_eq!(sink.session_count(), 1);
        // SAFETY: no other thread recorded.
        let history = unsafe { sink.drain_history() }.unwrap();
        assert_eq!(history.sessions.len(), 1);
        assert_eq!(history.sessions[0].len(), 2);
    }

    #[test]
    fn detach_stops_recording_at_next_attempt() {
        let control = TraceControl::new();
        let sink = TraceSink::new();
        control.attach(&sink);
        let mut local = TraceLocal::new();
        assert!(local.session(&control).is_some());
        control.detach();
        assert!(local.session(&control).is_none());
        // Re-attach registers a fresh session.
        control.attach(&sink);
        assert!(local.session(&control).is_some());
        assert_eq!(sink.session_count(), 2);
    }
}
