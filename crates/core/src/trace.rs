//! Recording plumbing for the `record` cargo feature (shared by the
//! TinySTM core and the TL2 crate): an instance-level [`TraceControl`]
//! holding the attached [`stm_check::TraceSink`] and the instance's
//! reconfigure-epoch counter, and a per-thread [`TraceLocal`] that
//! caches this thread's registered session log.
//!
//! Cost model: with no sink attached (or after detach) the per-attempt
//! cost is one `Relaxed` atomic load (the generation check); per-access
//! cost is one branch on a cached `Option`. When recording, each
//! attempt additionally pays the activation handshake (one SeqCst
//! store + one SeqCst load) that makes [`TraceSink::drain_history`]
//! safe. The registry mutex is only taken when a thread first observes
//! a new generation. With the feature disabled none of this exists.

use core::sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::sync::Arc;
use stm_check::{SessionLog, TraceSink};

/// Instance-level recording state: which sink (if any) is attached,
/// and the reconfigure epoch every recorded `Begin` is stamped with.
#[derive(Debug, Default)]
pub struct TraceControl {
    /// The attached sink; swapped under the mutex.
    sink: Mutex<Option<Arc<TraceSink>>>,
    /// Bumped on every attach/detach; 0 means "never attached", which
    /// lets threads skip the mutex entirely on the common path.
    generation: AtomicU64,
    /// Reconfigure epoch. Bumped only inside the reconfiguration's
    /// quiesce fence (which excludes entered transactions), so a
    /// `Relaxed` read inside the gate is race-free — the fence's own
    /// synchronization publishes the bump.
    epoch: AtomicU64,
}

impl TraceControl {
    /// Fresh control with nothing attached.
    pub fn new() -> TraceControl {
        TraceControl::default()
    }

    /// Attach a sink: subsequent transaction attempts on every thread
    /// record into sessions registered with it.
    pub fn attach(&self, sink: &Arc<TraceSink>) {
        let mut guard = self.sink.lock();
        *guard = Some(Arc::clone(sink));
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Detach the current sink; threads stop recording at their next
    /// attempt (their already-registered session logs stay alive in the
    /// sink for draining).
    pub fn detach(&self) {
        let mut guard = self.sink.lock();
        *guard = None;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Current generation (Relaxed; pairs with [`TraceLocal::session`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Current reconfigure epoch (read inside the quiesce gate only;
    /// see the field docs for why `Relaxed` suffices).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Bump the reconfigure epoch. Must be called inside a quiesce
    /// fence (no transaction can be mid-attempt).
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Poison the attached sink (if any) because the clock rolled over
    /// mid-recording: versions renumber without an epoch boundary, so
    /// the history would be unsound. Called inside the roll-over fence.
    pub fn mark_rollover(&self) {
        if let Some(sink) = &*self.sink.lock() {
            sink.mark_rollover();
        }
    }

    /// Snapshot the attached sink (slow path).
    fn current(&self) -> (u64, Option<Arc<TraceSink>>) {
        let guard = self.sink.lock();
        (self.generation.load(Ordering::Acquire), guard.clone())
    }
}

/// Per-thread cache of the registered session log.
#[derive(Debug, Default)]
pub struct TraceLocal {
    /// Generation this cache was refreshed at (0 = never attached).
    generation: u64,
    /// This thread's session in the attached sink, if recording.
    log: Option<(Arc<TraceSink>, Arc<SessionLog>)>,
}

impl TraceLocal {
    /// Fresh, detached cache.
    pub fn new() -> TraceLocal {
        TraceLocal::default()
    }

    /// The session log to record this attempt into, refreshing the
    /// cache if the control's generation moved (attach/detach). On
    /// success the session has been *activated* for this attempt — the
    /// caller must bracket it with an [`stm_check::AttemptGuard`] so it
    /// deactivates when the attempt ends (commit, abort, or panic).
    /// Returns `None` when not recording or when the sink has been
    /// closed for draining.
    #[inline]
    pub fn session(&mut self, control: &TraceControl) -> Option<&SessionLog> {
        let generation = control.generation();
        if generation != self.generation {
            let (generation, sink) = control.current();
            self.log = sink.map(|s| {
                let log = s.register_session();
                (s, log)
            });
            self.generation = generation;
        }
        let activated = match &self.log {
            Some((sink, log)) => log.try_activate(sink),
            None => return None,
        };
        if !activated {
            // The sink was closed for draining: stop recording for good
            // (a fresh attach bumps the generation and re-registers).
            self.log = None;
            return None;
        }
        self.log.as_ref().map(|(_, log)| &**log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_check::Event;

    #[test]
    fn detached_control_yields_no_session_without_locking() {
        let control = TraceControl::new();
        let mut local = TraceLocal::new();
        assert!(local.session(&control).is_none());
        assert_eq!(control.generation(), 0);
        assert_eq!(control.epoch(), 0);
    }

    #[test]
    fn attach_registers_one_session_per_thread_cache() {
        let control = TraceControl::new();
        let sink = TraceSink::new();
        control.attach(&sink);
        let mut local = TraceLocal::new();
        // Two attempts reuse the same session.
        for start in 0..2 {
            let log = local.session(&control).expect("recording");
            // SAFETY: single-threaded test, this is the owning thread,
            // and the session was activated by `session`.
            unsafe {
                log.push(Event::Begin { start, epoch: 0 });
                log.push(Event::Commit { version: None });
            }
            log.deactivate();
        }
        assert_eq!(sink.session_count(), 1);
        let history = sink.drain_history().unwrap();
        assert_eq!(history.sessions.len(), 1);
        assert_eq!(history.sessions[0].len(), 2);
    }

    #[test]
    fn detach_stops_recording_at_next_attempt() {
        let control = TraceControl::new();
        let sink = TraceSink::new();
        control.attach(&sink);
        let mut local = TraceLocal::new();
        local.session(&control).expect("recording").deactivate();
        control.detach();
        assert!(local.session(&control).is_none());
        // Re-attach registers a fresh session.
        control.attach(&sink);
        local.session(&control).expect("recording").deactivate();
        assert_eq!(sink.session_count(), 2);
    }

    #[test]
    fn closed_sink_stops_recording_without_detach() {
        let control = TraceControl::new();
        let sink = TraceSink::new();
        control.attach(&sink);
        let mut local = TraceLocal::new();
        local.session(&control).expect("recording").deactivate();
        let _ = sink.drain_history().unwrap();
        // The drain closed the sink: the next attempt must not record.
        assert!(local.session(&control).is_none());
        assert!(local.session(&control).is_none(), "stays off");
    }

    #[test]
    fn epoch_advances_and_marks_rollover() {
        let control = TraceControl::new();
        assert_eq!(control.epoch(), 0);
        control.advance_epoch();
        control.advance_epoch();
        assert_eq!(control.epoch(), 2);
        // No sink attached: marking a roll-over is a no-op.
        control.mark_rollover();
        let sink = TraceSink::new();
        control.attach(&sink);
        control.mark_rollover();
        assert!(matches!(
            sink.drain_history(),
            Err(stm_check::RecordingError::ClockRollover { rollovers: 1 })
        ));
    }
}
