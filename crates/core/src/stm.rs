//! The `Stm` front-end: thread registration, the retry loop, clock
//! roll-over, dynamic reconfiguration, and statistics aggregation.
//!
//! ## Memory ordering (DESIGN.md §3, sites S1–S3)
//!
//! * **S1 mapping pointer** — Acquire load in the run loop / AcqRel
//!   swap in `reconfigure`. The swap only happens inside a quiesce
//!   fence (which excludes entered transactions), so Acquire/Release is
//!   ample; the load must still be Acquire so the fresh `Mapping`'s
//!   contents (lock array, masks) are visible to the attempt.
//! * **S2 `active_start` begin-path publication** — SeqCst store,
//!   *before* the snapshot clock sample (also SeqCst, site C2). This is
//!   a Dekker pattern with the limbo reclaimer: a committing freer
//!   RMWs the clock (C1) and the reclaimer then reads `active_start`;
//!   the starting transaction stores `active_start` and then reads the
//!   clock. If the transaction's sample missed the freer's increment
//!   (snapshot older than the free), the SeqCst total order forces the
//!   reclaimer's later read to see the published marker, so the block
//!   outlives the snapshot that can still reach it. Publishing a
//!   conservative marker (a clock value sampled *no later than* the
//!   snapshot) before sampling the snapshot closes the window the
//!   previous sample-then-publish order left open.
//! * **S3 `rollovers`/`reconfigurations`/`commits_since_reclaim`** —
//!   Relaxed: monotonic diagnostics with no ordering role.

use crate::clock::GlobalClock;
use crate::config::{CmPolicy, ConfigError, StmConfig};
use crate::mapping::Mapping;
use crate::mem::Limbo;
use crate::quiesce::Quiesce;
use crate::stats::{StatsSnapshot, ThreadStats};
use crate::tx::{AttemptEnd, Tx, TxCtx};
use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use parking_lot::Mutex;
use std::cell::{RefCell, UnsafeCell};
use std::sync::Arc;
use stm_api::{Abort, AbortReason, RunError, TmHandle, TxKind, TxResult};

/// Commits between opportunistic limbo-reclamation attempts (per thread).
const RECLAIM_PERIOD: u64 = 1024;

/// Per-(thread × STM) state. Pinned in the STM's registry so stripe
/// records published through lock words stay dereferenceable for the
/// lifetime of the STM even after the thread exits.
pub(crate) struct ThreadState {
    /// Statistics counters (atomics; aggregated by `Stm::stats`).
    pub stats: ThreadStats,
    /// Start timestamp of the in-flight transaction, `u64::MAX` when
    /// idle. Read by the limbo reclaimer.
    pub active_start: AtomicU64,
    /// Mutable transactional state — owning thread only.
    ctx: UnsafeCell<TxCtx>,
    /// Commits since the last reclamation attempt (owning thread only;
    /// atomic for the shared-reference API, relaxed everywhere).
    commits_since_reclaim: AtomicU64,
    /// Cached recording session — owning thread only.
    #[cfg(feature = "record")]
    trace: UnsafeCell<crate::trace::TraceLocal>,
    /// Cached WAL sink — owning thread only.
    #[cfg(feature = "durable")]
    wal: UnsafeCell<crate::wal::WalLocal>,
}

// SAFETY: `ctx` is only touched by the owning thread (enforced by the
// thread-local registry handing each thread its own state); all shared
// fields are atomics.
unsafe impl Sync for ThreadState {}
unsafe impl Send for ThreadState {}

impl ThreadState {
    fn new(seed: u64) -> ThreadState {
        ThreadState {
            stats: ThreadStats::default(),
            active_start: AtomicU64::new(u64::MAX),
            ctx: UnsafeCell::new(TxCtx::new(seed)),
            commits_since_reclaim: AtomicU64::new(0),
            #[cfg(feature = "record")]
            trace: UnsafeCell::new(crate::trace::TraceLocal::new()),
            #[cfg(feature = "durable")]
            wal: UnsafeCell::new(crate::wal::WalLocal::new()),
        }
    }
}

/// Shared state behind an [`Stm`] handle.
pub(crate) struct StmInner {
    id: u64,
    pub(crate) clock: GlobalClock,
    pub(crate) quiesce: Quiesce,
    mapping: AtomicPtr<Mapping>,
    pub(crate) limbo: Limbo,
    registry: Mutex<Vec<Arc<ThreadState>>>,
    /// Mirror of the active configuration (the authoritative copy lives
    /// in the mapping; this one is readable without pinning).
    config_mirror: Mutex<StmConfig>,
    rollovers: AtomicU64,
    reconfigurations: AtomicU64,
    /// Hot-path telemetry instruments (commit latency / retries),
    /// runtime-gated — disabled they cost one Relaxed load per `run`.
    telemetry: stm_telemetry::TxMetrics,
    /// Attached event-recording sink, if any.
    #[cfg(feature = "record")]
    pub(crate) trace: crate::trace::TraceControl,
    /// Attached WAL sink + durability epoch, if any.
    #[cfg(feature = "durable")]
    pub(crate) wal: crate::wal::WalControl,
    /// Active protocol mutation (checker self-tests only).
    #[cfg(feature = "fault-inject")]
    pub(crate) fault: crate::fault::FaultSwitch,
}

impl Drop for StmInner {
    fn drop(&mut self) {
        // Uniquely owned at drop; Acquire covers a reconfigure on
        // another thread just before the last handle moved here.
        let ptr = self.mapping.load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: uniquely owned at drop; no transactions can be
            // active (they hold Arc clones of this inner).
            unsafe { drop(Box::from_raw(ptr)) };
        }
        // Limbo drops (and reclaims) after this.
    }
}

/// Aggregate statistics for an STM instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct StmStats {
    /// Sum of all per-thread counters.
    pub totals: StatsSnapshot,
    /// Clock roll-overs performed.
    pub rollovers: u64,
    /// Dynamic reconfigurations performed.
    pub reconfigurations: u64,
    /// Blocks currently awaiting safe reclamation.
    pub limbo_pending: usize,
    /// Threads that have registered with this STM.
    pub threads: usize,
}

impl std::fmt::Display for StmStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.totals)?;
        write!(
            f,
            "  rollovers: {}, reconfigurations: {}, limbo pending: {}, threads: {}",
            self.rollovers, self.reconfigurations, self.limbo_pending, self.threads
        )
    }
}

/// A word-based, time-based software transactional memory instance
/// (TinySTM, PPoPP 2008).
///
/// Cheap to clone; clones share all state. Each OS thread using the
/// instance gets its own transaction descriptor on first use.
///
/// ```
/// use tinystm::{Stm, StmConfig};
/// use stm_api::{TmTx, TxKind};
/// use stm_api::mem::WordBlock;
///
/// let stm = Stm::new(StmConfig::default()).unwrap();
/// let cell = WordBlock::new(1);
/// let addr = cell.as_ptr();
/// stm.run(TxKind::ReadWrite, |tx| {
///     let v = unsafe { tx.load_word(addr) }?;
///     unsafe { tx.store_word(addr, v + 1) }
/// });
/// assert_eq!(cell.read(0), 1);
/// ```
#[derive(Clone)]
pub struct Stm {
    inner: Arc<StmInner>,
}

static NEXT_STM_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread descriptors, keyed by STM instance id.
    static THREAD_STATES: RefCell<Vec<(u64, Arc<ThreadState>)>> =
        const { RefCell::new(Vec::new()) };
}

impl Stm {
    /// Create an STM with the given configuration.
    pub fn new(config: StmConfig) -> Result<Stm, ConfigError> {
        config.validate()?;
        let mapping = Box::into_raw(Box::new(Mapping::new(config)));
        Ok(Stm {
            inner: Arc::new(StmInner {
                id: NEXT_STM_ID.fetch_add(1, Ordering::Relaxed),
                clock: GlobalClock::new(config.max_clock),
                quiesce: Quiesce::new(),
                mapping: AtomicPtr::new(mapping),
                limbo: Limbo::new(),
                registry: Mutex::new(Vec::new()),
                config_mirror: Mutex::new(config),
                rollovers: AtomicU64::new(0),
                reconfigurations: AtomicU64::new(0),
                telemetry: stm_telemetry::TxMetrics::new(),
                #[cfg(feature = "record")]
                trace: crate::trace::TraceControl::new(),
                #[cfg(feature = "durable")]
                wal: crate::wal::WalControl::new(),
                #[cfg(feature = "fault-inject")]
                fault: crate::fault::FaultSwitch::default(),
            }),
        })
    }

    /// Create an STM with the default (paper) configuration.
    pub fn with_defaults() -> Stm {
        Stm::new(StmConfig::default()).expect("default config is valid")
    }

    /// The active configuration.
    pub fn config(&self) -> StmConfig {
        *self.inner.config_mirror.lock()
    }

    /// This thread's descriptor for this STM (created and registered on
    /// first use).
    fn thread_state(&self) -> Arc<ThreadState> {
        let id = self.inner.id;
        THREAD_STATES.with(|cell| {
            let mut v = cell.borrow_mut();
            if let Some((_, ts)) = v.iter().find(|(tid, _)| *tid == id) {
                return Arc::clone(ts);
            }
            // Purge descriptors of dropped STM instances (registry gone
            // means we hold the last reference).
            v.retain(|(_, ts)| Arc::strong_count(ts) > 1);
            let seed = 0x9E37_79B9_7F4A_7C15u64 ^ (id << 32) ^ (&*v as *const _ as u64);
            let ts = Arc::new(ThreadState::new(seed));
            self.inner.registry.lock().push(Arc::clone(&ts));
            v.push((id, Arc::clone(&ts)));
            ts
        })
    }

    /// Run `body` as a transaction, retrying until commit. See
    /// [`stm_api::TmHandle::run`] for the contract.
    ///
    /// # Panics
    /// On a terminal failure ([`RunError`], e.g. the attached WAL sink
    /// giving up) — the transaction was already rolled back cleanly at
    /// that point. Callers that must survive storage faults use
    /// [`Stm::try_run`].
    pub fn run<R, F>(&self, kind: TxKind, body: F) -> R
    where
        F: for<'x> FnMut(&mut Tx<'x>) -> TxResult<R>,
    {
        match self.try_run(kind, body) {
            Ok(value) => value,
            Err(e) => panic!("Stm::run: {e} (use try_run to handle this)"),
        }
    }

    /// [`Stm::run`], but a terminal failure surfaces as `Err` instead
    /// of panicking: the attempt is rolled back (no memory effect, no
    /// log effect, locks released) and the retry loop exits — retrying
    /// cannot help when the WAL sink has already exhausted its own
    /// retry budget.
    pub fn try_run<R, F>(&self, kind: TxKind, mut body: F) -> Result<R, RunError>
    where
        F: for<'x> FnMut(&mut Tx<'x>) -> TxResult<R>,
    {
        let ts = self.thread_state();
        let inner: &StmInner = &self.inner;
        // Telemetry is sampled once per `run` call: latency covers the
        // whole call (retries included), and the flight recorder traces
        // the attempt lifecycle. Both checks are one Relaxed load; off
        // (the default, and the perf gate's configuration) they cost an
        // untaken branch.
        let tele = &inner.telemetry;
        let tele_start = tele.enabled().then(std::time::Instant::now);
        let flight_on = stm_telemetry::flight::enabled();
        if flight_on {
            stm_telemetry::flight::record(
                tele.tag(),
                stm_telemetry::flight::FlightKind::Begin,
                0,
                0,
            );
        }
        loop {
            if inner.clock.overflowed() {
                self.handle_overflow();
            }
            // The guard exits the gate on drop even if `body` panics:
            // the harness tolerates panicking workers, and a leaked
            // enter would wedge every later fence.
            let active = inner.quiesce.enter_guarded(&ts.active_start);
            // Site S1: the mapping is pinned for the attempt —
            // reconfiguration swaps it only inside a fence, which
            // excludes entered transactions.
            let map = unsafe { &*inner.mapping.load(Ordering::Acquire) };
            let cm = map.config().cm;
            // SAFETY: ctx belongs to this thread exclusively.
            let ctx = unsafe { &mut *ts.ctx.get() };
            // CM_DELAY: before retrying after a lock conflict, wait
            // (bounded) for the contended stripe to drain so the retry
            // does not re-collide with the same owner. Must run before
            // the snapshot sample below, or the wait would just stale
            // the snapshot.
            if let (CmPolicy::Delay, Some(idx)) = (cm, ctx.last_contended.take()) {
                delay_wait(map, idx);
            }
            // Site S2: publish the oldest-reader marker *before*
            // sampling the snapshot (a marker sampled first is ≤ the
            // snapshot, so reclamation stays conservative); SeqCst for
            // the Dekker race with the limbo reclaimer — see module
            // docs.
            ts.active_start.store(inner.clock.now(), Ordering::SeqCst);
            let now = inner.clock.now();
            ctx.begin(kind, map, now);
            #[cfg(feature = "record")]
            // SAFETY: the trace local belongs to this thread.
            let trace = unsafe { &mut *ts.trace.get() }.session(&inner.trace);
            // The guard deactivates the session when the attempt ends,
            // even if `body` panics — a session left active would make
            // every later (safe) drain time out.
            #[cfg(feature = "record")]
            let _trace_attempt = trace.map(stm_check::AttemptGuard::new);
            #[cfg(feature = "record")]
            if let Some(log) = trace {
                // SAFETY: this thread owns the session log and
                // activated it above.
                unsafe {
                    log.push(stm_check::Event::Begin {
                        start: now,
                        epoch: inner.trace.epoch(),
                    })
                };
            }
            // The WAL sink the commit publishes through (durable only).
            // SAFETY: the wal local belongs to this thread.
            #[cfg(feature = "durable")]
            let wal = unsafe { &mut *ts.wal.get() }.sink(&inner.wal);
            let outcome: Result<R, AbortReason> = {
                let mut tx = Tx {
                    inner,
                    map,
                    ts: &ts,
                    ctx,
                    finished: false,
                    strategy: map.config().strategy,
                    hier_on: map.hier_enabled(),
                    me: Arc::as_ptr(&ts) as usize,
                    #[cfg(feature = "record")]
                    trace,
                    #[cfg(feature = "durable")]
                    wal: wal.map(|s| &**s),
                };
                match body(&mut tx) {
                    Ok(value) => match tx.commit() {
                        AttemptEnd::Committed => Ok(value),
                        AttemptEnd::Aborted(r) => Err(r),
                    },
                    Err(Abort(reason)) => {
                        tx.rollback(reason);
                        Err(reason)
                    }
                }
            };

            drop(active);

            // SAFETY: tx is gone; re-borrow for the epilogue.
            let ctx = unsafe { &mut *ts.ctx.get() };
            match outcome {
                Ok(value) => {
                    let retries = ctx.consecutive_aborts;
                    if let Some(start) = tele_start {
                        tele.record_commit(start.elapsed().as_nanos() as u64, u64::from(retries));
                    }
                    if flight_on {
                        stm_telemetry::flight::record(
                            tele.tag(),
                            stm_telemetry::flight::FlightKind::Commit,
                            0,
                            retries.min(u32::from(u16::MAX)) as u16,
                        );
                    }
                    ctx.consecutive_aborts = 0;
                    self.maybe_reclaim(&ts);
                    return Ok(value);
                }
                Err(AbortReason::WalFailed) => {
                    if flight_on {
                        stm_telemetry::flight::record(
                            tele.tag(),
                            stm_telemetry::flight::FlightKind::Abort,
                            AbortReason::WalFailed.index() as u8,
                            0,
                        );
                    }
                    // Terminal: the sink already rolled through its own
                    // retry policy; the attempt is rolled back. Exit
                    // the loop instead of retrying a doomed commit.
                    return Err(RunError::WalFailed);
                }
                Err(reason) => {
                    if flight_on {
                        stm_telemetry::flight::record(
                            tele.tag(),
                            stm_telemetry::flight::FlightKind::Retry,
                            reason.index() as u8,
                            0,
                        );
                    }
                    ctx.consecutive_aborts = ctx.consecutive_aborts.saturating_add(1);
                    if matches!(reason, AbortReason::ClockOverflow) {
                        self.handle_overflow();
                    } else {
                        backoff(ctx, cm);
                    }
                }
            }
        }
    }

    /// Convenience: run a read-only transaction (no read set, no
    /// commit-time validation — the paper's read-only fast path).
    pub fn run_ro<R, F>(&self, body: F) -> R
    where
        F: for<'x> FnMut(&mut Tx<'x>) -> TxResult<R>,
    {
        self.run(TxKind::ReadOnly, body)
    }

    /// Run the clock roll-over protocol if the clock is (still) past its
    /// threshold: quiesce, zero every version, reset the clock.
    pub(crate) fn handle_overflow(&self) {
        let inner: &StmInner = &self.inner;
        inner.quiesce.fence(|| {
            if !inner.clock.overflowed() {
                return; // another thread rolled over first
            }
            // SAFETY: fence ⇒ no transaction is active; the mapping
            // cannot be swapped concurrently (fencers are serialized).
            let map = unsafe { &*inner.mapping.load(Ordering::Acquire) };
            map.reset_versions();
            inner.clock.reset();
            inner.limbo.reclaim_all();
            // Versions renumber with no epoch boundary: an attached
            // recording sink can no longer produce a sound history, so
            // poison it (the drain fails with a dedicated error).
            #[cfg(feature = "record")]
            inner.trace.mark_rollover();
            // Commit timestamps also renumber for the WAL — but an
            // epoch bump is all the log format needs to stay sound
            // (per-key monotonicity is scoped to an epoch), so
            // durability survives roll-over where recording cannot.
            #[cfg(feature = "durable")]
            inner.wal.advance_epoch();
            // Site S3: diagnostic counter.
            inner.rollovers.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Atomically switch to a new configuration (Section 4.2's
    /// reconfiguration, built on the roll-over mechanism): quiesce,
    /// replace lock array + hierarchy + hash parameters, reset the
    /// clock and reclaim limbo.
    ///
    /// Must not be called from inside a transaction closure (deadlock:
    /// the fence waits for the calling transaction itself).
    pub fn reconfigure(&self, config: StmConfig) -> Result<(), ConfigError> {
        config.validate()?;
        let inner: &StmInner = &self.inner;
        inner.quiesce.fence(|| {
            let fresh = Box::into_raw(Box::new(Mapping::new(config)));
            // Site S1: Release half publishes the fresh mapping's
            // contents to the run loop's Acquire load.
            let old = inner.mapping.swap(fresh, Ordering::AcqRel);
            // SAFETY: no transaction is active inside the fence, so no
            // one holds the old mapping.
            unsafe { drop(Box::from_raw(old)) };
            inner.clock.reset();
            inner.clock.set_max(config.max_clock);
            inner.limbo.reclaim_all();
            *inner.config_mirror.lock() = config;
            // Stripe IDs and clock values renumber across this fence:
            // recorded histories segment on the epoch (stm-check's
            // per-epoch checking), so recording stays sound through
            // the switch.
            #[cfg(feature = "record")]
            inner.trace.advance_epoch();
            // The durability epoch segments the WAL the same way.
            #[cfg(feature = "durable")]
            inner.wal.advance_epoch();
            // Site S3: diagnostic counter.
            inner.reconfigurations.fetch_add(1, Ordering::Relaxed);
        });
        Ok(())
    }

    /// Opportunistically reclaim limbo blocks whose epoch has passed.
    fn maybe_reclaim(&self, ts: &ThreadState) {
        let n = ts.commits_since_reclaim.load(Ordering::Relaxed) + 1;
        if n < RECLAIM_PERIOD {
            ts.commits_since_reclaim.store(n, Ordering::Relaxed);
            return;
        }
        ts.commits_since_reclaim.store(0, Ordering::Relaxed);
        if self.inner.limbo.is_empty() {
            return;
        }
        let min_active = self
            .inner
            .registry
            .lock()
            .iter()
            // Site S2 (reclaimer side of the Dekker pattern): SeqCst.
            .map(|t| t.active_start.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        self.inner.limbo.try_reclaim(min_active);
    }

    /// Force reclamation of all safely reclaimable limbo blocks now
    /// (tests / teardown).
    pub fn reclaim_now(&self) -> usize {
        let min_active = self
            .inner
            .registry
            .lock()
            .iter()
            // Site S2 (reclaimer side of the Dekker pattern): SeqCst.
            .map(|t| t.active_start.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        self.inner.limbo.try_reclaim(min_active)
    }

    /// Aggregate statistics across all registered threads.
    pub fn stats(&self) -> StmStats {
        let registry = self.inner.registry.lock();
        let mut totals = StatsSnapshot::default();
        for ts in registry.iter() {
            totals = totals.merged(&ts.stats.snapshot());
        }
        StmStats {
            totals,
            rollovers: self.inner.rollovers.load(Ordering::Relaxed),
            reconfigurations: self.inner.reconfigurations.load(Ordering::Relaxed),
            limbo_pending: self.inner.limbo.len(),
            threads: registry.len(),
        }
    }

    /// Current global clock value (diagnostics/tests).
    pub fn clock_now(&self) -> u64 {
        self.inner.clock.now()
    }

    /// This instance's hot-path telemetry instruments. Disabled by
    /// default; enable via [`stm_telemetry::TxMetrics::set_enabled`] to
    /// start recording commit-latency and retries histograms (the
    /// sharded engine also tags each shard's instance here).
    pub fn telemetry(&self) -> &stm_telemetry::TxMetrics {
        &self.inner.telemetry
    }

    /// Attach an event-recording sink: every thread's subsequent
    /// transaction attempts are recorded as a session of the sink
    /// (txn begin/commit/abort, per-stripe reads with observed
    /// versions, per-stripe writes). Drain with the safe
    /// [`stm_check::TraceSink::drain_history`] once all workers have
    /// joined (or stopped running transactions).
    ///
    /// [`Stm::reconfigure`] *is* supported during the recorded window:
    /// every `Begin` is stamped with the reconfigure epoch (bumped
    /// inside the quiesce fence) and the checker segments the history
    /// per epoch, so stripe renumbering cannot alias. Clock roll-over
    /// has no epoch boundary and instead poisons the sink — the drain
    /// fails loudly with
    /// [`stm_check::RecordingError::ClockRollover`] rather than
    /// producing an unsound history.
    #[cfg(feature = "record")]
    pub fn attach_trace(&self, sink: &std::sync::Arc<stm_check::TraceSink>) {
        self.inner.trace.attach(sink);
    }

    /// Current reconfigure epoch recorded `Begin` events are stamped
    /// with (advances on every [`Stm::reconfigure`]). Lets a driver
    /// that attaches recording mid-run discard the partial first epoch
    /// via [`stm_check::History::retain_epochs_from`].
    #[cfg(feature = "record")]
    pub fn record_epoch(&self) -> u64 {
        self.inner.trace.epoch()
    }

    /// Stop recording; threads notice at their next attempt.
    #[cfg(feature = "record")]
    pub fn detach_trace(&self) {
        self.inner.trace.detach();
    }

    /// Activate a protocol mutation (checker self-tests only).
    #[cfg(feature = "fault-inject")]
    pub fn inject_fault(&self, fault: crate::fault::FaultInjection) {
        self.inner.fault.set(fault);
    }

    /// Run `critical` inside this instance's quiesce fence: no
    /// transaction is active while it runs and every prior commit is
    /// fully published (locks released, write-backs visible). This is
    /// the checkpoint boundary the durable layer snapshots under.
    ///
    /// Must not be called from inside a transaction closure (deadlock:
    /// the fence waits for the calling transaction itself).
    pub fn quiesce<R>(&self, critical: impl FnOnce() -> R) -> R {
        self.inner.quiesce.fence(critical)
    }

    /// Attach a WAL sink: every subsequently committed update
    /// transaction publishes its write set (epoch, commit timestamp,
    /// deduplicated `(addr, value)` pairs) through the sink *before*
    /// releasing its stripe locks, so conflicting commits appear in the
    /// log in commit order. Replaces any previous sink.
    #[cfg(feature = "durable")]
    pub fn attach_wal(&self, sink: &std::sync::Arc<dyn stm_api::wal::WalSink>) {
        self.inner.wal.attach(sink);
    }

    /// Stop publishing to the WAL sink; threads notice at their next
    /// attempt (an in-flight commit may publish once more — the sink's
    /// `Arc` keeps it valid).
    #[cfg(feature = "durable")]
    pub fn detach_wal(&self) {
        self.inner.wal.detach();
    }

    /// Current durability epoch (advances on reconfigure *and* clock
    /// roll-over — every fence that renumbers commit timestamps).
    #[cfg(feature = "durable")]
    pub fn wal_epoch(&self) -> u64 {
        self.inner.wal.epoch()
    }
}

impl From<ConfigError> for stm_api::LifecycleError {
    fn from(e: ConfigError) -> stm_api::LifecycleError {
        stm_api::LifecycleError::InvalidConfig(e.to_string())
    }
}

impl stm_api::TmLifecycle for Stm {
    type Config = StmConfig;

    fn build(config: &StmConfig) -> Result<Stm, stm_api::LifecycleError> {
        Stm::new(*config).map_err(Into::into)
    }

    fn reconfigure(&self, config: &StmConfig) -> Result<(), stm_api::LifecycleError> {
        Stm::reconfigure(self, *config).map_err(Into::into)
    }

    fn clock_now(&self) -> u64 {
        Stm::clock_now(self)
    }

    fn quiesce<R>(&self, critical: impl FnOnce() -> R) -> R {
        Stm::quiesce(self, critical)
    }

    #[cfg(feature = "durable")]
    fn attach_wal(&self, sink: &std::sync::Arc<dyn stm_api::wal::WalSink>) {
        Stm::attach_wal(self, sink)
    }

    #[cfg(feature = "durable")]
    fn detach_wal(&self) {
        Stm::detach_wal(self)
    }

    #[cfg(feature = "durable")]
    fn wal_epoch(&self) -> u64 {
        Stm::wal_epoch(self)
    }
}

impl TmHandle for Stm {
    type Tx<'a> = Tx<'a>;

    fn run<R, F>(&self, kind: TxKind, body: F) -> R
    where
        F: for<'a> FnMut(&mut Self::Tx<'a>) -> TxResult<R>,
    {
        Stm::run(self, kind, body)
    }

    fn try_run<R, F>(&self, kind: TxKind, body: F) -> Result<R, RunError>
    where
        F: for<'a> FnMut(&mut Self::Tx<'a>) -> TxResult<R>,
    {
        Stm::try_run(self, kind, body)
    }

    fn stats_snapshot(&self) -> stm_api::stats::BasicStats {
        self.stats().totals.basic()
    }

    fn backend_name(&self) -> &'static str {
        match self.config().strategy {
            crate::config::AccessStrategy::WriteBack => "tinystm-wb",
            crate::config::AccessStrategy::WriteThrough => "tinystm-wt",
        }
    }
}

impl stm_telemetry::MetricsSource for Stm {
    fn collect(&self, frame: &mut stm_telemetry::MetricsFrame) {
        let stats = self.stats();
        let backend = stm_api::TmHandle::backend_name(self);
        let tag = self.inner.telemetry.tag();
        let shard;
        let mut labels: Vec<(&str, &str)> = vec![("backend", backend)];
        if tag != stm_telemetry::UNTAGGED {
            shard = tag.to_string();
            labels.push(("shard", shard.as_str()));
        }
        stm_telemetry::collect_tx_counters(
            frame,
            &labels,
            &stats.totals.basic(),
            stats.rollovers,
            stats.reconfigurations,
        );
        self.inner.telemetry.collect_into(frame, &labels);
    }
}

/// Bound on the CM_DELAY wait loop. The wait happens while holding the
/// quiesce gate, so it must terminate even if the owner somehow never
/// releases (it is contention management, not a correctness mechanism).
const DELAY_MAX_SPINS: u32 = 1 << 14;

/// CM_DELAY: spin (bounded) until the contended stripe's lock is
/// released. Called at the top of the next attempt, inside the gate, so
/// the mapping is pinned; a stale index from before a reconfiguration
/// is simply skipped.
#[cold]
fn delay_wait(map: &Mapping, idx: usize) {
    if idx >= map.n_locks() {
        return;
    }
    let lock = map.lock(idx);
    for i in 0..DELAY_MAX_SPINS {
        // Site R1-adjacent: Acquire so a subsequent read of the stripe
        // sees the releaser's publication (same edge as the run path).
        if !crate::lockword::is_owned(lock.load(Ordering::Acquire)) {
            return;
        }
        if i % 64 == 63 {
            // The owner may be descheduled on an oversubscribed host.
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Retry-loop backoff per the configured contention-management policy.
fn backoff(ctx: &mut TxCtx, cm: CmPolicy) {
    match cm {
        // Suicide == the paper's immediate restart; Delay waits at the
        // top of the next attempt (see `delay_wait`), not here.
        CmPolicy::Immediate | CmPolicy::Suicide | CmPolicy::Delay => {}
        CmPolicy::Backoff { base, max_spins } => {
            let shift = ctx.consecutive_aborts.min(16);
            let bound = (u64::from(base) << shift).min(u64::from(max_spins));
            if bound == 0 {
                return;
            }
            let spins = ctx.next_rand() % bound;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            // Under oversubscription spinning alone cannot make the
            // conflicting thread run; yield occasionally.
            if ctx.consecutive_aborts > 4 {
                std::thread::yield_now();
            }
        }
    }
}
