//! Stop-the-world coordination (Section 3.1, "Clock Management", and
//! Section 4.2).
//!
//! The paper uses one mechanism for two rare events: clock roll-over and
//! dynamic reconfiguration. A *fence* stops new transactions from
//! starting, waits until all active transactions have finished (committed
//! or aborted), runs a critical section (reset the clock and versions, or
//! swap the lock array), then lets transactions resume.
//!
//! The transaction fast path is two atomic RMWs (`enter`/`exit`); the
//! mutex + condvars are touched only while a fence is pending. Waits use
//! a short timeout as a belt-and-braces against lost-wakeup races between
//! the lock-free counters and the blocking slow path.
//!
//! ## Memory ordering (DESIGN.md §3, site Q1)
//!
//! `enter`/`exit` vs `fence` is a store-buffering (Dekker) pattern: the
//! enterer increments `active` and then re-checks `fence`, while the
//! fencer sets `fence` and then reads `active`. With only
//! Acquire/Release each side may miss the other's store — the enterer
//! proceeds under a fence it did not see while the fencer observes zero
//! active transactions — and the critical section (lock-array swap,
//! version zeroing) runs concurrently with a live transaction. Every
//! cross-checked operation on `active`/`fence` therefore stays
//! `SeqCst`; these are per-*attempt* costs (two RMWs per transaction),
//! not per-access, and are kept out of the hot read/write path.
//!
//! ## Layout
//!
//! `active` is RMW-ed twice by every attempt from every thread — the
//! most contended word in the system after the clock. `fence` is
//! read on the same path but written only when a fence starts/ends.
//! Each gets its own cache line so the `active` traffic does not
//! invalidate the read-mostly `fence` line, and neither shares a line
//! with the mutex/condvars used by the (cold) blocking slow path.

use crate::cacheline::CacheAligned;
use core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// The quiesce gate. One per [`crate::Stm`].
#[derive(Debug)]
pub struct Quiesce {
    /// Number of transactions currently inside the gate. Own cache line
    /// (hammered by every attempt).
    active: CacheAligned<AtomicUsize>,
    /// Set while a fence is pending or running. Own line: read-mostly.
    fence: CacheAligned<AtomicBool>,
    /// Serializes fencers and anchors the condvars.
    mutex: Mutex<()>,
    /// Signalled when `active` drains to zero (fencer waits here).
    drained: Condvar,
    /// Signalled when the fence is lifted (entering txs wait here).
    lifted: Condvar,
}

impl Default for Quiesce {
    fn default() -> Self {
        Self::new()
    }
}

impl Quiesce {
    /// A gate with no fence pending.
    pub fn new() -> Quiesce {
        Quiesce {
            active: CacheAligned::new(AtomicUsize::new(0)),
            fence: CacheAligned::new(AtomicBool::new(false)),
            mutex: Mutex::new(()),
            drained: Condvar::new(),
            lifted: Condvar::new(),
        }
    }

    /// Enter the gate before starting a transaction attempt. Blocks while
    /// a fence is pending.
    ///
    /// Site Q1: the increment and the re-check are the enterer's half of
    /// the Dekker pattern — SeqCst required (module docs).
    #[inline]
    pub fn enter(&self) {
        loop {
            if self.fence.load(Ordering::SeqCst) {
                self.wait_unfenced();
            }
            self.active.fetch_add(1, Ordering::SeqCst);
            if !self.fence.load(Ordering::SeqCst) {
                return;
            }
            // A fence arrived between the check and the increment: back
            // out so the fencer can drain, then retry.
            self.exit();
        }
    }

    /// Leave the gate after the attempt finished (commit or abort).
    ///
    /// Site Q1: the decrement must be SeqCst — it is the store the
    /// fencer's `active` poll pairs with, and its Release half also
    /// publishes the finished attempt's memory effects to the fencer's
    /// critical section.
    #[inline]
    pub fn exit(&self) {
        let prev = self.active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1, "exit without enter");
        if prev == 1 && self.fence.load(Ordering::SeqCst) {
            // We may be the last transaction a fencer is waiting for.
            let _g = self.mutex.lock();
            self.drained.notify_all();
        }
    }

    /// Enter the gate and return an RAII guard that, on drop — including
    /// a panic unwinding out of the transaction body — clears the
    /// thread's `active_start` oldest-reader marker and exits the gate.
    /// Without this, a panicking worker (tolerated by the harness
    /// driver's `catch_unwind`) would leave `active` permanently
    /// non-zero and wedge every later [`Quiesce::fence`].
    #[inline]
    pub fn enter_guarded<'a>(&'a self, active_start: &'a AtomicU64) -> ActiveGuard<'a> {
        self.enter();
        ActiveGuard {
            quiesce: self,
            active_start,
        }
    }

    /// Number of transactions currently inside (diagnostics/tests).
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Whether a fence is currently pending/running.
    pub fn fenced(&self) -> bool {
        self.fence.load(Ordering::SeqCst)
    }

    /// Run `critical` with no transaction inside the gate.
    ///
    /// Must not be called from inside an `enter`ed section (deadlock);
    /// the STM run loop always exits before triggering roll-over or
    /// reconfiguration.
    pub fn fence<R>(&self, critical: impl FnOnce() -> R) -> R {
        let mut guard = self.mutex.lock();
        // Another fencer may have just finished; we simply take our turn
        // (the mutex serializes fencers).
        // Site Q1: the fencer's half of the Dekker pattern — the flag
        // store and the drain poll must both be SeqCst (module docs).
        self.fence.store(true, Ordering::SeqCst);
        while self.active.load(Ordering::SeqCst) > 0 {
            // Timeout bounds the lost-wakeup window between the last
            // exit's fence check and our store above.
            self.drained
                .wait_for(&mut guard, Duration::from_micros(200));
        }
        let result = critical();
        self.fence.store(false, Ordering::SeqCst);
        self.lifted.notify_all();
        result
    }

    #[cold]
    fn wait_unfenced(&self) {
        let mut guard = self.mutex.lock();
        while self.fence.load(Ordering::SeqCst) {
            self.lifted.wait_for(&mut guard, Duration::from_micros(200));
        }
    }
}

/// Guard for one entered transaction attempt; see
/// [`Quiesce::enter_guarded`].
#[derive(Debug)]
pub struct ActiveGuard<'a> {
    quiesce: &'a Quiesce,
    /// The owning thread's oldest-active-snapshot marker (`u64::MAX`
    /// when idle); pinning it past the attempt would freeze limbo
    /// reclamation.
    active_start: &'a AtomicU64,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        // Release: everything the attempt did (in particular its reads
        // of limbo-protected memory) must happen-before a reclaimer
        // that observes the idle marker and deallocates. The opposite
        // direction (a *starting* attempt vs the reclaimer) is the
        // Dekker pattern at site S2 in `stm.rs` and needs SeqCst there,
        // not here.
        self.active_start.store(u64::MAX, Ordering::Release);
        self.quiesce.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn enter_exit_tracks_active() {
        let q = Quiesce::new();
        assert_eq!(q.active(), 0);
        q.enter();
        q.enter();
        assert_eq!(q.active(), 2);
        q.exit();
        assert_eq!(q.active(), 1);
        q.exit();
        assert_eq!(q.active(), 0);
    }

    #[test]
    fn guard_exits_even_when_the_attempt_panics() {
        let q = Arc::new(Quiesce::new());
        let active_start = AtomicU64::new(7);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = q.enter_guarded(&active_start);
            assert_eq!(q.active(), 1);
            panic!("intentional test panic: attempt body");
        }));
        assert!(caught.is_err());
        assert_eq!(q.active(), 0, "guard must exit on unwind");
        assert_eq!(active_start.load(Ordering::SeqCst), u64::MAX);
        // A later fence must not hang.
        let saw = q.fence(|| q.active());
        assert_eq!(saw, 0);
    }

    #[test]
    fn fence_runs_with_zero_active() {
        let q = Quiesce::new();
        let saw = q.fence(|| q.active());
        assert_eq!(saw, 0);
        assert!(!q.fenced());
    }

    #[test]
    fn fence_waits_for_active_transactions() {
        let q = Arc::new(Quiesce::new());
        q.enter();
        let q2 = Arc::clone(&q);
        let fencer = thread::spawn(move || {
            q2.fence(|| {
                assert_eq!(q2.active(), 0);
                Instant::now()
            })
        });
        // Give the fencer time to block.
        thread::sleep(Duration::from_millis(30));
        let released_at = Instant::now();
        q.exit();
        let fenced_at = fencer.join().unwrap();
        assert!(
            fenced_at >= released_at,
            "fence ran before the active transaction exited"
        );
    }

    #[test]
    fn enter_blocks_while_fenced() {
        let q = Arc::new(Quiesce::new());
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));

        let q_f = Arc::clone(&q);
        let release_f = Arc::clone(&release);
        let fencer = thread::spawn(move || {
            q_f.fence(|| {
                while !release_f.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(1));
                }
            });
        });
        // Wait until the fence is up.
        while !q.fenced() {
            thread::sleep(Duration::from_millis(1));
        }
        let q_e = Arc::clone(&q);
        let entered_e = Arc::clone(&entered);
        let enterer = thread::spawn(move || {
            q_e.enter();
            entered_e.store(true, Ordering::SeqCst);
            q_e.exit();
        });
        thread::sleep(Duration::from_millis(20));
        assert!(
            !entered.load(Ordering::SeqCst),
            "enter proceeded under a fence"
        );
        release.store(true, Ordering::SeqCst);
        fencer.join().unwrap();
        enterer.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_stress_no_fence_sees_active() {
        let q = Arc::new(Quiesce::new());
        let stop = Arc::new(AtomicBool::new(false));
        let fences_run = Arc::new(AtomicU64::new(0));

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        q.enter();
                        std::hint::spin_loop();
                        q.exit();
                    }
                })
            })
            .collect();

        let q_f = Arc::clone(&q);
        let fences = Arc::clone(&fences_run);
        let fencer = thread::spawn(move || {
            for _ in 0..50 {
                q_f.fence(|| {
                    assert_eq!(q_f.active(), 0, "fence observed active transactions");
                    fences.fetch_add(1, Ordering::Relaxed);
                });
                thread::yield_now();
            }
        });

        fencer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(fences_run.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn sequential_fences_all_complete() {
        let q = Quiesce::new();
        let mut total = 0;
        for i in 0..10 {
            total += q.fence(|| i);
        }
        assert_eq!(total, 45);
    }
}
