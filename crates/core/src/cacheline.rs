//! Cache-line-granular layout helpers for the contention-aware layout
//! pass (DESIGN.md §3, "Memory model and contention-aware layout").
//!
//! The hot shared words of the STM — the global clock, the quiesce
//! gate's counters, the hierarchy counters — are each written by many
//! threads at high rate. When two of them (or one of them and a
//! read-mostly neighbor) share a cache line, every RMW invalidates the
//! line for *all* readers of the neighbor: commit-time clock traffic
//! then false-shares with validation reads. Padding each shared word to
//! its own line confines the invalidation traffic to the word actually
//! written.

/// The coherence granule we pad to. 64 bytes on every x86-64 and most
/// AArch64 parts this targets; over-alignment on exotic hosts is merely
/// a little wasted space.
pub const CACHE_LINE: usize = 64;

/// Wraps a value so it occupies (at least) one cache line of its own.
///
/// Used for the shared counters the hot paths hammer: the global clock,
/// the quiesce gate's `active`/`fence` pair, and each hierarchy
/// counter. Access the inner value through `.0`.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wrap `value` with cache-line alignment.
    pub const fn new(value: T) -> CacheAligned<T> {
        CacheAligned(value)
    }
}

impl<T> core::ops::Deref for CacheAligned<T> {
    type Target = T;

    #[inline(always)]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> core::ops::DerefMut for CacheAligned<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::{AtomicU64, AtomicUsize};

    #[test]
    fn wrapper_is_line_sized_and_aligned() {
        assert_eq!(core::mem::align_of::<CacheAligned<AtomicU64>>(), CACHE_LINE);
        assert_eq!(core::mem::size_of::<CacheAligned<AtomicU64>>(), CACHE_LINE);
        assert_eq!(
            core::mem::align_of::<CacheAligned<AtomicUsize>>(),
            CACHE_LINE
        );
    }

    #[test]
    fn slice_elements_land_on_distinct_lines() {
        let v: Vec<CacheAligned<AtomicU64>> = (0..4)
            .map(|_| CacheAligned::new(AtomicU64::new(0)))
            .collect();
        let addrs: Vec<usize> = v.iter().map(|c| c as *const _ as usize).collect();
        for pair in addrs.windows(2) {
            assert!(pair[1] - pair[0] >= CACHE_LINE);
        }
        for a in addrs {
            assert_eq!(a % CACHE_LINE, 0);
        }
    }

    #[test]
    fn deref_reaches_the_inner_value() {
        let c = CacheAligned::new(AtomicU64::new(7));
        assert_eq!(c.load(core::sync::atomic::Ordering::Relaxed), 7);
        let mut c = CacheAligned::new(3u64);
        *c += 1;
        assert_eq!(c.0, 4);
    }
}
