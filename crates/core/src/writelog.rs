//! The write log: stripe ownership records and word entries.
//!
//! When a transaction acquires a lock it publishes a pointer to a
//! [`StripeRecord`] in the lock word (see `lockword.rs`). The record
//! identifies the owner and, for write-back, heads a chain of
//! [`WordEntry`]s so a read-after-write finds the buffered value in O(1)
//! per stripe — the paper contrasts this with TL2's Bloom-filter +
//! write-set scan.
//!
//! Records and entries live in per-thread chunked arenas: their addresses
//! are stable (lock words point at them) and they are recycled across
//! attempts without reallocation. A *foreign* thread only ever reads the
//! `owner` field of a record it found through a lock word — possibly a
//! stale one from a finished transaction — so `owner` is atomic while all
//! other fields are owner-private plain data.

use core::sync::atomic::{AtomicUsize, Ordering};

/// Arena chunk size (records/entries per allocation).
const CHUNK: usize = 64;

/// A growable arena of `T` with stable addresses and O(1) reset.
#[derive(Debug)]
pub struct Arena<T: Default> {
    chunks: Vec<Box<[T]>>,
    len: usize,
}

impl<T: Default> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> Arena<T> {
    /// Empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of live objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocate the next slot and return its stable address.
    ///
    /// The slot retains whatever state its previous user left; callers
    /// must initialize every field they later read.
    #[inline]
    pub fn alloc(&mut self) -> *mut T {
        let idx = self.len;
        let chunk_idx = idx / CHUNK;
        if chunk_idx == self.chunks.len() {
            let chunk: Vec<T> = (0..CHUNK).map(|_| T::default()).collect();
            self.chunks.push(chunk.into_boxed_slice());
        }
        self.len += 1;
        &mut self.chunks[chunk_idx][idx % CHUNK] as *mut T
    }

    /// Address of live object `i` (`i < len`).
    #[inline]
    pub fn get(&self, i: usize) -> *const T {
        debug_assert!(i < self.len);
        &self.chunks[i / CHUNK][i % CHUNK] as *const T
    }

    /// Mutable address of live object `i` (`i < len`).
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> *mut T {
        debug_assert!(i < self.len);
        &mut self.chunks[i / CHUNK][i % CHUNK] as *mut T
    }

    /// Forget all live objects; capacity (and addresses) are retained.
    #[inline]
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// Forget the most recently allocated object (used to recycle a
    /// record whose publishing CAS failed).
    #[inline]
    pub fn pop(&mut self) {
        debug_assert!(self.len > 0);
        self.len -= 1;
    }
}

/// Ownership record published in a lock word while a stripe is acquired.
///
/// `repr(C)` with the atomic first keeps the layout predictable; the
/// arena allocation guarantees word alignment, so bit 0 of the record
/// address is free for the lock bit.
#[repr(C)]
#[derive(Debug, Default)]
pub struct StripeRecord {
    /// Address of the owning thread's `ThreadState`. Read by foreign
    /// threads (possibly staleley through an old lock word), hence
    /// atomic. A stale read can only produce some *other* thread's
    /// state address or garbage — never the checking thread's own — so
    /// the "is it mine?" test is reliable.
    owner: AtomicUsize,
    /// Lock word observed when the stripe was acquired (unowned
    /// encoding). Restored on abort; its version feeds validation of
    /// self-owned stripes. Owner-private.
    pub prior_word: usize,
    /// Index of the lock this record owns. Owner-private.
    pub lock_idx: usize,
    /// Head of the write-back entry chain for this stripe (null for
    /// write-through). Owner-private.
    pub first_entry: *mut WordEntry,
}

impl StripeRecord {
    /// Publish `owner_addr` (called by the owner before the record
    /// pointer is CAS-ed into a lock word).
    #[inline]
    pub fn set_owner(&self, owner_addr: usize) {
        self.owner.store(owner_addr, Ordering::Release);
    }

    /// Read the owner field (any thread).
    #[inline]
    pub fn owner(&self) -> usize {
        self.owner.load(Ordering::Acquire)
    }
}

/// A buffered write-back update, chained per stripe.
#[derive(Debug)]
pub struct WordEntry {
    /// Target address.
    pub addr: *mut usize,
    /// Value to write at commit.
    pub value: usize,
    /// Next entry covering the same stripe (addresses differ).
    pub next: *mut WordEntry,
}

impl Default for WordEntry {
    fn default() -> Self {
        WordEntry {
            addr: core::ptr::null_mut(),
            value: 0,
            next: core::ptr::null_mut(),
        }
    }
}

/// A write-through undo record (restored in reverse order on abort).
#[derive(Debug, Clone, Copy)]
pub struct UndoEntry {
    /// Address that was overwritten.
    pub addr: *mut usize,
    /// Value to restore on abort.
    pub old_value: usize,
}

/// Per-thread write log: record arena + entry arena + undo log.
#[derive(Debug, Default)]
pub struct WriteLog {
    records: Arena<StripeRecord>,
    entries: Arena<WordEntry>,
    /// Write-through undo log, in program order.
    pub undo: Vec<UndoEntry>,
}

impl WriteLog {
    /// Fresh empty log.
    pub fn new() -> WriteLog {
        WriteLog::default()
    }

    /// Clear for a new attempt (capacity retained).
    pub fn reset(&mut self) {
        self.records.reset();
        self.entries.reset();
        self.undo.clear();
    }

    /// Number of owned stripes.
    #[inline]
    pub fn n_records(&self) -> usize {
        self.records.len()
    }

    /// Total buffered write-back entries.
    #[inline]
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// Allocate and initialize a record for a newly acquired stripe.
    ///
    /// Returns the stable record address to encode into the lock word.
    pub fn new_record(
        &mut self,
        owner_addr: usize,
        prior_word: usize,
        lock_idx: usize,
    ) -> *mut StripeRecord {
        let rec = self.records.alloc();
        // SAFETY: `rec` is a live arena slot; we initialize every field.
        unsafe {
            (*rec).set_owner(owner_addr);
            (*rec).prior_word = prior_word;
            (*rec).lock_idx = lock_idx;
            (*rec).first_entry = core::ptr::null_mut();
        }
        rec
    }

    /// Prepend a write-back entry to `rec`'s chain.
    ///
    /// # Safety
    /// `rec` must be a record from this log's current attempt.
    pub unsafe fn add_entry(&mut self, rec: *mut StripeRecord, addr: *mut usize, value: usize) {
        let e = self.entries.alloc();
        (*e).addr = addr;
        (*e).value = value;
        (*e).next = (*rec).first_entry;
        (*rec).first_entry = e;
    }

    /// Find the buffered value for `addr` in `rec`'s chain (write-back
    /// read-after-write).
    ///
    /// # Safety
    /// `rec` must be a record from this log's current attempt.
    pub unsafe fn find_entry(
        &self,
        rec: *const StripeRecord,
        addr: *const usize,
    ) -> Option<*mut WordEntry> {
        let mut cur = (*rec).first_entry;
        while !cur.is_null() {
            if std::ptr::eq((*cur).addr, addr) {
                return Some(cur);
            }
            cur = (*cur).next;
        }
        None
    }

    /// Record an overwritten value for the write-through undo log.
    pub fn push_undo(&mut self, addr: *mut usize, old_value: usize) {
        self.undo.push(UndoEntry { addr, old_value });
    }

    /// Iterate over the records of the current attempt.
    pub fn records(&self) -> impl Iterator<Item = *const StripeRecord> + '_ {
        (0..self.records.len()).map(move |i| self.records.get(i))
    }

    /// Look up a record by index (0-based, acquisition order).
    pub fn record(&self, i: usize) -> *const StripeRecord {
        self.records.get(i)
    }

    /// Recycle the most recent record: its publishing CAS failed, so no
    /// lock word ever pointed at it.
    pub fn abandon_last_record(&mut self) {
        self.records.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_addresses_are_stable_across_growth() {
        let mut a: Arena<StripeRecord> = Arena::new();
        let first = a.alloc();
        let addrs: Vec<usize> = (0..10 * CHUNK).map(|_| a.alloc() as usize).collect();
        // Growing by many chunks must not move earlier slots.
        assert_eq!(a.get(0) as usize, first as usize);
        for (i, &addr) in addrs.iter().enumerate() {
            assert_eq!(a.get(i + 1) as usize, addr);
        }
    }

    #[test]
    fn arena_reset_recycles_addresses() {
        let mut a: Arena<WordEntry> = Arena::new();
        let p1 = a.alloc() as usize;
        a.reset();
        let p2 = a.alloc() as usize;
        assert_eq!(p1, p2, "reset must reuse slot 0");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn record_addresses_are_word_aligned() {
        let mut log = WriteLog::new();
        for i in 0..200 {
            let r = log.new_record(0x1000, 0, i);
            assert_eq!(r as usize & 1, 0, "record address has bit 0 set");
        }
    }

    #[test]
    fn record_owner_roundtrip() {
        let mut log = WriteLog::new();
        let r = log.new_record(0xabc0, 42, 7);
        // SAFETY: r is live in the arena.
        unsafe {
            assert_eq!((*r).owner(), 0xabc0);
            assert_eq!((*r).prior_word, 42);
            assert_eq!((*r).lock_idx, 7);
            assert!((*r).first_entry.is_null());
        }
    }

    #[test]
    fn chain_lookup_finds_latest_value() {
        let mut log = WriteLog::new();
        let r = log.new_record(1, 0, 0);
        let mut w1: usize = 0;
        let mut w2: usize = 0;
        let a1 = &mut w1 as *mut usize;
        let a2 = &mut w2 as *mut usize;
        unsafe {
            log.add_entry(r, a1, 100);
            log.add_entry(r, a2, 200);
            // Re-write of a1 is modelled by the caller updating the found
            // entry in place.
            let e = log.find_entry(r, a1).expect("a1 present");
            assert_eq!((*e).value, 100);
            (*e).value = 150;
            let e = log.find_entry(r, a1).unwrap();
            assert_eq!((*e).value, 150);
            let e2 = log.find_entry(r, a2).unwrap();
            assert_eq!((*e2).value, 200);
            assert!(log.find_entry(r, &w1 as *const usize).is_some());
            let other: usize = 0;
            assert!(log.find_entry(r, &other as *const usize).is_none());
        }
        assert_eq!(log.n_entries(), 2);
    }

    #[test]
    fn undo_log_preserves_order() {
        let mut log = WriteLog::new();
        let mut words = [0usize; 3];
        for (i, w) in words.iter_mut().enumerate() {
            log.push_undo(w as *mut usize, i + 10);
        }
        assert_eq!(log.undo.len(), 3);
        assert_eq!(log.undo[0].old_value, 10);
        assert_eq!(log.undo[2].old_value, 12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut log = WriteLog::new();
        let r = log.new_record(1, 0, 0);
        let mut w: usize = 0;
        unsafe { log.add_entry(r, &mut w as *mut usize, 1) };
        log.push_undo(&mut w as *mut usize, 2);
        log.reset();
        assert_eq!(log.n_records(), 0);
        assert_eq!(log.n_entries(), 0);
        assert!(log.undo.is_empty());
    }

    #[test]
    fn records_iterator_in_acquisition_order() {
        let mut log = WriteLog::new();
        for i in 0..5 {
            log.new_record(1, i, i);
        }
        let idxs: Vec<usize> = log.records().map(|r| unsafe { (*r).lock_idx }).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4]);
    }
}
