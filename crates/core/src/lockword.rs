//! Lock-word encodings (Section 3.1, "Locks and Versions", and Figure 1).
//!
//! Each lock is one machine word. The least significant bit says whether
//! the lock is owned:
//!
//! * **owned** — the remaining bits are a pointer to a per-transaction
//!   [`crate::writelog::StripeRecord`] (word-aligned, so bit 0 is free).
//!   For write-back the record heads the chain of write entries covering
//!   the stripe; for write-through it identifies the owner and stores the
//!   saved lock word.
//! * **unowned, write-back** — the remaining bits are the version number
//!   (commit timestamp of the last writer): `version << 1`.
//! * **unowned, write-through** — bits 1–3 are the 3-bit *incarnation
//!   number* (incremented on each abort that restored this stripe, so
//!   concurrent readers can detect a dirty read even though the value was
//!   rolled back), the rest is the version: `version << 4 | inc << 1`.
//!
//! This module is pure bit manipulation and is exhaustively tested; all
//! concurrency lives elsewhere.

// The encodings below assume 64-bit words (the paper's 64-bit build).
#[cfg(not(target_pointer_width = "64"))]
compile_error!("tinystm-rs supports 64-bit targets only");

/// Bit 0 of a lock word: set when the stripe is owned by a transaction.
pub const OWNED_BIT: usize = 1;

/// Number of incarnation bits in the write-through encoding.
pub const INCARNATION_BITS: u32 = 3;
/// Maximum incarnation value before overflow forces a fresh version.
pub const MAX_INCARNATION: usize = (1 << INCARNATION_BITS) - 1;

/// Shift of the version field in the write-through encoding
/// (1 owned bit + 3 incarnation bits).
const WT_VERSION_SHIFT: u32 = 1 + INCARNATION_BITS;

/// Largest version representable by the write-back encoding.
pub const WB_MAX_VERSION: u64 = (usize::MAX >> 1) as u64;
/// Largest version representable by the write-through encoding (the
/// paper's 2^60 on 64-bit).
pub const WT_MAX_VERSION: u64 = (usize::MAX >> WT_VERSION_SHIFT) as u64;

/// Is the stripe owned by some transaction?
#[inline(always)]
pub fn is_owned(word: usize) -> bool {
    word & OWNED_BIT != 0
}

/// Extract the owner-record pointer from an owned word.
#[inline(always)]
pub fn owner_ptr(word: usize) -> usize {
    debug_assert!(is_owned(word));
    word & !OWNED_BIT
}

/// Build an owned lock word from a record address.
#[inline(always)]
pub fn make_owned(record_addr: usize) -> usize {
    debug_assert_eq!(record_addr & OWNED_BIT, 0, "record not word-aligned");
    record_addr | OWNED_BIT
}

/// Build an unowned write-back word.
#[inline(always)]
pub fn wb_make(version: u64) -> usize {
    debug_assert!(version <= WB_MAX_VERSION);
    (version as usize) << 1
}

/// Version of an unowned write-back word.
#[inline(always)]
pub fn wb_version(word: usize) -> u64 {
    debug_assert!(!is_owned(word));
    (word >> 1) as u64
}

/// Build an unowned write-through word.
#[inline(always)]
pub fn wt_make(version: u64, incarnation: usize) -> usize {
    debug_assert!(version <= WT_MAX_VERSION);
    debug_assert!(incarnation <= MAX_INCARNATION);
    ((version as usize) << WT_VERSION_SHIFT) | (incarnation << 1)
}

/// Version of an unowned write-through word.
#[inline(always)]
pub fn wt_version(word: usize) -> u64 {
    debug_assert!(!is_owned(word));
    (word >> WT_VERSION_SHIFT) as u64
}

/// Incarnation of an unowned write-through word.
#[inline(always)]
pub fn wt_incarnation(word: usize) -> usize {
    debug_assert!(!is_owned(word));
    (word >> 1) & MAX_INCARNATION
}

/// Bump the incarnation of an unowned write-through word (abort path).
///
/// Returns `None` on incarnation overflow, in which case the caller must
/// fetch a fresh version from the global clock instead (the paper's
/// "unlikely event that it overflows").
#[inline]
pub fn wt_bump_incarnation(word: usize) -> Option<usize> {
    debug_assert!(!is_owned(word));
    let inc = wt_incarnation(word);
    if inc >= MAX_INCARNATION {
        None
    } else {
        Some(wt_make(wt_version(word), inc + 1))
    }
}

/// Version of an unowned word under the given strategy.
#[inline(always)]
pub fn version_of(word: usize, strategy: crate::config::AccessStrategy) -> u64 {
    match strategy {
        crate::config::AccessStrategy::WriteBack => wb_version(word),
        crate::config::AccessStrategy::WriteThrough => wt_version(word),
    }
}

/// Build an unowned word with the given version (incarnation 0) under the
/// given strategy — used when releasing locks at commit and when resetting
/// the array at roll-over.
#[inline(always)]
pub fn make_version(version: u64, strategy: crate::config::AccessStrategy) -> usize {
    match strategy {
        crate::config::AccessStrategy::WriteBack => wb_make(version),
        crate::config::AccessStrategy::WriteThrough => wt_make(version, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccessStrategy;
    use proptest::prelude::*;

    #[test]
    fn fresh_word_is_version_zero_everywhere() {
        // A zeroed lock array must decode as unowned, version 0,
        // incarnation 0 under both strategies.
        assert!(!is_owned(0));
        assert_eq!(wb_version(0), 0);
        assert_eq!(wt_version(0), 0);
        assert_eq!(wt_incarnation(0), 0);
    }

    #[test]
    fn wb_roundtrip_basic() {
        for v in [0u64, 1, 2, 12345, WB_MAX_VERSION] {
            let w = wb_make(v);
            assert!(!is_owned(w));
            assert_eq!(wb_version(w), v);
        }
    }

    #[test]
    fn wt_roundtrip_basic() {
        for v in [0u64, 1, 99, WT_MAX_VERSION] {
            for inc in 0..=MAX_INCARNATION {
                let w = wt_make(v, inc);
                assert!(!is_owned(w));
                assert_eq!(wt_version(w), v);
                assert_eq!(wt_incarnation(w), inc);
            }
        }
    }

    #[test]
    fn owned_roundtrip() {
        let rec = 0xdead_bee0usize; // word-aligned address
        let w = make_owned(rec);
        assert!(is_owned(w));
        assert_eq!(owner_ptr(w), rec);
    }

    #[test]
    fn incarnation_bump_sequence() {
        let mut w = wt_make(7, 0);
        for expect in 1..=MAX_INCARNATION {
            w = wt_bump_incarnation(w).unwrap();
            assert_eq!(wt_incarnation(w), expect);
            assert_eq!(wt_version(w), 7, "version must survive bumps");
        }
        assert_eq!(wt_bump_incarnation(w), None, "overflow must be signalled");
    }

    #[test]
    fn strategy_dispatch_matches_direct_calls() {
        let w = wb_make(42);
        assert_eq!(version_of(w, AccessStrategy::WriteBack), 42);
        let w = wt_make(42, 3);
        assert_eq!(version_of(w, AccessStrategy::WriteThrough), 42);
        assert_eq!(make_version(9, AccessStrategy::WriteBack), wb_make(9));
        assert_eq!(make_version(9, AccessStrategy::WriteThrough), wt_make(9, 0));
    }

    #[test]
    fn incarnation_change_changes_word() {
        // The write-through consistency argument needs l1 != l2 whenever
        // an abort intervened: bumping the incarnation must change the
        // raw word even though the version is unchanged.
        let w0 = wt_make(5, 0);
        let w1 = wt_bump_incarnation(w0).unwrap();
        assert_ne!(w0, w1);
        assert_eq!(wt_version(w0), wt_version(w1));
    }

    proptest! {
        #[test]
        fn prop_wb_roundtrip(v in 0..=WB_MAX_VERSION) {
            let w = wb_make(v);
            prop_assert!(!is_owned(w));
            prop_assert_eq!(wb_version(w), v);
        }

        #[test]
        fn prop_wt_roundtrip(v in 0..=WT_MAX_VERSION, inc in 0..=MAX_INCARNATION) {
            let w = wt_make(v, inc);
            prop_assert!(!is_owned(w));
            prop_assert_eq!(wt_version(w), v);
            prop_assert_eq!(wt_incarnation(w), inc);
        }

        #[test]
        fn prop_owned_roundtrip(addr in (0usize..usize::MAX / 2).prop_map(|a| a & !1)) {
            let w = make_owned(addr);
            prop_assert!(is_owned(w));
            prop_assert_eq!(owner_ptr(w), addr);
        }

        #[test]
        fn prop_wb_words_distinct_for_distinct_versions(
            a in 0..=WB_MAX_VERSION, b in 0..=WB_MAX_VERSION
        ) {
            prop_assert_eq!(wb_make(a) == wb_make(b), a == b);
        }
    }
}
