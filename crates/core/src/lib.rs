//! # tinystm — word-based, time-based software transactional memory
//!
//! A from-scratch Rust implementation of **TinySTM** as described in
//! *"Dynamic Performance Tuning of Word-Based Software Transactional
//! Memory"* (Felber, Fetzer, Riegel — PPoPP 2008):
//!
//! * single-version, word-based variant of the LSA algorithm with
//!   invisible reads and eager snapshot extension;
//! * **encounter-time locking** through a shared array of versioned
//!   locks (per-stripe hash mapping with a tunable shift);
//! * both **write-back** (redo log, O(1) read-after-write via lock-
//!   resident entry chains) and **write-through** (undo log + 3-bit
//!   incarnation numbers) access strategies;
//! * a **read-only fast path** that keeps no read set;
//! * **hierarchical locking** (Section 3.2): `h` shared counters let
//!   validation skip whole read-set partitions;
//! * a shared-counter **global clock** with the paper's roll-over
//!   protocol (quiesce, zero versions, reset);
//! * **transactional memory management** with abort-safe allocation,
//!   commit-deferred frees, and epoch-based physical reclamation;
//! * **dynamic reconfiguration** of `#locks`, `#shifts` and `h` behind a
//!   stop-the-world fence — the substrate for the paper's tuning
//!   strategy (implemented in the `stm-tuning` crate).
//!
//! ## Quick start
//!
//! ```
//! use tinystm::{Stm, StmConfig, TCell, TxExt};
//! use stm_api::TxKind;
//!
//! let stm = Stm::new(StmConfig::default()).unwrap();
//! let a = TCell::new(100i64);
//! let b = TCell::new(0i64);
//! // Transfer 30 from a to b, atomically.
//! stm.run(TxKind::ReadWrite, |tx| {
//!     let va = tx.read(&a)?;
//!     tx.write(&a, va - 30)?;
//!     let vb = tx.read(&b)?;
//!     tx.write(&b, vb + 30)
//! });
//! assert_eq!(a.read_direct() + b.read_direct(), 100);
//! ```
//!
//! The raw word-level interface (`stm_api::TmTx`) is what the benchmark
//! data structures use; see `stm-structures`.

pub mod cacheline;
pub mod clock;
pub mod config;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod hierarchy;
pub mod lockword;
pub mod mapping;
pub mod mem;
pub mod quiesce;
pub mod readset;
pub mod stats;
pub mod stm;
#[cfg(feature = "record")]
pub mod trace;
pub mod tvar;
pub mod tx;
#[cfg(feature = "durable")]
pub mod wal;
pub mod writelog;

pub use cacheline::CacheAligned;
pub use config::{AccessStrategy, CmPolicy, ConfigError, StmConfig};
pub use stats::{StatsSnapshot, ThreadStats};
pub use stm::{Stm, StmStats};
pub use tvar::{TArray, TCell, TxExt, Word};
pub use tx::Tx;

// Re-export the abstraction crate so dependents need only one import.
pub use stm_api;
