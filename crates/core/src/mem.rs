//! Transactional memory management (Section 3.1, "Memory Management").
//!
//! Transactions track the memory they allocate and free: allocations are
//! reclaimed automatically on abort, and frees are deferred past commit.
//! Deferral must outlive not just the freeing transaction but every
//! *concurrent* transaction that may still hold a stale pointer from its
//! invisible reads, so committed frees go to a **limbo list** stamped
//! with the freeing transaction's commit timestamp and are physically
//! released only once every active transaction started at or after that
//! stamp (start timestamps are published by the run loop). This is the
//! epoch-based-reclamation substrate the C implementation leaves to the
//! application (and later versions grew as `epoch-gc`).

use parking_lot::Mutex;
use stm_api::mem::dealloc_words;

/// A committed free awaiting safe reclamation.
#[derive(Debug, Clone, Copy)]
struct LimboEntry {
    ptr: usize,
    words: usize,
    /// Commit timestamp of the freeing transaction.
    stamp: u64,
}

/// The limbo list. One per [`crate::Stm`].
#[derive(Debug, Default)]
pub struct Limbo {
    entries: Mutex<Vec<LimboEntry>>,
}

impl Limbo {
    /// Empty limbo list.
    pub fn new() -> Limbo {
        Limbo::default()
    }

    /// Move `blocks` into limbo, stamped with commit time `stamp`.
    pub fn push(&self, blocks: impl Iterator<Item = (usize, usize)>, stamp: u64) {
        let mut g = self.entries.lock();
        g.extend(blocks.map(|(ptr, words)| LimboEntry { ptr, words, stamp }));
    }

    /// Number of blocks awaiting reclamation.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reclaim every block whose stamp `<= min_active_start`, where
    /// `min_active_start` is the minimum start timestamp over all active
    /// transactions (`u64::MAX` when none is active).
    ///
    /// A transaction that started at time `s >= stamp` can no longer
    /// reach the block: the unlinking write committed at `stamp`, so
    /// either the covering lock was still owned (the reader aborts) or it
    /// carries a version `>= stamp` and the reader sees the new,
    /// unlinked state. Uses `try_lock` so concurrent committers never
    /// serialize on reclamation; returns the number of blocks released.
    pub fn try_reclaim(&self, min_active_start: u64) -> usize {
        let Some(mut g) = self.entries.try_lock() else {
            return 0;
        };
        let before = g.len();
        g.retain(|e| {
            if e.stamp <= min_active_start {
                // SAFETY: the block was allocated via `alloc_words`, the
                // epoch argument above shows no transaction can still
                // dereference it, and limbo entries are unique.
                unsafe { dealloc_words(e.ptr as *mut usize, e.words) };
                false
            } else {
                true
            }
        });
        before - g.len()
    }

    /// Reclaim everything unconditionally. Only safe inside a quiesce
    /// fence (no active transactions) or at `Stm` drop.
    pub fn reclaim_all(&self) -> usize {
        self.try_reclaim(u64::MAX)
    }
}

impl Drop for Limbo {
    fn drop(&mut self) {
        self.reclaim_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_api::mem::alloc_words;

    fn block(words: usize) -> (usize, usize) {
        (alloc_words(words) as usize, words)
    }

    #[test]
    fn reclaims_only_past_epoch() {
        let limbo = Limbo::new();
        limbo.push([block(2)].into_iter(), 10);
        limbo.push([block(2)].into_iter(), 20);
        assert_eq!(limbo.len(), 2);
        // A transaction started at 15 is still active: only stamp<=15 go.
        assert_eq!(limbo.try_reclaim(15), 1);
        assert_eq!(limbo.len(), 1);
        assert_eq!(limbo.try_reclaim(20), 1);
        assert!(limbo.is_empty());
    }

    #[test]
    fn equal_stamp_is_reclaimable() {
        // start == stamp is safe (see module docs): boundary included.
        let limbo = Limbo::new();
        limbo.push([block(1)].into_iter(), 7);
        assert_eq!(limbo.try_reclaim(7), 1);
    }

    #[test]
    fn reclaim_all_drains() {
        let limbo = Limbo::new();
        limbo.push((0..32).map(|_| block(4)), 100);
        assert_eq!(limbo.len(), 32);
        assert_eq!(limbo.reclaim_all(), 32);
        assert!(limbo.is_empty());
    }

    #[test]
    fn nothing_reclaimed_below_min_stamp() {
        let limbo = Limbo::new();
        limbo.push([block(1)].into_iter(), 50);
        assert_eq!(limbo.try_reclaim(49), 0);
        assert_eq!(limbo.len(), 1);
        limbo.reclaim_all();
    }

    #[test]
    fn drop_releases_pending_blocks() {
        // Covered by leak tooling in CI; here we just exercise the path.
        let limbo = Limbo::new();
        limbo.push([block(8), block(8)].into_iter(), 3);
        drop(limbo);
    }
}
