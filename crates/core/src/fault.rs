//! Fault injection for the checker self-tests (`fault-inject` feature).
//!
//! The `stm-check` oracle is only trustworthy if it is demonstrably
//! *live*: a mutation that breaks the protocol must make the checker
//! report a violation. These hooks implement such mutations. They are
//! compiled out of normal builds and must never be enabled in a build
//! whose results you intend to trust.

use core::sync::atomic::{AtomicU8, Ordering};

/// A deliberate protocol mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// No mutation (the default).
    #[default]
    None,
    /// Commit-time read-set validation reports success unconditionally,
    /// so a transaction whose snapshot went stale commits anyway — the
    /// canonical serializability violation.
    SkipCommitValidation,
    /// Snapshot-extension validation reports success unconditionally,
    /// so reads performed after the extension may belong to a different
    /// snapshot than reads before it — the canonical opacity violation
    /// (observable even in attempts that later abort).
    SkipExtendValidation,
}

impl FaultInjection {
    /// Stable wire encoding for the per-instance atomic.
    pub(crate) fn encode(self) -> u8 {
        match self {
            FaultInjection::None => 0,
            FaultInjection::SkipCommitValidation => 1,
            FaultInjection::SkipExtendValidation => 2,
        }
    }

    pub(crate) fn decode(v: u8) -> FaultInjection {
        match v {
            1 => FaultInjection::SkipCommitValidation,
            2 => FaultInjection::SkipExtendValidation,
            _ => FaultInjection::None,
        }
    }
}

/// Per-instance fault switch (an atomic so tests can flip it while
/// worker threads run).
#[derive(Debug, Default)]
pub struct FaultSwitch {
    mode: AtomicU8,
}

impl FaultSwitch {
    /// Set the active mutation.
    pub fn set(&self, fault: FaultInjection) {
        self.mode.store(fault.encode(), Ordering::Release);
    }

    /// The active mutation.
    #[inline]
    pub fn get(&self) -> FaultInjection {
        FaultInjection::decode(self.mode.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for f in [
            FaultInjection::None,
            FaultInjection::SkipCommitValidation,
            FaultInjection::SkipExtendValidation,
        ] {
            assert_eq!(FaultInjection::decode(f.encode()), f);
        }
    }

    #[test]
    fn switch_defaults_to_none() {
        let s = FaultSwitch::default();
        assert_eq!(s.get(), FaultInjection::None);
        s.set(FaultInjection::SkipCommitValidation);
        assert_eq!(s.get(), FaultInjection::SkipCommitValidation);
    }
}
