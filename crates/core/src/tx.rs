//! The transaction engine: the single-version, word-based LSA variant of
//! Section 3.1 with encounter-time locking, plus the hierarchical
//! validation fast path of Section 3.2.
//!
//! One [`Tx`] exists per attempt, created by [`crate::Stm::run`]'s retry
//! loop. It borrows the per-thread `TxCtx` (read set, write log,
//! hierarchy masks — all recycled across attempts) and the current
//! [`Mapping`] (pinned by the quiesce gate for the attempt's duration).
//!
//! ## Memory ordering (DESIGN.md §3, sites R1–R5, W1–W6, F1)
//!
//! The per-access fast path is a seqlock: the lock word doubles as the
//! sequence word, "owned" as the odd state. The orderings are chosen
//! per site instead of blanket `SeqCst`:
//!
//! * **R1** `l1 = lock.load(Acquire)` — pairs with the Release
//!   lock-release stores (W4/W5): observing version `v` makes every
//!   data word published at `v` visible to the reads that follow.
//! * **R3** `value = data.load(Relaxed)` + **F1** `fence(Acquire)` +
//!   **R4** `l2 = lock.load(Relaxed)` — the seqlock re-check. If R3
//!   read a concurrent writer's (Release) data store, the fence
//!   synchronizes with that store, which makes the writer's preceding
//!   lock-acquiring CAS (W1) visible to R4; by coherence R4 then reads
//!   the owned word (or something later), so `l1 != l2` and the
//!   possibly-dirty value is discarded. The write-through incarnation
//!   bump (W5) keeps this working across abort/restore cycles where
//!   the version alone would not change.
//! * **R2** own-stripe data loads — `Relaxed`: we own the covering
//!   lock, so the word is either our own write (program order) or the
//!   last committed value, which our acquiring CAS (W1, Acquire half)
//!   already synchronized with.
//! * **R5** validation lock loads — `Acquire`: freshness comes from the
//!   clock edge (site C1/C2 in `clock.rs`); Acquire pairs with W1/W4 so
//!   a record pointer read from an owned word dereferences fully
//!   initialized fields.
//! * **W1** the acquiring CAS — `AcqRel` on success (Acquire: brings
//!   the last committed data into view and orders our stripe accesses
//!   after ownership; Release: publishes the just-initialized
//!   [`StripeRecord`] to any R1/R5 that observes the owned word);
//!   `Relaxed` on failure (the retry loop re-reads through R1).
//! * **W2/W3** data publication (write-through in-place stores,
//!   write-back commit write-back) — `Release`, so a racing R3 that
//!   observes the value synchronizes through F1 (see R3/F1 above).
//! * **W4** commit lock release / **W5** rollback lock release —
//!   `Release`: the publication edge R1 acquires; sequenced after the
//!   data stores they cover.
//! * **W6** write-through undo restores — `Release` for the same
//!   reason as W2: a racing reader may observe the restored value.
//! * Owner-private bookkeeping (read set, write log, undo vector,
//!   arena) is plain non-atomic data — it is never touched by foreign
//!   threads except `StripeRecord::owner` (Acquire/Release in
//!   `writelog.rs`).

use crate::config::AccessStrategy;
use crate::lockword::{
    is_owned, make_owned, make_version, owner_ptr, version_of, wt_bump_incarnation, wt_make,
};
use crate::mapping::Mapping;
use crate::readset::ReadSet;
use crate::stm::{StmInner, ThreadState};
use crate::writelog::{StripeRecord, WriteLog};
use core::sync::atomic::Ordering;
use stm_api::{atomic_view, Abort, AbortReason, TmTx, TxKind, TxResult};

/// Bound on l1/value/l2 re-read loops before declaring the read
/// inconsistent (forward-progress guard; the paper retries indefinitely).
const MAX_READ_RETRIES: u32 = 64;

/// Per-thread transactional state, recycled across attempts.
#[derive(Debug)]
pub(crate) struct TxCtx {
    /// Kind of the current attempt.
    pub kind: TxKind,
    /// Snapshot validity range `[start, end]` (LSA).
    pub start: u64,
    pub end: u64,
    /// Read set (update transactions only).
    pub rset: ReadSet,
    /// Write log: stripe records, write-back chains, undo log.
    pub wlog: WriteLog,
    /// Hierarchy masks and saved counters.
    pub hier: crate::hierarchy::TxHier,
    /// Blocks allocated by this attempt: `(ptr, words)`.
    pub alloc_log: Vec<(usize, usize)>,
    /// Blocks freed by this attempt (deferred to commit).
    pub free_log: Vec<(usize, usize)>,
    /// Blocks both allocated *and* freed by this attempt: on commit they
    /// ride the free log into limbo; on abort they are reclaimed here
    /// (the free log is discarded).
    pub alloc_freed: Vec<(usize, usize)>,
    /// Reads performed by the current attempt (flushed to
    /// `wasted_reads` if the attempt aborts).
    pub attempt_reads: u64,
    /// Lock index of the stripe the last abort collided on (consumed by
    /// the CM_DELAY policy at the next attempt's start).
    pub last_contended: Option<usize>,
    /// Consecutive aborts of the current `run` invocation (backoff).
    pub consecutive_aborts: u32,
    /// xorshift state for randomized backoff.
    pub rng: u64,
    /// Scratch buffer for the commit-path WAL publish: the attempt's
    /// `(addr, value)` write set, deduplicated and address-sorted.
    /// Recycled across attempts like the read set and write log.
    #[cfg(feature = "durable")]
    pub wal_scratch: Vec<(usize, usize)>,
}

impl TxCtx {
    pub(crate) fn new(seed: u64) -> TxCtx {
        TxCtx {
            kind: TxKind::ReadWrite,
            start: 0,
            end: 0,
            rset: ReadSet::new(1),
            wlog: WriteLog::new(),
            hier: crate::hierarchy::TxHier::new(1),
            alloc_log: Vec::new(),
            free_log: Vec::new(),
            alloc_freed: Vec::new(),
            attempt_reads: 0,
            last_contended: None,
            consecutive_aborts: 0,
            rng: seed | 1,
            #[cfg(feature = "durable")]
            wal_scratch: Vec::new(),
        }
    }

    /// Prepare for a fresh attempt under `map` with snapshot time `now`.
    pub(crate) fn begin(&mut self, kind: TxKind, map: &Mapping, now: u64) {
        self.kind = kind;
        self.start = now;
        self.end = now;
        let h = map.hier().len();
        self.rset.reset(h);
        self.wlog.reset();
        self.hier.reset(h);
        self.alloc_log.clear();
        self.free_log.clear();
        self.alloc_freed.clear();
        self.attempt_reads = 0;
    }

    /// Next pseudo-random number (xorshift64*), for backoff jitter.
    pub(crate) fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// How an attempt ended (consumed by the run loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttemptEnd {
    Committed,
    Aborted(AbortReason),
}

/// An in-flight transaction attempt. Public API surface of the STM;
/// obtained through [`crate::Stm::run`].
pub struct Tx<'a> {
    pub(crate) inner: &'a StmInner,
    pub(crate) map: &'a Mapping,
    pub(crate) ts: &'a ThreadState,
    pub(crate) ctx: &'a mut TxCtx,
    /// Set once commit/rollback ran; `Drop` rolls back otherwise
    /// (panic safety: a panicking closure must not leave locks held).
    pub(crate) finished: bool,
    /// Cached per-attempt invariants (hot-path loads hoisted out).
    pub(crate) strategy: AccessStrategy,
    pub(crate) hier_on: bool,
    pub(crate) me: usize,
    /// This thread's recording session, if a trace sink is attached.
    #[cfg(feature = "record")]
    pub(crate) trace: Option<&'a stm_check::SessionLog>,
    /// The attached WAL sink, if durability is on for this attempt.
    #[cfg(feature = "durable")]
    pub(crate) wal: Option<&'a dyn stm_api::wal::WalSink>,
}

impl<'a> Drop for Tx<'a> {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback(AbortReason::Explicit);
        }
    }
}

impl<'a> Tx<'a> {
    /// Identity used in stripe records: the stable address of this
    /// thread's state.
    #[inline(always)]
    fn owner_addr(&self) -> usize {
        self.me
    }

    #[inline(always)]
    fn strategy(&self) -> AccessStrategy {
        self.strategy
    }

    /// Snapshot upper bound (diagnostics / tests).
    pub fn snapshot_end(&self) -> u64 {
        self.ctx.end
    }

    /// Snapshot lower bound (start time).
    pub fn snapshot_start(&self) -> u64 {
        self.ctx.start
    }

    /// Current read-set size (update transactions; 0 for read-only).
    pub fn read_set_len(&self) -> usize {
        self.ctx.rset.len()
    }

    /// Number of stripes this attempt owns.
    pub fn write_set_stripes(&self) -> usize {
        self.ctx.wlog.n_records()
    }

    #[cold]
    fn abort(&mut self, reason: AbortReason) -> Abort {
        // Bookkeeping happens in rollback (called by the run loop /
        // Drop); here we only materialize the error value.
        Abort(reason)
    }

    /// Append one event to this thread's recording session (no-op when
    /// no sink is attached).
    #[cfg(feature = "record")]
    #[inline(always)]
    fn emit(&self, event: stm_check::Event) {
        if let Some(log) = self.trace {
            // SAFETY: the run loop handed this attempt the session log
            // registered by (and owned by) the current thread.
            unsafe { log.push(event) };
        }
    }

    /// Validate the read set: every entry must still carry the version
    /// we observed (or be locked by us with that prior version).
    /// Partitions whose hierarchy counter is unchanged (modulo our own
    /// acquisitions) are skipped — the fast path of Section 3.2,
    /// realized as a precomputed skip mask plus one flat pass.
    pub(crate) fn validate(&mut self) -> bool {
        let me = self.me;
        let strategy = self.strategy;
        let skip_mask = if self.hier_on {
            Some(self.ctx.hier.skip_mask(self.map.hier()))
        } else {
            None
        };
        let mut processed: u64 = 0;
        let mut skipped: u64 = 0;
        let mut ok = true;
        for e in self.ctx.rset.entries() {
            if let Some(mask) = &skip_mask {
                if mask.get(e.part as usize) {
                    skipped += 1;
                    continue;
                }
            }
            processed += 1;
            // Site R5 (module docs): Acquire.
            let w = self.map.lock(e.lock_idx as usize).load(Ordering::Acquire);
            if is_owned(w) {
                let rec = owner_ptr(w) as *const StripeRecord;
                // SAFETY: records live in registry-pinned arenas for
                // the lifetime of the STM; see writelog.rs.
                let owner = unsafe { (*rec).owner() };
                if owner != me {
                    ok = false;
                    break;
                }
                let prior = unsafe { (*rec).prior_word };
                if version_of(prior, strategy) != e.version {
                    ok = false;
                    break;
                }
            } else if version_of(w, strategy) != e.version {
                ok = false;
                break;
            }
        }
        self.ts.stats.bump_validation();
        self.ts.stats.add_validation_locks(processed, skipped);
        ok
    }

    /// Try to extend the snapshot's upper bound to "now" (LSA eager
    /// extension). Read-only transactions keep no read set and cannot
    /// extend: they abort and restart with a fresh snapshot.
    pub(crate) fn extend(&mut self) -> TxResult<()> {
        if matches!(self.ctx.kind, TxKind::ReadOnly) {
            self.ts.stats.bump_extend_failure();
            return Err(self.abort(AbortReason::ExtendFailed));
        }
        // Sample before validating: the snapshot is extended to a time
        // no later than any validation check.
        let now = self.inner.clock.now();
        #[cfg(feature = "fault-inject")]
        if matches!(
            self.inner.fault.get(),
            crate::fault::FaultInjection::SkipExtendValidation
        ) {
            // Deliberate mutation: extend without validating, handing
            // later reads a snapshot the earlier reads may not share.
            self.ts.stats.bump_extension();
            self.ctx.end = now;
            return Ok(());
        }
        if self.validate() {
            self.ts.stats.bump_extension();
            self.ctx.end = now;
            Ok(())
        } else {
            self.ts.stats.bump_extend_failure();
            Err(self.abort(AbortReason::ExtendFailed))
        }
    }

    /// Transactional read, inlined-hot. See module docs of `tx` and the
    /// paper's "Reads and Writes".
    pub(crate) unsafe fn load_impl(&mut self, addr: *const usize) -> TxResult<usize> {
        self.ts.stats.bump_read();
        self.ctx.attempt_reads += 1;
        let idx = self.map.lock_index(addr as usize);
        let lock = self.map.lock(idx);
        let update = matches!(self.ctx.kind, TxKind::ReadWrite);
        let hier_on = self.hier_on;
        let hidx = self.map.hier_index(idx);
        if hier_on && update {
            // Must precede the first lock examination (fast-path
            // ordering argument — see hierarchy.rs).
            self.ctx.hier.on_access(hidx, self.map.hier());
        }
        let mut retries = 0u32;
        loop {
            // Site R1 (module docs): Acquire.
            let l1 = lock.load(Ordering::Acquire);
            if is_owned(l1) {
                let rec = owner_ptr(l1) as *const StripeRecord;
                // SAFETY: registry-pinned arena memory (writelog.rs).
                if (*rec).owner() == self.owner_addr() {
                    return match self.strategy() {
                        AccessStrategy::WriteBack => {
                            // Read-after-write: O(1) stripe lookup, then
                            // the chain gives the buffered value; a miss
                            // means we own the stripe but never wrote
                            // this word — memory is clean.
                            if let Some(e) = self.ctx.wlog.find_entry(rec, addr) {
                                Ok((*e).value)
                            } else {
                                // Site R2: own lock — Relaxed.
                                Ok(atomic_view(addr).load(Ordering::Relaxed))
                            }
                        }
                        // Write-through: memory always holds our latest.
                        // Site R2: own lock — Relaxed.
                        AccessStrategy::WriteThrough => {
                            Ok(atomic_view(addr).load(Ordering::Relaxed))
                        }
                    };
                }
                // Encounter-time conflict: abort immediately (paper's
                // choice over waiting; CM_DELAY consumes the index).
                self.ctx.last_contended = Some(idx);
                return Err(self.abort(AbortReason::ReadLocked));
            }
            // Sites R3 + F1 + R4 (module docs): the seqlock re-check.
            // The Acquire fence orders the data read before the l2
            // re-load and pairs with the Release data stores (W2/W3/W6).
            let value = atomic_view(addr).load(Ordering::Relaxed);
            core::sync::atomic::fence(Ordering::Acquire);
            let l2 = lock.load(Ordering::Relaxed);
            if l1 != l2 {
                // Concurrent acquisition/release (or a write-through
                // incarnation bump) — the value may be dirty; retry.
                retries += 1;
                if retries > MAX_READ_RETRIES {
                    return Err(self.abort(AbortReason::InconsistentRead));
                }
                continue;
            }
            let version = version_of(l1, self.strategy());
            if version > self.ctx.end {
                // The word changed after our snapshot: extend or die.
                self.extend()?;
            }
            if update {
                let part = if hier_on { hidx } else { 0 };
                // Dedup fast path: re-reading the recently-touched
                // stripe at the same version (the dominant pattern in
                // the list workloads, where a node's fields share a
                // stripe) must not inflate the read set — validation of
                // the existing entry already covers this read.
                self.ctx.rset.push_dedup_last(part, idx, version);
            }
            // Recorded at the success point only: a read whose extend
            // failed never returns a value, so it must not enter the
            // history (own-stripe reads above are internal and carry no
            // version; they are covered by the stripe's write).
            #[cfg(feature = "record")]
            self.emit(stm_check::Event::Read {
                stripe: idx as u64,
                version,
            });
            return Ok(value);
        }
    }

    /// Transactional write with encounter-time lock acquisition.
    pub(crate) unsafe fn store_impl(&mut self, addr: *mut usize, value: usize) -> TxResult<()> {
        assert!(
            matches!(self.ctx.kind, TxKind::ReadWrite),
            "store inside a read-only transaction"
        );
        self.ts.stats.bump_write();
        let idx = self.map.lock_index(addr as usize);
        let lock = self.map.lock(idx);
        let hier_on = self.hier_on;
        let hidx = self.map.hier_index(idx);
        if hier_on {
            self.ctx.hier.on_access(hidx, self.map.hier());
        }
        let strategy = self.strategy();
        loop {
            // Site R1 (module docs): Acquire.
            let l1 = lock.load(Ordering::Acquire);
            if is_owned(l1) {
                let rec_const = owner_ptr(l1) as *const StripeRecord;
                // SAFETY: registry-pinned arena memory.
                if (*rec_const).owner() == self.owner_addr() {
                    let rec = rec_const as *mut StripeRecord;
                    match strategy {
                        AccessStrategy::WriteBack => {
                            if let Some(e) = self.ctx.wlog.find_entry(rec, addr) {
                                (*e).value = value;
                            } else {
                                self.ctx.wlog.add_entry(rec, addr, value);
                            }
                        }
                        AccessStrategy::WriteThrough => {
                            // Site R2: own lock — Relaxed.
                            let old = atomic_view(addr).load(Ordering::Relaxed);
                            self.ctx.wlog.push_undo(addr, old);
                            // Site W2: in-place publication — Release.
                            atomic_view(addr).store(value, Ordering::Release);
                        }
                    }
                    #[cfg(feature = "record")]
                    self.emit(stm_check::Event::Write { stripe: idx as u64 });
                    return Ok(());
                }
                self.ctx.last_contended = Some(idx);
                return Err(self.abort(AbortReason::WriteLocked));
            }
            // Detect a conflicting committed write early: if the stripe
            // moved past our snapshot we must extend before overwriting,
            // otherwise commit-time validation is doomed anyway.
            let version = version_of(l1, strategy);
            if version > self.ctx.end {
                self.extend()?;
                continue;
            }
            // Site W1 (module docs): publish a stripe record through an
            // AcqRel CAS; Relaxed on failure (the loop re-reads via R1).
            let rec = self.ctx.wlog.new_record(self.owner_addr(), l1, idx);
            if lock
                .compare_exchange(
                    l1,
                    make_owned(rec as usize),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                // Someone beat us; recycle the record and re-examine.
                self.ctx.wlog.abandon_last_record();
                continue;
            }
            if hier_on {
                self.ctx.hier.on_acquire(hidx, self.map.hier());
            }
            match strategy {
                AccessStrategy::WriteBack => {
                    self.ctx.wlog.add_entry(rec, addr, value);
                }
                AccessStrategy::WriteThrough => {
                    // Site R2: own lock (just acquired) — Relaxed.
                    let old = atomic_view(addr).load(Ordering::Relaxed);
                    self.ctx.wlog.push_undo(addr, old);
                    // Site W2: in-place publication — Release.
                    atomic_view(addr).store(value, Ordering::Release);
                }
            }
            #[cfg(feature = "record")]
            self.emit(stm_check::Event::Write { stripe: idx as u64 });
            return Ok(());
        }
    }

    /// Commit the attempt. On success the transaction's writes are
    /// visible with a unique commit timestamp; on failure the attempt is
    /// fully rolled back and the caller retries.
    pub(crate) fn commit(mut self) -> AttemptEnd {
        // Read-only commit (by kind, or an update transaction that never
        // wrote): the incrementally-validated snapshot is consistent,
        // nothing to do — the paper's read-only fast path.
        if self.ctx.wlog.n_records() == 0 {
            debug_assert!(
                self.ctx.free_log.is_empty(),
                "free without lock acquisition"
            );
            self.ts.stats.bump_commit();
            if matches!(self.ctx.kind, TxKind::ReadOnly) {
                self.ts.stats.bump_ro_commit();
            }
            self.ctx.alloc_log.clear();
            #[cfg(feature = "record")]
            self.emit(stm_check::Event::Commit { version: None });
            self.finished = true;
            return AttemptEnd::Committed;
        }

        let wv = match self.inner.clock.increment() {
            Ok(v) => v,
            Err(_) => {
                let reason = AbortReason::ClockOverflow;
                self.rollback(reason);
                return AttemptEnd::Aborted(reason);
            }
        };
        // Foreign commit timestamps consumed between our (last
        // validated) snapshot bound and our own increment: the steps a
        // CAS-from-snapshot timestamp acquisition would retry over.
        let clock_lag = (wv - 1).saturating_sub(self.ctx.end);
        if clock_lag > 0 {
            self.ts.stats.add_clock_conflicts(clock_lag);
        }

        // Validation can be skipped when no transaction committed since
        // our snapshot's upper bound (commit time adjacent to it).
        #[cfg(feature = "fault-inject")]
        let skip_validation = matches!(
            self.inner.fault.get(),
            crate::fault::FaultInjection::SkipCommitValidation
        );
        #[cfg(not(feature = "fault-inject"))]
        let skip_validation = false;
        if wv == self.ctx.end + 1 {
            self.ts.stats.bump_commit_validation_skip();
        } else if !skip_validation && !self.validate() {
            let reason = AbortReason::ValidationFailed;
            self.rollback(reason);
            return AttemptEnd::Aborted(reason);
        }

        let strategy = self.strategy();
        // WAL publish — inside the commit critical section: after the
        // commit timestamp is drawn and validation has passed, before
        // the lock releases. A conflicting later commit can only
        // acquire our stripes after our release, so conflicting records
        // enter the sink in commit-timestamp order and every log prefix
        // is conflict-closed (the crash-consistency invariant M1.4).
        //
        // Publishing runs *before* the write-back loop below: a failed
        // publish must abort with zero memory effect, and for
        // write-back the buffered values are available without touching
        // memory. Write-through already stored in place at encounter
        // time; its failure path restores through the undo log.
        #[cfg(feature = "durable")]
        if let Some(wal) = self.wal {
            let TxCtx {
                wlog, wal_scratch, ..
            } = &mut *self.ctx;
            wal_scratch.clear();
            match strategy {
                AccessStrategy::WriteBack => {
                    // Entry chains hold the buffered values, one entry
                    // per written word (`add_entry` deduplicates).
                    for rec in wlog.records() {
                        // SAFETY: records/entries of the current attempt.
                        unsafe {
                            let mut e = (*rec).first_entry;
                            while !e.is_null() {
                                wal_scratch.push(((*e).addr as usize, (*e).value));
                                e = (*e).next;
                            }
                        }
                    }
                }
                AccessStrategy::WriteThrough => {
                    // Memory already holds our values (encounter-time
                    // in-place stores) and we still own every covering
                    // lock, so a Relaxed read returns our own write.
                    // The undo log may list an address more than once;
                    // dedup after sorting (any survivor reads the same
                    // current value).
                    for u in wlog.undo.iter() {
                        // SAFETY: addresses recorded by this attempt.
                        let value = unsafe { atomic_view(u.addr).load(Ordering::Relaxed) };
                        wal_scratch.push((u.addr as usize, value));
                    }
                }
            }
            wal_scratch.sort_unstable_by_key(|&(addr, _)| addr);
            wal_scratch.dedup_by_key(|&mut (addr, _)| addr);
            if wal
                .publish(self.inner.wal.epoch(), wv, wal_scratch)
                .is_err()
            {
                // The record is durably absent; the commit must not
                // happen. Roll back cleanly (undo + lock release) and
                // let the run loop surface the failure — never retry.
                let reason = AbortReason::WalFailed;
                self.rollback(reason);
                return AttemptEnd::Aborted(reason);
            }
        }

        // Point of no return: apply buffered writes (write-back), then
        // release every lock with the new version.
        if matches!(strategy, AccessStrategy::WriteBack) {
            for rec in self.ctx.wlog.records() {
                // SAFETY: records/entries of the current attempt.
                unsafe {
                    let mut e = (*rec).first_entry;
                    while !e.is_null() {
                        // Site W3 (module docs): write-back publication
                        // — Release, for racing seqlock readers (F1).
                        atomic_view((*e).addr).store((*e).value, Ordering::Release);
                        e = (*e).next;
                    }
                }
            }
        }
        let release_word = make_version(wv, strategy);
        for rec in self.ctx.wlog.records() {
            // SAFETY: we own every recorded lock.
            let lock_idx = unsafe { (*rec).lock_idx };
            // Site W4 (module docs): lock release — Release; R1 acquires
            // the data stores above through this edge.
            self.map
                .lock(lock_idx)
                .store(release_word, Ordering::Release);
        }

        // Committed frees enter limbo stamped with our commit time
        // (including blocks allocated by this very attempt).
        if !self.ctx.free_log.is_empty() {
            self.inner.limbo.push(self.ctx.free_log.drain(..), wv);
        }
        self.ctx.alloc_log.clear();
        self.ctx.alloc_freed.clear();
        self.ts.stats.bump_commit();
        #[cfg(feature = "record")]
        self.emit(stm_check::Event::Commit { version: Some(wv) });
        self.finished = true;
        AttemptEnd::Committed
    }

    /// Undo the attempt: restore memory (write-through), release locks,
    /// reclaim this attempt's allocations.
    pub(crate) fn rollback(&mut self, reason: AbortReason) {
        if self.finished {
            return;
        }
        let strategy = self.strategy();
        if matches!(strategy, AccessStrategy::WriteThrough) {
            // Restore in reverse so the oldest value wins on multi-writes.
            for u in self.ctx.wlog.undo.iter().rev() {
                // SAFETY: we still own every lock covering these words.
                // Site W6 (module docs): restored-value publication —
                // Release, for racing seqlock readers (F1).
                unsafe { atomic_view(u.addr).store(u.old_value, Ordering::Release) };
            }
        }
        for rec in self.ctx.wlog.records() {
            // SAFETY: records of the current attempt; we own their locks.
            let (prior, lock_idx) = unsafe { ((*rec).prior_word, (*rec).lock_idx) };
            let release = match strategy {
                AccessStrategy::WriteBack => prior,
                AccessStrategy::WriteThrough => {
                    // Bump the incarnation so concurrent readers that saw
                    // our dirty value observe l1 != l2. On overflow,
                    // fetch a fresh version from the clock (paper §3.1).
                    match wt_bump_incarnation(prior) {
                        Some(w) => w,
                        None => wt_make(self.inner.clock.force_increment(), 0),
                    }
                }
            };
            // Site W5 (module docs): rollback lock release — Release
            // (sequenced after the undo restores it covers).
            self.map.lock(lock_idx).store(release, Ordering::Release);
        }
        // This attempt's allocations were never published (the attempt
        // is dead); reclaim immediately — including blocks it also freed.
        for (ptr, words) in self
            .ctx
            .alloc_log
            .drain(..)
            .chain(self.ctx.alloc_freed.drain(..))
        {
            // SAFETY: allocated by this attempt via alloc_words.
            unsafe { stm_api::mem::dealloc_words(ptr as *mut usize, words) };
        }
        self.ctx.free_log.clear();
        self.ts.stats.add_wasted_reads(self.ctx.attempt_reads);
        self.ts.stats.bump_abort(reason);
        #[cfg(feature = "record")]
        self.emit(stm_check::Event::Abort);
        self.finished = true;
    }
}

impl<'a> TmTx for Tx<'a> {
    unsafe fn load_word(&mut self, addr: *const usize) -> TxResult<usize> {
        self.load_impl(addr)
    }

    unsafe fn store_word(&mut self, addr: *mut usize, value: usize) -> TxResult<()> {
        self.store_impl(addr, value)
    }

    fn malloc(&mut self, words: usize) -> TxResult<*mut usize> {
        let ptr = stm_api::mem::alloc_words(words);
        self.ctx.alloc_log.push((ptr as usize, words));
        self.ts.stats.bump_alloc();
        Ok(ptr)
    }

    unsafe fn free(&mut self, ptr: *mut usize, words: usize) -> TxResult<()> {
        assert!(
            matches!(self.ctx.kind, TxKind::ReadWrite),
            "free inside a read-only transaction"
        );
        // A free is semantically an update: acquire every covering lock
        // (by rewriting each word with its current value) so conflicting
        // readers/writers are detected.
        for i in 0..words {
            let a = ptr.add(i);
            let v = self.load_impl(a)?;
            self.store_impl(a, v)?;
        }
        // A block both allocated and freed by this attempt must be
        // reclaimed exactly once whichever way the attempt ends: move it
        // from the alloc log to `alloc_freed` (abort reclaims that) and
        // still ride the free log into limbo on commit.
        if let Some(pos) = self
            .ctx
            .alloc_log
            .iter()
            .position(|&(p, _)| p == ptr as usize)
        {
            let entry = self.ctx.alloc_log.swap_remove(pos);
            self.ctx.alloc_freed.push(entry);
        }
        self.ctx.free_log.push((ptr as usize, words));
        self.ts.stats.bump_free();
        Ok(())
    }

    fn kind(&self) -> TxKind {
        self.ctx.kind
    }
}
