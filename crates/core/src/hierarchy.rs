//! Hierarchical locking (Section 3.2).
//!
//! In addition to the `ℓ` locks, a smaller array of `h ≪ ℓ` shared
//! counters is kept. The hash is consistent with the lock hash (two
//! addresses mapping to the same lock map to the same counter). Every
//! lock *acquisition* increments the covering counter; at validation a
//! whole read-set partition can be skipped when its counter is unchanged
//! modulo the transaction's own acquisitions — the "validation fast
//! path".
//!
//! ### Deviation from the paper (documented in DESIGN.md §2)
//!
//! The paper increments each counter at most once per transaction (the
//! write mask guards the increment) and the validation fast path accepts
//! `current == stored + 1` when the write-mask bit is set. Incrementing
//! once per *transaction* leaves a window where a second acquisition in
//! an already-incremented partition is invisible to concurrent readers
//! that saved the counter after the first increment, which can validate a
//! stale read. We therefore increment on **every** lock acquisition and
//! keep a per-partition count of our *own* acquisitions; the fast path
//! accepts `current == stored + own[i]`. With zero own acquisitions this
//! is exactly the paper's rule (1), with one it is rule (2); the
//! performance trade-off the paper studies (larger `h` ⇒ cheaper
//! validation, more atomic operations) is unchanged.

//! ### Memory ordering (DESIGN.md §3, sites H1–H3)
//!
//! The fast path is sound iff two visibility edges hold:
//!
//! * **H1 (increment, Release):** a writer increments the covering
//!   counter immediately after its lock-acquiring CAS. Release makes
//!   the increment the *publication point* of that CAS: any reader that
//!   observes the increment (Acquire) also observes the lock as owned
//!   (or later). This is why `TxHier::on_access` must save the counter
//!   *before* the first lock examination — if the saved value already
//!   includes a writer's increment, the subsequent lock load is
//!   guaranteed to see that writer's ownership, so the read can never
//!   be "covered" by a counter value it is not actually covered by.
//! * **H2 (load, Acquire):** pairs with H1. The other direction — a
//!   validator must observe the increment of every writer that
//!   *committed* within the validated snapshot — does not rest on H1/H2
//!   at all: it follows from the clock edge (site C1/C2 in `clock.rs`),
//!   because the writer's increment is sequenced before its clock RMW
//!   and the validator's counter load is sequenced after the clock load
//!   that covered that commit. A writer that has acquired locks but not
//!   yet committed may be missed — that is benign (its writes are not
//!   yet logically committed, so reads of the pre-writer state are
//!   still consistent; encounter-time conflicts surface through the
//!   lock words themselves).
//! * **H3 (reset, Relaxed):** only inside a quiesce fence; the fence
//!   publishes.
//!
//! ### Layout
//!
//! Every lock acquisition RMWs one of these counters, from every
//! thread. With 8 counters per cache line the increments false-share:
//! an acquisition in partition 3 invalidates the line holding
//! partitions 0–7 and stalls validators skip-checking any of them. Each
//! counter is therefore padded to its own line (`CacheAligned`); at the
//! configured maximum of 256 counters that is 16 KiB — noise next to
//! the lock array itself.

use crate::cacheline::CacheAligned;
use crate::config::MAX_HIER;
use core::sync::atomic::{AtomicU64, Ordering};

/// A 256-bit mask, indexed by hierarchy partition. Used for the per-
/// transaction read and write masks of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask256 {
    bits: [u64; 4],
}

impl Default for Mask256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Mask256 {
    /// The empty mask.
    pub const fn new() -> Mask256 {
        Mask256 { bits: [0; 4] }
    }

    /// Set bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < MAX_HIER);
        let word = &mut self.bits[i >> 6];
        let bit = 1u64 << (i & 63);
        let was_clear = *word & bit == 0;
        *word |= bit;
        was_clear
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < MAX_HIER);
        self.bits[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Clear all bits.
    #[inline]
    pub fn clear(&mut self) {
        self.bits = [0; 4];
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over set bit indices in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let b = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// The shared hierarchical counter array. One counter per cache line —
/// see the layout note in the module docs.
#[derive(Debug)]
pub struct HierArray {
    counters: Box<[CacheAligned<AtomicU64>]>,
}

impl HierArray {
    /// Allocate `h` zeroed counters (`h == 1` means the feature is
    /// disabled, but the array still exists to keep code paths uniform).
    pub fn new(h: usize) -> HierArray {
        assert!((1..=MAX_HIER).contains(&h) && h.is_power_of_two());
        let counters = (0..h)
            .map(|_| CacheAligned::new(AtomicU64::new(0)))
            .collect::<Vec<_>>();
        HierArray {
            counters: counters.into_boxed_slice(),
        }
    }

    /// Number of counters `h`.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters (never: `h >= 1`); provided
    /// for API completeness alongside `len`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// True when `h == 1` — hierarchical locking disabled.
    #[inline]
    pub fn is_disabled(&self) -> bool {
        self.counters.len() == 1
    }

    /// Current value of counter `i`.
    ///
    /// Site H2: Acquire — pairs with the Release increment so observing
    /// an increment implies observing the lock acquisition it
    /// published; see the module-level ordering argument.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.counters[i].load(Ordering::Acquire)
    }

    /// Increment counter `i` (on every lock acquisition in partition `i`).
    ///
    /// Site H1: Release — publishes the preceding lock-acquiring CAS to
    /// any Acquire load that observes the new count.
    #[inline]
    pub fn increment(&self, i: usize) {
        self.counters[i].fetch_add(1, Ordering::Release);
    }

    /// Zero all counters. Only inside a quiesce fence.
    ///
    /// Site H3: Relaxed — the fence publishes.
    pub fn reset(&self) {
        for c in self.counters.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-transaction hierarchy state: the read/write masks of Figure 1,
/// the counter values saved at first access, and our own acquisition
/// counts (see the module-level deviation note).
#[derive(Debug)]
pub struct TxHier {
    read_mask: Mask256,
    write_mask: Mask256,
    saved: Vec<u64>,
    own_acquisitions: Vec<u32>,
    h: usize,
}

impl TxHier {
    /// State for a hierarchy of size `h`.
    pub fn new(h: usize) -> TxHier {
        TxHier {
            read_mask: Mask256::new(),
            write_mask: Mask256::new(),
            saved: vec![0; h],
            own_acquisitions: vec![0; h],
            h,
        }
    }

    /// Reset for a new transaction, resizing if the hierarchy was
    /// reconfigured since the last attempt.
    pub fn reset(&mut self, h: usize) {
        if self.h != h {
            self.saved = vec![0; h];
            self.own_acquisitions = vec![0; h];
            self.h = h;
        } else {
            // Only the partitions we touched need clearing.
            for i in self.read_mask.iter_set() {
                self.saved[i] = 0;
                self.own_acquisitions[i] = 0;
            }
        }
        self.read_mask.clear();
        self.write_mask.clear();
    }

    /// Hierarchy size this state is sized for.
    pub fn h(&self) -> usize {
        self.h
    }

    /// First-access hook shared by reads and writes: saves the counter
    /// value the fast path will compare against. Must be called *before*
    /// the lock word is examined (see the ordering argument).
    #[inline]
    pub fn on_access(&mut self, i: usize, counters: &HierArray) {
        if self.read_mask.set(i) {
            self.saved[i] = counters.load(i);
        }
    }

    /// Lock-acquisition hook: increments the shared counter and records
    /// it as our own so validation can discount it.
    #[inline]
    pub fn on_acquire(&mut self, i: usize, counters: &HierArray) {
        self.write_mask.set(i);
        self.own_acquisitions[i] += 1;
        counters.increment(i);
    }

    /// The validation fast path for partition `i`: `true` means every
    /// read in the partition is still valid and per-entry checks can be
    /// skipped.
    #[inline]
    pub fn can_skip(&self, i: usize, counters: &HierArray) -> bool {
        debug_assert!(self.read_mask.get(i));
        counters.load(i) == self.saved[i] + u64::from(self.own_acquisitions[i])
    }

    /// Iterate over partitions this transaction read from.
    pub fn read_partitions(&self) -> impl Iterator<Item = usize> + '_ {
        self.read_mask.iter_set()
    }

    /// Compute the set of partitions whose validation can be skipped
    /// right now (one counter load per touched partition; the caller
    /// then makes a single pass over the flat read set).
    pub fn skip_mask(&self, counters: &HierArray) -> Mask256 {
        let mut mask = Mask256::new();
        for i in self.read_mask.iter_set() {
            if self.can_skip(i, counters) {
                mask.set(i);
            }
        }
        mask
    }

    /// Whether partition `i` was read from.
    pub fn touched(&self, i: usize) -> bool {
        self.read_mask.get(i)
    }

    /// Whether partition `i` was written to (acquired in).
    pub fn wrote(&self, i: usize) -> bool {
        self.write_mask.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mask_set_get_clear() {
        let mut m = Mask256::new();
        assert!(!m.get(0));
        assert!(m.set(0));
        assert!(!m.set(0), "second set reports already-set");
        assert!(m.get(0));
        assert!(m.set(255));
        assert_eq!(m.count(), 2);
        m.clear();
        assert_eq!(m.count(), 0);
        assert!(!m.get(255));
    }

    #[test]
    fn mask_iter_set_ascending() {
        let mut m = Mask256::new();
        for i in [3usize, 64, 65, 200, 255] {
            m.set(i);
        }
        let got: Vec<usize> = m.iter_set().collect();
        assert_eq!(got, vec![3, 64, 65, 200, 255]);
    }

    #[test]
    fn hier_array_counts() {
        let h = HierArray::new(4);
        assert_eq!(h.len(), 4);
        assert!(!h.is_disabled());
        h.increment(2);
        h.increment(2);
        assert_eq!(h.load(2), 2);
        assert_eq!(h.load(0), 0);
        h.reset();
        assert_eq!(h.load(2), 0);
    }

    #[test]
    fn disabled_hier_is_size_one() {
        let h = HierArray::new(1);
        assert!(h.is_disabled());
    }

    #[test]
    fn counters_do_not_share_cache_lines() {
        let h = HierArray::new(8);
        let addrs: Vec<usize> = (0..8)
            .map(|i| &h.counters[i] as *const _ as usize)
            .collect();
        for pair in addrs.windows(2) {
            assert!(
                pair[1] - pair[0] >= crate::cacheline::CACHE_LINE,
                "adjacent counters share a line"
            );
        }
    }

    #[test]
    #[should_panic]
    fn hier_array_rejects_non_power_of_two() {
        let _ = HierArray::new(3);
    }

    #[test]
    fn fast_path_skips_when_quiet() {
        let counters = HierArray::new(8);
        let mut tx = TxHier::new(8);
        tx.on_access(5, &counters);
        assert!(tx.can_skip(5, &counters), "no writer activity");
    }

    #[test]
    fn fast_path_detects_foreign_acquisition() {
        let counters = HierArray::new(8);
        let mut tx = TxHier::new(8);
        tx.on_access(5, &counters);
        counters.increment(5); // someone else acquires in partition 5
        assert!(!tx.can_skip(5, &counters));
    }

    #[test]
    fn fast_path_discounts_own_acquisitions() {
        let counters = HierArray::new(8);
        let mut tx = TxHier::new(8);
        tx.on_access(5, &counters);
        tx.on_acquire(5, &counters);
        tx.on_acquire(5, &counters); // two own acquisitions, still skippable
        assert!(tx.can_skip(5, &counters));
        counters.increment(5); // plus one foreign acquisition
        assert!(!tx.can_skip(5, &counters));
    }

    #[test]
    fn foreign_acquisition_before_save_is_discounted() {
        // A writer that incremented *before* we saved is covered by the
        // saved value and must not spoil the fast path.
        let counters = HierArray::new(4);
        counters.increment(1);
        counters.increment(1);
        let mut tx = TxHier::new(4);
        tx.on_access(1, &counters);
        assert!(tx.can_skip(1, &counters));
    }

    #[test]
    fn reset_clears_state_and_resizes() {
        let counters = HierArray::new(4);
        let mut tx = TxHier::new(4);
        tx.on_access(3, &counters);
        tx.on_acquire(3, &counters);
        tx.reset(4);
        assert!(!tx.touched(3));
        assert!(!tx.wrote(3));
        // Saved/own must have been cleared for reuse.
        tx.on_access(3, &counters);
        assert!(tx.can_skip(3, &counters));
        // Resize to a larger hierarchy.
        tx.reset(16);
        assert_eq!(tx.h(), 16);
        let big = HierArray::new(16);
        tx.on_access(15, &big);
        assert!(tx.can_skip(15, &big));
    }

    #[test]
    fn read_partitions_lists_touched() {
        let counters = HierArray::new(16);
        let mut tx = TxHier::new(16);
        tx.on_access(1, &counters);
        tx.on_access(9, &counters);
        let got: Vec<usize> = tx.read_partitions().collect();
        assert_eq!(got, vec![1, 9]);
    }

    proptest! {
        #[test]
        fn prop_mask_matches_hashset(indices in proptest::collection::vec(0usize..256, 0..64)) {
            let mut m = Mask256::new();
            let mut set = std::collections::BTreeSet::new();
            for &i in &indices {
                prop_assert_eq!(m.set(i), set.insert(i));
            }
            prop_assert_eq!(m.count(), set.len());
            let got: Vec<usize> = m.iter_set().collect();
            let want: Vec<usize> = set.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_fast_path_iff_no_foreign_increments(
            own in 0u32..5, foreign in 0u32..5
        ) {
            let counters = HierArray::new(2);
            let mut tx = TxHier::new(2);
            tx.on_access(0, &counters);
            for _ in 0..own { tx.on_acquire(0, &counters); }
            for _ in 0..foreign { counters.increment(0); }
            prop_assert_eq!(tx.can_skip(0, &counters), foreign == 0);
        }
    }
}
