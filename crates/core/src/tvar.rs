//! A small safe layer over the word-based API: typed transactional
//! cells and arrays.
//!
//! The paper's STM is word-based and unmanaged — the primary interface
//! is raw word addresses. For applications that just want transactional
//! variables (see `examples/quickstart.rs`), [`TCell`] and [`TArray`]
//! own their word storage and expose a safe typed API via the extension
//! trait [`TxExt`].

use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxResult};

/// Types storable in a single machine word.
///
/// # Safety
/// `into_word`/`from_word` must roundtrip: `from_word(into_word(v)) == v`
/// for every value `v` of the type.
pub unsafe trait Word: Copy {
    /// Encode into a word.
    fn into_word(self) -> usize;
    /// Decode from a word produced by [`Word::into_word`].
    fn from_word(w: usize) -> Self;
}

macro_rules! impl_word_int {
    ($($t:ty),*) => {
        $(
            // SAFETY: lossless via the checked-width cast below.
            unsafe impl Word for $t {
                #[inline]
                fn into_word(self) -> usize {
                    self as usize
                }
                #[inline]
                fn from_word(w: usize) -> Self {
                    w as $t
                }
            }
        )*
    };
}

impl_word_int!(usize, u64, u32, u16, u8);

// SAFETY: sign-extending roundtrip through the same-width usize.
unsafe impl Word for isize {
    fn into_word(self) -> usize {
        self as usize
    }
    fn from_word(w: usize) -> Self {
        w as isize
    }
}

// SAFETY: i64 <-> u64 <-> usize are all 64-bit here (enforced in
// lockword.rs).
unsafe impl Word for i64 {
    fn into_word(self) -> usize {
        self as usize
    }
    fn from_word(w: usize) -> Self {
        w as i64
    }
}

// SAFETY: 0/1 encoding.
unsafe impl Word for bool {
    fn into_word(self) -> usize {
        self as usize
    }
    fn from_word(w: usize) -> Self {
        w != 0
    }
}

/// A transactional variable holding one word-sized value.
///
/// Create before sharing (e.g. in an `Arc`), then access only inside
/// transactions of one STM instance.
#[derive(Debug)]
pub struct TCell<T: Word> {
    storage: WordBlock,
    _marker: core::marker::PhantomData<T>,
}

impl<T: Word> TCell<T> {
    /// A cell initialized to `value` (non-transactionally; do this
    /// before the cell is shared).
    pub fn new(value: T) -> TCell<T> {
        let storage = WordBlock::new(1);
        storage.write(0, value.into_word());
        TCell {
            storage,
            _marker: core::marker::PhantomData,
        }
    }

    /// The word address backing this cell.
    pub fn addr(&self) -> *mut usize {
        self.storage.as_ptr()
    }

    /// Non-transactional read — single-threaded setup/teardown only.
    pub fn read_direct(&self) -> T {
        T::from_word(self.storage.read(0))
    }

    /// Non-transactional write — single-threaded setup/teardown only.
    pub fn write_direct(&self, value: T) {
        self.storage.write(0, value.into_word());
    }
}

/// A fixed-length transactional array of word-sized values.
#[derive(Debug)]
pub struct TArray<T: Word> {
    storage: WordBlock,
    len: usize,
    _marker: core::marker::PhantomData<T>,
}

impl<T: Word> TArray<T> {
    /// An array of `len` copies of `init`.
    pub fn new(len: usize, init: T) -> TArray<T> {
        let storage = WordBlock::new(len.max(1));
        for i in 0..len {
            storage.write(i, init.into_word());
        }
        TArray {
            storage,
            len,
            _marker: core::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word address of element `i` (panics when out of bounds).
    pub fn addr(&self, i: usize) -> *mut usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        stm_api::field_ptr(self.storage.as_ptr(), i)
    }

    /// Non-transactional read — setup/teardown only.
    pub fn read_direct(&self, i: usize) -> T {
        assert!(i < self.len);
        T::from_word(self.storage.read(i))
    }
}

/// Typed transactional accessors for any [`TmTx`].
pub trait TxExt: TmTx {
    /// Transactionally read a cell.
    fn read<T: Word>(&mut self, cell: &TCell<T>) -> TxResult<T> {
        // SAFETY: the cell owns its word for its whole lifetime and the
        // caller shares it only with transactional accessors.
        let w = unsafe { self.load_word(cell.addr()) }?;
        Ok(T::from_word(w))
    }

    /// Transactionally write a cell.
    fn write<T: Word>(&mut self, cell: &TCell<T>, value: T) -> TxResult<()> {
        // SAFETY: as in `read`.
        unsafe { self.store_word(cell.addr(), value.into_word()) }
    }

    /// Transactionally read element `i` of an array.
    fn read_idx<T: Word>(&mut self, arr: &TArray<T>, i: usize) -> TxResult<T> {
        // SAFETY: bounds-checked address of owned storage.
        let w = unsafe { self.load_word(arr.addr(i)) }?;
        Ok(T::from_word(w))
    }

    /// Transactionally write element `i` of an array.
    fn write_idx<T: Word>(&mut self, arr: &TArray<T>, i: usize, value: T) -> TxResult<()> {
        // SAFETY: bounds-checked address of owned storage.
        unsafe { self.store_word(arr.addr(i), value.into_word()) }
    }

    /// Read-modify-write a cell.
    fn modify<T: Word>(&mut self, cell: &TCell<T>, f: impl FnOnce(T) -> T) -> TxResult<T> {
        let old = self.read(cell)?;
        let new = f(old);
        self.write(cell, new)?;
        Ok(new)
    }
}

impl<X: TmTx + ?Sized> TxExt for X {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stm, StmConfig};
    use stm_api::TxKind;

    #[test]
    fn cell_roundtrips_types() {
        let c = TCell::new(-5i64);
        assert_eq!(c.read_direct(), -5);
        c.write_direct(7);
        assert_eq!(c.read_direct(), 7);
        let b = TCell::new(true);
        assert!(b.read_direct());
    }

    #[test]
    fn transactional_cell_ops() {
        let stm = Stm::with_defaults();
        let c = TCell::new(10u64);
        stm.run(TxKind::ReadWrite, |tx| {
            let v = tx.read(&c)?;
            tx.write(&c, v * 3)
        });
        assert_eq!(c.read_direct(), 30);
    }

    #[test]
    fn modify_returns_new_value() {
        let stm = Stm::with_defaults();
        let c = TCell::new(1u64);
        let got = stm.run(TxKind::ReadWrite, |tx| c_modify(tx, &c));
        assert_eq!(got, 2);
        assert_eq!(c.read_direct(), 2);

        fn c_modify(tx: &mut crate::Tx<'_>, c: &TCell<u64>) -> stm_api::TxResult<u64> {
            tx.modify(c, |v| v + 1)
        }
    }

    #[test]
    fn array_ops() {
        let stm = Stm::with_defaults();
        let a = TArray::new(8, 0u64);
        stm.run(TxKind::ReadWrite, |tx| {
            for i in 0..8 {
                tx.write_idx(&a, i, (i * i) as u64)?;
            }
            Ok(())
        });
        let sum: u64 = stm.run_ro(|tx| {
            let mut s = 0;
            for i in 0..8 {
                s += tx.read_idx(&a, i)?;
            }
            Ok(s)
        });
        assert_eq!(sum, (0..8).map(|i| i * i).sum());
        assert_eq!(a.read_direct(3), 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let a: TArray<u64> = TArray::new(2, 0);
        let _ = a.addr(2);
    }

    #[test]
    fn empty_array_is_empty() {
        let a: TArray<u64> = TArray::new(0, 0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        let _ = StmConfig::default();
    }
}
