//! WAL plumbing for the `durable` cargo feature (shared by the TinySTM
//! core and the TL2 crate): an instance-level [`WalControl`] holding
//! the attached [`stm_api::wal::WalSink`] and the instance's durability
//! epoch, and a per-thread [`WalLocal`] caching the sink pointer.
//!
//! The shape mirrors `trace` (the `record` feature's plumbing), minus
//! the activation handshake: a WAL sink is never drained while workers
//! run — recovery reads the *store*, which synchronizes internally —
//! so the per-attempt cost is one `Relaxed` load when detached and one
//! branch on a cached `Option` when attached.
//!
//! The durability epoch differs from the trace epoch in one way: it
//! also advances on clock roll-over. Recording must poison its sink
//! there (stripe versions renumber with no boundary the checker could
//! segment on), but the WAL only needs `(epoch, commit_ts)` uniqueness
//! and per-key monotonicity — properties an epoch bump restores — so
//! durability survives roll-over where recording cannot.

use core::sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::sync::Arc;
use stm_api::wal::WalSink;

/// Instance-level durability state: the attached sink (if any) and the
/// durability epoch every published record is stamped with.
#[derive(Default)]
pub struct WalControl {
    /// The attached sink; swapped under the mutex.
    sink: Mutex<Option<Arc<dyn WalSink>>>,
    /// Bumped on every attach/detach; 0 means "never attached".
    generation: AtomicU64,
    /// Durability epoch. Bumped only inside quiesce fences (reconfigure
    /// and clock roll-over), which exclude entered transactions, so a
    /// `Relaxed` read inside the gate is race-free.
    epoch: AtomicU64,
}

impl WalControl {
    /// Fresh control with nothing attached.
    pub fn new() -> WalControl {
        WalControl::default()
    }

    /// Attach a sink: every subsequently committed update transaction
    /// publishes its write set before releasing its stripe locks.
    pub fn attach(&self, sink: &Arc<dyn WalSink>) {
        let mut guard = self.sink.lock();
        *guard = Some(Arc::clone(sink));
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Detach the current sink; threads stop publishing at their next
    /// attempt. A commit already in its critical section may publish
    /// once more — the `Arc` keeps the sink valid for it.
    pub fn detach(&self) {
        let mut guard = self.sink.lock();
        *guard = None;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Current generation (pairs with [`WalLocal::sink`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Current durability epoch (read inside the quiesce gate only).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Bump the durability epoch. Must be called inside a quiesce fence
    /// (no transaction can be mid-commit).
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the attached sink (slow path).
    fn current(&self) -> (u64, Option<Arc<dyn WalSink>>) {
        let guard = self.sink.lock();
        (self.generation.load(Ordering::Acquire), guard.clone())
    }
}

/// Per-thread cache of the attached sink.
#[derive(Default)]
pub struct WalLocal {
    /// Generation this cache was refreshed at (0 = never attached).
    generation: u64,
    /// The sink to publish through, if durability is on.
    sink: Option<Arc<dyn WalSink>>,
}

impl WalLocal {
    /// Fresh, detached cache.
    pub fn new() -> WalLocal {
        WalLocal::default()
    }

    /// The sink to publish this attempt's commit through, refreshing
    /// the cache if the control's generation moved (attach/detach).
    #[inline]
    pub fn sink(&mut self, control: &WalControl) -> Option<&Arc<dyn WalSink>> {
        let generation = control.generation();
        if generation != self.generation {
            let (generation, sink) = control.current();
            self.sink = sink;
            self.generation = generation;
        }
        self.sink.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingSink {
        published: AtomicU64,
    }

    impl WalSink for CountingSink {
        fn publish(
            &self,
            _epoch: u64,
            _commit_ts: u64,
            _writes: &[(usize, usize)],
        ) -> Result<(), stm_api::wal::PublishError> {
            self.published.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn detached_control_yields_no_sink_without_locking() {
        let control = WalControl::new();
        let mut local = WalLocal::new();
        assert!(local.sink(&control).is_none());
        assert_eq!(control.generation(), 0);
        assert_eq!(control.epoch(), 0);
    }

    #[test]
    fn attach_publish_detach_cycle() {
        let control = WalControl::new();
        let sink = Arc::new(CountingSink::default());
        let dyn_sink: Arc<dyn WalSink> = Arc::clone(&sink) as Arc<dyn WalSink>;
        control.attach(&dyn_sink);
        let mut local = WalLocal::new();
        local
            .sink(&control)
            .expect("attached")
            .publish(0, 1, &[(8, 9)])
            .unwrap();
        control.detach();
        assert!(local.sink(&control).is_none());
        assert_eq!(sink.published.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn epoch_advances() {
        let control = WalControl::new();
        control.advance_epoch();
        control.advance_epoch();
        assert_eq!(control.epoch(), 2);
    }
}
