//! The global time base: a shared integer counter, as in LSA and TL2
//! (Section 3.1, "Clock Management").
//!
//! Commit timestamps are obtained with an atomic fetch-and-increment.
//! When the configured maximum is reached the clock reports overflow and
//! the STM runs the roll-over protocol: quiesce all transactions, zero
//! every version number, and reset the clock (see `quiesce.rs` /
//! `Stm::handle_overflow`).
//!
//! ## Memory ordering (DESIGN.md §3, sites C1–C3)
//!
//! The clock is the synchronization spine of the time-based protocol,
//! so its two hot operations deliberately keep `SeqCst`:
//!
//! * **C1 `increment` / `force_increment`** — `SeqCst` RMW. The AcqRel
//!   half is load-bearing: a transaction whose snapshot (or commit
//!   timestamp) covers a writer's commit time acquires everything that
//!   writer did *before* its own clock RMW — in particular its
//!   hierarchy-counter increments, which the validation fast path must
//!   observe (H1/H2 in `hierarchy.rs`). The upgrade from AcqRel to
//!   SeqCst is free on x86-64 (both compile to `lock xadd`) and buys
//!   the single total order the limbo-reclamation argument below uses.
//! * **C2 `now`** — `SeqCst` load. The Acquire half pairs with C1 as
//!   above. The SeqCst half participates in a store-buffering (Dekker)
//!   pattern with `active_start` publication: a starting transaction
//!   stores its oldest-reader marker and *then* samples the clock,
//!   while the limbo reclaimer is ordered on the other side (see
//!   `stm.rs` site S2); with anything weaker both sides could miss each
//!   other and a block could be reclaimed while a just-starting
//!   snapshot can still reach it. A SeqCst *load* costs the same as an
//!   Acquire load on x86-64, so there is nothing to win by splitting
//!   this into two entry points.
//! * **C3 `reset` / `set_max` / `max`** — cold configuration paths that
//!   only run inside a quiesce fence (no concurrent transactions); the
//!   fence's own synchronization publishes them, `Relaxed` suffices.
//!
//! ## Layout
//!
//! `now` is RMW-ed by every committing update transaction; `max` is
//! read on the same path but written only at reconfiguration. Each gets
//! its own cache line so the commit-time RMW traffic on `now` does not
//! invalidate the read-mostly `max` line (or a neighboring allocation).

use crate::cacheline::CacheAligned;
use core::sync::atomic::{AtomicU64, Ordering};

/// Returned by [`GlobalClock::increment`] when the roll-over threshold is
/// crossed; the committing transaction aborts with `ClockOverflow` and
/// triggers the roll-over before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOverflow;

/// A monotonically increasing shared counter.
///
/// Ordering and layout rationale in the module docs; per-site tags
/// (C1–C3) match DESIGN.md §3.
#[derive(Debug)]
pub struct GlobalClock {
    /// Current time. Own cache line: every committer RMWs it.
    now: CacheAligned<AtomicU64>,
    /// Roll-over threshold. Own line: read-mostly, must not ride the
    /// bouncing `now` line.
    max: CacheAligned<AtomicU64>,
}

impl GlobalClock {
    /// A clock starting at 0 that overflows past `max`.
    pub fn new(max: u64) -> GlobalClock {
        GlobalClock {
            now: CacheAligned::new(AtomicU64::new(0)),
            max: CacheAligned::new(AtomicU64::new(max)),
        }
    }

    /// Current time. Transactions sample this at start and when
    /// extending snapshots.
    ///
    /// Site C2: SeqCst load (Acquire pairs with committers' C1 RMWs;
    /// SeqCst orders the begin-path sample against `active_start`
    /// publication — see module docs).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Acquire a fresh commit timestamp (strictly greater than every
    /// previously returned value since the last reset).
    ///
    /// Site C1: SeqCst RMW (see module docs; AcqRel half required, the
    /// SeqCst upgrade is free on x86-64).
    #[inline]
    pub fn increment(&self) -> Result<u64, ClockOverflow> {
        let t = self.now.fetch_add(1, Ordering::SeqCst) + 1;
        if t >= self.max.load(Ordering::Relaxed) {
            // Leave `now` past max: concurrent committers also observe
            // overflow and everyone funnels into the roll-over quiesce.
            Err(ClockOverflow)
        } else {
            Ok(t)
        }
    }

    /// Acquire a timestamp ignoring the roll-over threshold. Used on the
    /// write-through abort path when an incarnation counter overflows and
    /// a fresh version is needed unconditionally; the next committer
    /// still observes the overflow and triggers roll-over.
    ///
    /// Site C1 (same RMW role as `increment`).
    #[inline]
    pub fn force_increment(&self) -> u64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether the clock has crossed the roll-over threshold.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.now() >= self.max.load(Ordering::Relaxed)
    }

    /// Reset to 0. Only called inside a quiesce fence (no transactions
    /// active), together with zeroing all lock-array versions.
    ///
    /// Site C3: Relaxed — the fence publishes.
    pub fn reset(&self) {
        self.now.store(0, Ordering::Relaxed);
    }

    /// The configured roll-over threshold.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Change the roll-over threshold (dynamic reconfiguration, inside a
    /// quiesce fence).
    ///
    /// Site C3: Relaxed — the fence publishes.
    pub fn set_max(&self, max: u64) {
        self.max.store(max, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_increments() {
        let c = GlobalClock::new(1 << 40);
        assert_eq!(c.now(), 0);
        assert_eq!(c.increment(), Ok(1));
        assert_eq!(c.increment(), Ok(2));
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn overflow_reported_at_max() {
        let c = GlobalClock::new(4);
        assert_eq!(c.increment(), Ok(1));
        assert_eq!(c.increment(), Ok(2));
        assert_eq!(c.increment(), Ok(3));
        assert_eq!(c.increment(), Err(ClockOverflow));
        assert!(c.overflowed());
    }

    #[test]
    fn reset_restores_service() {
        let c = GlobalClock::new(4);
        while c.increment().is_ok() {}
        c.reset();
        assert_eq!(c.now(), 0);
        assert!(!c.overflowed());
        assert_eq!(c.increment(), Ok(1));
    }

    #[test]
    fn counters_live_on_distinct_cache_lines() {
        // The layout half of the tentpole: commit-time RMW traffic on
        // `now` must not invalidate the read-mostly `max` line.
        let c = GlobalClock::new(16);
        let now_addr = &c.now as *const _ as usize;
        let max_addr = &c.max as *const _ as usize;
        assert_eq!(now_addr % crate::cacheline::CACHE_LINE, 0);
        assert_eq!(max_addr % crate::cacheline::CACHE_LINE, 0);
        assert!(now_addr.abs_diff(max_addr) >= crate::cacheline::CACHE_LINE);
    }

    #[test]
    fn timestamps_are_unique_across_threads() {
        let c = Arc::new(GlobalClock::new(1 << 40));
        let threads = 4;
        let per = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    (0..per).map(|_| c.increment().unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per, "duplicate timestamps issued");
        assert_eq!(c.now(), (threads * per) as u64);
    }

    #[test]
    fn overflow_is_sticky_until_reset() {
        let c = GlobalClock::new(16);
        while c.increment().is_ok() {}
        // Every further attempt keeps failing.
        assert_eq!(c.increment(), Err(ClockOverflow));
        assert_eq!(c.increment(), Err(ClockOverflow));
        c.reset();
        assert_eq!(c.increment(), Ok(1));
    }
}
