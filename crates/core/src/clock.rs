//! The global time base: a shared integer counter, as in LSA and TL2
//! (Section 3.1, "Clock Management").
//!
//! Commit timestamps are obtained with an atomic fetch-and-increment.
//! When the configured maximum is reached the clock reports overflow and
//! the STM runs the roll-over protocol: quiesce all transactions, zero
//! every version number, and reset the clock (see `quiesce.rs` /
//! `Stm::handle_overflow`).

use core::sync::atomic::{AtomicU64, Ordering};

/// Returned by [`GlobalClock::increment`] when the roll-over threshold is
/// crossed; the committing transaction aborts with `ClockOverflow` and
/// triggers the roll-over before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockOverflow;

/// A monotonically increasing shared counter.
///
/// All operations are `SeqCst`: the correctness argument for the
/// hierarchical-locking fast path relies on the single total order of
/// clock increments, hierarchy-counter increments, and their loads (see
/// DESIGN.md §3).
#[derive(Debug)]
pub struct GlobalClock {
    now: AtomicU64,
    max: AtomicU64,
}

impl GlobalClock {
    /// A clock starting at 0 that overflows past `max`.
    pub fn new(max: u64) -> GlobalClock {
        GlobalClock {
            now: AtomicU64::new(0),
            max: AtomicU64::new(max),
        }
    }

    /// Current time. Transactions sample this at start and when
    /// extending snapshots.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Acquire a fresh commit timestamp (strictly greater than every
    /// previously returned value since the last reset).
    #[inline]
    pub fn increment(&self) -> Result<u64, ClockOverflow> {
        let t = self.now.fetch_add(1, Ordering::SeqCst) + 1;
        if t >= self.max.load(Ordering::Relaxed) {
            // Leave `now` past max: concurrent committers also observe
            // overflow and everyone funnels into the roll-over quiesce.
            Err(ClockOverflow)
        } else {
            Ok(t)
        }
    }

    /// Acquire a timestamp ignoring the roll-over threshold. Used on the
    /// write-through abort path when an incarnation counter overflows and
    /// a fresh version is needed unconditionally; the next committer
    /// still observes the overflow and triggers roll-over.
    #[inline]
    pub fn force_increment(&self) -> u64 {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Whether the clock has crossed the roll-over threshold.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.now() >= self.max.load(Ordering::Relaxed)
    }

    /// Reset to 0. Only called inside a quiesce fence (no transactions
    /// active), together with zeroing all lock-array versions.
    pub fn reset(&self) {
        self.now.store(0, Ordering::SeqCst);
    }

    /// The configured roll-over threshold.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Change the roll-over threshold (dynamic reconfiguration, inside a
    /// quiesce fence).
    pub fn set_max(&self, max: u64) {
        self.max.store(max, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_increments() {
        let c = GlobalClock::new(1 << 40);
        assert_eq!(c.now(), 0);
        assert_eq!(c.increment(), Ok(1));
        assert_eq!(c.increment(), Ok(2));
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn overflow_reported_at_max() {
        let c = GlobalClock::new(4);
        assert_eq!(c.increment(), Ok(1));
        assert_eq!(c.increment(), Ok(2));
        assert_eq!(c.increment(), Ok(3));
        assert_eq!(c.increment(), Err(ClockOverflow));
        assert!(c.overflowed());
    }

    #[test]
    fn reset_restores_service() {
        let c = GlobalClock::new(4);
        while c.increment().is_ok() {}
        c.reset();
        assert_eq!(c.now(), 0);
        assert!(!c.overflowed());
        assert_eq!(c.increment(), Ok(1));
    }

    #[test]
    fn timestamps_are_unique_across_threads() {
        let c = Arc::new(GlobalClock::new(1 << 40));
        let threads = 4;
        let per = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    (0..per).map(|_| c.increment().unwrap()).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per, "duplicate timestamps issued");
        assert_eq!(c.now(), (threads * per) as u64);
    }

    #[test]
    fn overflow_is_sticky_until_reset() {
        let c = GlobalClock::new(16);
        while c.increment().is_ok() {}
        // Every further attempt keeps failing.
        assert_eq!(c.increment(), Err(ClockOverflow));
        assert_eq!(c.increment(), Err(ClockOverflow));
        c.reset();
        assert_eq!(c.increment(), Ok(1));
    }
}
