//! Engine-level correctness tests for the TinySTM core: atomicity,
//! opacity (consistent snapshots), both access strategies, hierarchical
//! locking, roll-over and reconfiguration under load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxKind};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig, TCell, TxExt};

fn config(strategy: AccessStrategy) -> StmConfig {
    StmConfig::default()
        .with_strategy(strategy)
        .with_cm(CmPolicy::Backoff {
            base: 8,
            max_spins: 4096,
        })
}

fn both_strategies(f: impl Fn(StmConfig)) {
    f(config(AccessStrategy::WriteBack));
    f(config(AccessStrategy::WriteThrough));
}

#[test]
fn lost_update_free_counter() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let cell = Arc::new(WordBlock::new(1));
        let threads = 4;
        let per = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stm = stm.clone();
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let addr = cell.as_ptr();
                    for _ in 0..per {
                        stm.run(TxKind::ReadWrite, |tx| {
                            let v = unsafe { tx.load_word(addr) }?;
                            unsafe { tx.store_word(addr, v + 1) }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.read(0), threads * per, "lost updates detected");
        let stats = stm.stats();
        assert_eq!(stats.totals.commits, (threads * per) as u64);
    });
}

#[test]
fn constant_sum_transfers_hold_under_concurrency() {
    // The classic opacity/atomicity check: random transfers between
    // accounts keep the total constant; concurrent read-only audits must
    // always observe the full total.
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let n_accounts = 16;
        let initial = 1_000i64;
        let accounts: Arc<Vec<TCell<i64>>> =
            Arc::new((0..n_accounts).map(|_| TCell::new(initial)).collect());
        let total = initial * n_accounts as i64;
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for t in 0..3u64 {
            let stm = stm.clone();
            let accounts = Arc::clone(&accounts);
            handles.push(std::thread::spawn(move || {
                let mut seed = 0x1234_5678_9abc_def0u64 ^ t;
                let mut rand = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                for _ in 0..3_000 {
                    let from = (rand() as usize) % n_accounts;
                    let to = (rand() as usize) % n_accounts;
                    let amount = (rand() % 50) as i64;
                    stm.run(TxKind::ReadWrite, |tx| {
                        let vf = tx.read(&accounts[from])?;
                        tx.write(&accounts[from], vf - amount)?;
                        let vt = tx.read(&accounts[to])?;
                        tx.write(&accounts[to], vt + amount)?;
                        Ok(())
                    });
                }
            }));
        }
        // Auditor: read-only snapshot must always sum to the total.
        {
            let stm = stm.clone();
            let accounts = Arc::clone(&accounts);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let sum: i64 = stm.run_ro(|tx| {
                        let mut s = 0;
                        for a in accounts.iter() {
                            s += tx.read(a)?;
                        }
                        Ok(s)
                    });
                    assert_eq!(sum, total, "inconsistent snapshot observed");
                }
            }));
        }
        for h in handles.drain(..3) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let final_sum: i64 = (0..n_accounts).map(|i| accounts[i].read_direct()).sum();
        assert_eq!(final_sum, total);
    });
}

#[test]
fn update_transactions_see_consistent_pairs() {
    // Writers keep x == y; update transactions assert it inside the
    // transaction (must hold by opacity even before commit validation).
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let x = Arc::new(TCell::new(0u64));
        let y = Arc::new(TCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let (stm, x, y, stop) = (stm.clone(), x.clone(), y.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    stm.run(TxKind::ReadWrite, |tx| {
                        tx.write(&x, i)?;
                        tx.write(&y, i)
                    });
                }
            })
        };
        let checker = {
            let (stm, x, y) = (stm.clone(), x.clone(), y.clone());
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    stm.run(TxKind::ReadWrite, |tx| {
                        let vx = tx.read(&x)?;
                        let vy = tx.read(&y)?;
                        assert_eq!(vx, vy, "torn snapshot inside update tx");
                        Ok(())
                    });
                }
            })
        };
        checker.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
}

#[test]
fn read_only_cannot_write() {
    let stm = Stm::with_defaults();
    let c = TCell::new(0u64);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run_ro(|tx| tx.write(&c, 1));
    }));
    assert!(result.is_err(), "read-only store must panic");
}

#[test]
fn explicit_retry_aborts_and_reruns() {
    let stm = Stm::with_defaults();
    let c = TCell::new(0u64);
    let mut first = true;
    stm.run(TxKind::ReadWrite, |tx| {
        if std::mem::take(&mut first) {
            tx.retry()?;
        }
        tx.write(&c, 9)
    });
    assert_eq!(c.read_direct(), 9);
    let s = stm.stats();
    assert_eq!(s.totals.commits, 1);
    assert_eq!(s.totals.aborts, 1);
}

#[test]
fn panic_in_transaction_releases_locks() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let c = TCell::new(5u64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.run(TxKind::ReadWrite, |tx| {
                tx.write(&c, 99)?;
                panic!("user bug");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(r.is_err());
        // The lock must have been released and the value rolled back:
        // a subsequent transaction proceeds and sees the old value.
        let v = stm.run(TxKind::ReadWrite, |tx| tx.read(&c));
        assert_eq!(v, 5, "dirty value or stuck lock after panic");
    });
}

#[test]
fn write_through_abort_restores_values() {
    let stm = Stm::new(config(AccessStrategy::WriteThrough)).unwrap();
    let c = TCell::new(42u64);
    let mut first = true;
    stm.run(TxKind::ReadWrite, |tx| {
        tx.write(&c, 1000)?;
        if std::mem::take(&mut first) {
            // Abort after the direct write: memory must be restored.
            tx.retry()?;
        }
        Ok(())
    });
    // Second attempt wrote 1000 and committed.
    assert_eq!(c.read_direct(), 1000);
    assert_eq!(stm.stats().totals.aborts, 1);
}

#[test]
fn clock_rollover_under_load() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg.with_max_clock(512)).unwrap();
        let cell = Arc::new(WordBlock::new(1));
        let threads = 3;
        let per = 2_000; // >> max_clock: many roll-overs
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stm = stm.clone();
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let addr = cell.as_ptr();
                    for _ in 0..per {
                        stm.run(TxKind::ReadWrite, |tx| {
                            let v = unsafe { tx.load_word(addr) }?;
                            unsafe { tx.store_word(addr, v + 1) }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.read(0), threads * per);
        let s = stm.stats();
        assert!(s.rollovers >= 1, "expected at least one roll-over");
        assert!(stm.clock_now() < 512 + 64, "clock was reset");
    });
}

#[test]
fn reconfigure_under_load_preserves_invariants() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let n = 8;
        let accounts: Arc<Vec<TCell<i64>>> = Arc::new((0..n).map(|_| TCell::new(100)).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..2u64)
            .map(|t| {
                let (stm, accounts, stop) = (stm.clone(), accounts.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut seed = t + 1;
                    while !stop.load(Ordering::Relaxed) {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (seed >> 33) as usize % n;
                        let to = (seed >> 13) as usize % n;
                        stm.run(TxKind::ReadWrite, |tx| {
                            let vf = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], vf - 1)?;
                            let vt = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], vt + 1)
                        });
                    }
                })
            })
            .collect();

        // Cycle through configurations while transactions are running.
        for (locks, shifts, hier) in [(8, 0, 0), (12, 2, 2), (16, 4, 4), (10, 1, 3)] {
            let newcfg = stm
                .config()
                .with_locks_log2(locks)
                .with_shifts(shifts)
                .with_hier_log2(hier);
            stm.reconfigure(newcfg).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(stm.config().locks_log2, locks);
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        let sum: i64 = (0..n).map(|i| accounts[i].read_direct()).sum();
        assert_eq!(sum, 100 * n as i64, "reconfiguration corrupted state");
        assert_eq!(stm.stats().reconfigurations, 4);
    });
}

#[test]
fn hierarchical_locking_correct_under_concurrency() {
    // Same constant-sum workload with the hierarchy enabled: exercises
    // counter increments and the validation fast path.
    for strategy in [AccessStrategy::WriteBack, AccessStrategy::WriteThrough] {
        let cfg = config(strategy).with_hier_log2(4); // h = 16
        let stm = Stm::new(cfg).unwrap();
        let n = 32;
        let accounts: Arc<Vec<TCell<i64>>> = Arc::new((0..n).map(|_| TCell::new(10)).collect());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let (stm, accounts) = (stm.clone(), accounts.clone());
                std::thread::spawn(move || {
                    let mut seed = 77 + t;
                    for _ in 0..2_000 {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (seed >> 33) as usize % n;
                        let to = (seed >> 17) as usize % n;
                        stm.run(TxKind::ReadWrite, |tx| {
                            // Read a broad slice (large read set), then
                            // move one unit — forces real validations.
                            let mut sum = 0i64;
                            for a in accounts.iter().take(16) {
                                sum += tx.read(a)?;
                            }
                            let _ = sum;
                            let vf = tx.read(&accounts[from])?;
                            tx.write(&accounts[from], vf - 1)?;
                            let vt = tx.read(&accounts[to])?;
                            tx.write(&accounts[to], vt + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sum: i64 = (0..n).map(|i| accounts[i].read_direct()).sum();
        assert_eq!(sum, 10 * n as i64);
    }
}

#[test]
fn hierarchy_fast_path_skips_unwritten_partition() {
    // Deterministic interleaving: reader reads X, a writer commits to Y
    // (different hierarchy partition), reader then reads Y forcing a
    // snapshot extension. Validation must skip X's partition via the
    // hierarchy counter and process nothing else.
    let cfg = StmConfig::default().with_hier_log2(4); // h = 16
    let stm = Stm::new(cfg).unwrap();

    // Find two cells in different hierarchy partitions.
    let probe = Stm::new(cfg).unwrap();
    let _ = probe; // partitions depend only on addresses & config
    let cells: Vec<TCell<u64>> = (0..64).map(|_| TCell::new(0)).collect();
    let part_of = |c: &TCell<u64>| (c.addr() as usize >> 3) & 15;
    let x_idx = 0;
    let y_idx = (1..64)
        .find(|&i| part_of(&cells[i]) != part_of(&cells[x_idx]))
        .expect("some cell lands in another partition");
    let x = &cells[x_idx];
    let y = &cells[y_idx];

    let b1 = Arc::new(std::sync::Barrier::new(2));
    let b2 = Arc::new(std::sync::Barrier::new(2));
    let writer = {
        let stm = stm.clone();
        let (b1, b2) = (b1.clone(), b2.clone());
        let y_addr = y.addr() as usize;
        std::thread::spawn(move || {
            b1.wait();
            stm.run(TxKind::ReadWrite, |tx| unsafe {
                tx.store_word(y_addr as *mut usize, 7)
            });
            b2.wait();
        })
    };

    let mut first = true;
    let before = stm.stats().totals;
    stm.run(TxKind::ReadWrite, |tx| {
        let _ = tx.read(x)?; // read set entry in X's partition
        if std::mem::take(&mut first) {
            b1.wait(); // writer commits to Y now
            b2.wait();
        }
        let vy = tx.read(y)?; // version(Y) > end ⇒ extension + validation
        assert_eq!(vy, 7);
        // Write something so this stays an update transaction.
        tx.write(x, 1)
    });
    writer.join().unwrap();
    let d = stm.stats().totals.since(&before);
    assert!(d.extensions >= 1, "extension did not fire");
    assert!(
        d.val_locks_skipped >= 1,
        "X's partition was not skipped (skipped={}, processed={})",
        d.val_locks_skipped,
        d.val_locks_processed
    );
}

#[test]
fn malloc_free_lifecycle_with_reclamation() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        // Allocate, publish, free, and force reclamation.
        let holder = TCell::new(0usize);
        stm.run(TxKind::ReadWrite, |tx| {
            let p = tx.malloc(4)?;
            unsafe { tx.store_word(p, 0xbeef) }?;
            tx.write(&holder, p as usize)
        });
        let p = holder.read_direct() as *mut usize;
        let v = stm.run(TxKind::ReadWrite, |tx| unsafe { tx.load_word(p) });
        assert_eq!(v, 0xbeef);
        stm.run(TxKind::ReadWrite, |tx| {
            tx.write(&holder, 0)?;
            unsafe { tx.free(p, 4) }
        });
        assert_eq!(stm.stats().limbo_pending, 1);
        let reclaimed = stm.reclaim_now();
        assert_eq!(reclaimed, 1);
        assert_eq!(stm.stats().limbo_pending, 0);
    });
}

#[test]
fn abort_reclaims_allocation() {
    let stm = Stm::with_defaults();
    let mut first = true;
    stm.run(TxKind::ReadWrite, |tx| {
        let _p = tx.malloc(16)?;
        if std::mem::take(&mut first) {
            tx.retry()?;
        }
        Ok(())
    });
    // The aborted attempt's block was reclaimed inside rollback (no
    // limbo involvement), the committed one leaks by design until freed.
    assert_eq!(stm.stats().limbo_pending, 0);
    assert_eq!(stm.stats().totals.allocs, 2);
}

#[test]
fn alloc_then_free_same_transaction() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        stm.run(TxKind::ReadWrite, |tx| {
            let p = tx.malloc(2)?;
            unsafe { tx.store_word(p, 7) }?;
            unsafe { tx.free(p, 2) }
        });
        assert_eq!(stm.stats().limbo_pending, 1);
        stm.reclaim_now();
        assert_eq!(stm.stats().limbo_pending, 0);
    });
}

#[test]
fn conflicting_writers_record_aborts() {
    // Force write-write conflicts on a single cell with no backoff.
    let stm = Stm::new(StmConfig::default()).unwrap();
    let cell = Arc::new(WordBlock::new(1));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stm = stm.clone();
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                let addr = cell.as_ptr();
                for _ in 0..3_000 {
                    stm.run(TxKind::ReadWrite, |tx| {
                        let v = unsafe { tx.load_word(addr) }?;
                        // Lengthen the window a little.
                        std::hint::spin_loop();
                        unsafe { tx.store_word(addr, v + 1) }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read(0), 12_000);
    // With four hammering threads some aborts must occur... unless the
    // scheduler fully serialized us (single-core CI), so don't assert a
    // minimum — just consistency of the accounting.
    let s = stm.stats();
    let by_reason: u64 = s.totals.aborts_by_reason.iter().sum();
    assert_eq!(by_reason, s.totals.aborts);
}

#[test]
fn snapshot_extension_fires_on_stale_read() {
    let stm = Stm::with_defaults();
    let a = TCell::new(1u64);
    let b = TCell::new(1u64);
    // Warm: one committed write after the reader's snapshot start.
    let stm2 = stm.clone();
    let reader = {
        let a = &a;
        let b = &b;
        // Single-threaded interleaving via explicit transactions:
        // tx1 reads a, then tx2 commits a write to b, then tx1 reads b →
        // b's version > tx1.end → extension.
        stm.run(TxKind::ReadWrite, |tx| {
            let va = tx.read(a)?;
            // Nested-use of a second handle on the same thread would
            // deadlock the quiesce gate only under a fence; plain
            // transactions are fine — but keep it simple: commit the
            // conflicting write from this same thread between reads is
            // impossible inside one closure, so just bump the clock.
            let _ = stm2.clock_now();
            let vb = tx.read(b)?;
            Ok(va + vb)
        })
    };
    assert_eq!(reader, 2);
}

#[test]
fn stats_reads_writes_counted() {
    let stm = Stm::with_defaults();
    let a = TCell::new(0u64);
    stm.run(TxKind::ReadWrite, |tx| {
        let _ = tx.read(&a)?;
        let _ = tx.read(&a)?;
        tx.write(&a, 5)
    });
    let t = stm.stats().totals;
    assert_eq!(t.reads, 2);
    assert_eq!(t.writes, 1);
    assert_eq!(t.commits, 1);
}

#[test]
fn read_only_commits_track_separately() {
    let stm = Stm::with_defaults();
    let a = TCell::new(3u64);
    for _ in 0..5 {
        let v = stm.run_ro(|tx| tx.read(&a));
        assert_eq!(v, 3);
    }
    stm.run(TxKind::ReadWrite, |tx| tx.write(&a, 4));
    let t = stm.stats().totals;
    assert_eq!(t.commits, 6);
    assert_eq!(t.ro_commits, 5);
}

#[test]
fn many_stm_instances_coexist_per_thread() {
    // Thread-local descriptor routing: two instances used alternately
    // from one thread must not interfere.
    let stm1 = Stm::with_defaults();
    let stm2 = Stm::new(StmConfig::default().with_locks_log2(8)).unwrap();
    let a = TCell::new(0u64);
    let b = TCell::new(0u64);
    for i in 0..10 {
        stm1.run(TxKind::ReadWrite, |tx| tx.write(&a, i));
        stm2.run(TxKind::ReadWrite, |tx| tx.write(&b, i * 2));
    }
    assert_eq!(a.read_direct(), 9);
    assert_eq!(b.read_direct(), 18);
    assert_eq!(stm1.stats().totals.commits, 10);
    assert_eq!(stm2.stats().totals.commits, 10);
}

#[test]
fn large_write_sets_commit_atomically() {
    both_strategies(|cfg| {
        let stm = Stm::new(cfg).unwrap();
        let arr = Arc::new(WordBlock::new(512));
        let threads = 3;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stm = stm.clone();
                let arr = Arc::clone(&arr);
                std::thread::spawn(move || {
                    for round in 0..50usize {
                        let val = t * 1_000_000 + round;
                        stm.run(TxKind::ReadWrite, |tx| {
                            for i in 0..512 {
                                unsafe { tx.store_word(arr.as_ptr().add(i), val) }?;
                            }
                            Ok(())
                        });
                        // Whole-array snapshot must be uniform.
                        stm.run(TxKind::ReadWrite, |tx| {
                            let first = unsafe { tx.load_word(arr.as_ptr()) }?;
                            for i in 1..512 {
                                let v = unsafe { tx.load_word(arr.as_ptr().add(i)) }?;
                                assert_eq!(v, first, "torn bulk write");
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
