//! Release-mode stress for the relaxed memory-ordering protocol
//! (DESIGN.md §3): concurrent writers and read-only readers hammer a
//! pair of stripes and the readers assert that no torn or dirty value
//! is ever observed.
//!
//! What this exercises, per strategy:
//!
//! * the l1/value/l2 seqlock re-check (sites R1/R3/F1/R4) against
//!   in-flight writers;
//! * write-through's dirty in-place stores (W2), undo restores (W6)
//!   and the abort-path incarnation bump (W5) — lock-order inversion
//!   between the two stripes forces mid-transaction aborts, so rolled-
//!   back values really do hit memory and must never be validated;
//! * write-back's commit-time publication (W3) and lock release (W4);
//! * the hierarchy counters' Release/Acquire edges (H1/H2) — the
//!   config enables a small hierarchical array.
//!
//! The invariant: each stripe-aligned word pair is only ever written
//! transactionally with both words equal, so a committed read-only
//! snapshot must observe `pair[0] == pair[1]`. A torn read (one word
//! old, one new), a dirty read (uncommitted write-through data), or a
//! lost undo all break the equality.
//!
//! These tests are `#[ignore]`d under debug builds: without optimization
//! the interleavings (and the cost model) they probe are meaningless,
//! and CI runs them in a dedicated `--release` step instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxKind};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

/// Words per stripe under `shifts = 1`.
const STRIPE_WORDS: usize = 2;
/// Stripe pairs the writers fight over.
const PAIRS: usize = 2;
/// Wall-clock per (strategy × round).
const ROUND_MS: u64 = 120;
/// Rounds per strategy within one test invocation.
const ROUNDS: usize = 3;

/// Base addresses of `PAIRS` stripe-aligned word pairs inside `block`.
///
/// `shifts = 1` maps `2^1` consecutive words to one lock, with stripe
/// boundaries at 16-byte-aligned addresses; the allocator only promises
/// word alignment, so the first fully-aligned pair may start at word 1.
fn stripe_pairs(block: &WordBlock) -> Vec<usize> {
    // Addresses as `usize` so the vector is Send (raw pointers are not);
    // workers cast back at the access site.
    let base = block.as_ptr() as usize;
    let first = if base.is_multiple_of(STRIPE_WORDS * 8) {
        0
    } else {
        1
    };
    (0..PAIRS)
        .map(|n| unsafe { block.as_ptr().add(first + n * STRIPE_WORDS) as usize })
        .collect()
}

fn stress_config(strategy: AccessStrategy) -> StmConfig {
    StmConfig::default()
        .with_strategy(strategy)
        .with_shifts(1)
        .with_hier_log2(2)
        .with_cm(CmPolicy::Backoff {
            base: 8,
            max_spins: 1 << 10,
        })
}

/// Writers keep every pair internally equal; readers assert they only
/// ever observe equal pairs. Returns (commits-ish lower bound on reader
/// snapshots, writer transactions) for a liveness sanity check.
fn hammer(strategy: AccessStrategy, writers: usize, readers: usize) -> (u64, u64) {
    let stm = Stm::new(stress_config(strategy)).unwrap();
    let block = WordBlock::new(STRIPE_WORDS * PAIRS + 2);
    let pairs = stripe_pairs(&block);
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..writers {
            let stm = stm.clone();
            let pairs = pairs.clone();
            let stop = &stop;
            let writes = &writes;
            scope.spawn(move || {
                let mut x = 0x9E37_79B9u64.wrapping_mul(w as u64 + 1) | 1;
                let mut local = 0u64;
                // Half the writers visit the pairs in reverse: the
                // lock-order inversion guarantees encounter-time
                // WriteLocked aborts, i.e. real rollbacks with
                // partially-written state under write-through. Hoisted
                // out of the hot loop so the loop stays allocation-free.
                let order: Vec<usize> = if w % 2 == 0 {
                    (0..PAIRS).collect()
                } else {
                    (0..PAIRS).rev().collect()
                };
                while !stop.load(Ordering::Relaxed) {
                    // xorshift value; distinct per write so stale data
                    // is distinguishable from fresh.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = x as usize;
                    stm.run(TxKind::ReadWrite, |tx| {
                        for &p in &order {
                            let base = pairs[p] as *mut usize;
                            unsafe {
                                tx.store_word(base, v)?;
                                tx.store_word(base.add(1), v)?;
                            }
                        }
                        Ok(())
                    });
                    local += 1;
                }
                writes.fetch_add(local, Ordering::Relaxed);
            });
        }
        for _ in 0..readers {
            let stm = stm.clone();
            let pairs = pairs.clone();
            let stop = &stop;
            let reads = &reads;
            scope.spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let observed = stm.run_ro(|tx| {
                        let mut out = [(0usize, 0usize); PAIRS];
                        for (p, slot) in out.iter_mut().enumerate() {
                            let base = pairs[p] as *const usize;
                            let a = unsafe { tx.load_word(base) }?;
                            let b = unsafe { tx.load_word(base.add(1)) }?;
                            *slot = (a, b);
                        }
                        Ok(out)
                    });
                    for (p, &(a, b)) in observed.iter().enumerate() {
                        assert_eq!(
                            a, b,
                            "torn/dirty read in pair {p}: {a:#x} != {b:#x} \
                             ({strategy:?})"
                        );
                    }
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        let deadline = Instant::now() + Duration::from_millis(ROUND_MS);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Teardown sanity: the committed state itself is a consistent pair.
    for (p, &base) in pairs.iter().enumerate() {
        let ptr = base as *const usize;
        let a = unsafe { core::ptr::read(ptr) };
        let b = unsafe { core::ptr::read(ptr.add(1)) };
        assert_eq!(a, b, "final state torn in pair {p} ({strategy:?})");
    }
    (
        reads.load(Ordering::Relaxed),
        writes.load(Ordering::Relaxed),
    )
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "ordering stress is meaningful only under --release; CI runs it in a dedicated release step"
)]
fn write_back_publication_is_never_torn() {
    for _ in 0..ROUNDS {
        let (reads, writes) = hammer(AccessStrategy::WriteBack, 3, 3);
        assert!(reads > 0, "readers made no progress");
        assert!(writes > 0, "writers made no progress");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "ordering stress is meaningful only under --release; CI runs it in a dedicated release step"
)]
fn write_through_undo_and_incarnation_are_never_observed_dirty() {
    for _ in 0..ROUNDS {
        let (reads, writes) = hammer(AccessStrategy::WriteThrough, 3, 3);
        assert!(reads > 0, "readers made no progress");
        assert!(writes > 0, "writers made no progress");
    }
}
