//! Recording across renumbering boundaries, at the core-API level:
//! `reconfigure` inside a recorded window is supported (epoch-tagged
//! `Begin`s, per-epoch checking), while a clock roll-over poisons the
//! sink and the safe drain fails loudly with a dedicated error instead
//! of yielding an unsound history.
#![cfg(feature = "record")]

use stm_api::{TmTx, TxKind};
use stm_check::{check_history, CheckOpts, RecordingError, TraceSink};
use tinystm::{Stm, StmConfig};

#[test]
fn reconfigure_inside_recorded_window_segments_epochs() {
    let stm = Stm::new(StmConfig::default()).unwrap();
    let sink = TraceSink::new();
    stm.attach_trace(&sink);
    let block = stm_api::mem::WordBlock::new(4);
    let write_all = |v: usize| {
        stm.run(TxKind::ReadWrite, |tx| {
            for i in 0..4 {
                unsafe { tx.store_word(block.as_ptr().add(i), v + i) }?;
            }
            Ok(())
        });
    };
    let read_all = || {
        stm.run_ro(|tx| {
            let mut acc = 0;
            for i in 0..4 {
                acc += unsafe { tx.load_word(block.as_ptr().add(i)) }?;
            }
            Ok(acc)
        })
    };
    write_all(10);
    assert_eq!(read_all(), 10 + 11 + 12 + 13);
    assert_eq!(stm.record_epoch(), 0);
    // Renumber stripes twice mid-window: different mask + shift, so
    // epoch-0 stripe IDs genuinely alias other addresses afterwards.
    stm.reconfigure(StmConfig::default().with_locks_log2(10).with_shifts(2))
        .unwrap();
    write_all(20);
    stm.reconfigure(StmConfig::default()).unwrap();
    assert_eq!(stm.record_epoch(), 2);
    write_all(30);
    assert_eq!(read_all(), 30 + 31 + 32 + 33);
    stm.detach_trace();

    let history = sink.drain_history().expect("reconfigure is recordable");
    assert_eq!(history.epochs(), vec![0, 1, 2]);
    let report = check_history(&history, &CheckOpts::default());
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.epochs, 3);
    assert_eq!(stm.stats().reconfigurations, 2);
}

#[test]
fn clock_rollover_inside_recorded_window_fails_loudly() {
    // A tiny roll-over threshold: the window is guaranteed to cross it.
    let stm = Stm::new(StmConfig::default().with_max_clock(24)).unwrap();
    let sink = TraceSink::new();
    stm.attach_trace(&sink);
    let block = stm_api::mem::WordBlock::new(1);
    for i in 0..64 {
        stm.run(TxKind::ReadWrite, |tx| unsafe {
            tx.store_word(block.as_ptr(), i)
        });
    }
    assert!(
        stm.stats().rollovers >= 1,
        "window must cross the roll-over"
    );
    stm.detach_trace();
    match sink.drain_history() {
        Err(RecordingError::ClockRollover { rollovers }) => assert!(rollovers >= 1),
        other => panic!("roll-over must poison the recording, got {other:?}"),
    }
}

#[test]
fn rollover_without_recording_stays_silent() {
    // The poison only applies to an attached sink: the same roll-over
    // with no recording in flight is business as usual.
    let stm = Stm::new(StmConfig::default().with_max_clock(24)).unwrap();
    let block = stm_api::mem::WordBlock::new(1);
    for i in 0..64 {
        stm.run(TxKind::ReadWrite, |tx| unsafe {
            tx.store_word(block.as_ptr(), i)
        });
    }
    assert!(stm.stats().rollovers >= 1);
    assert_eq!(unsafe { *block.as_ptr() }, 63);
}
