//! Edge-case tests for the TinySTM core: incarnation overflow,
//! read-only extension failures, commit validation skipping, limbo
//! epochs, and configuration error paths.

use std::sync::Arc;
use stm_api::mem::WordBlock;
use stm_api::{AbortReason, TmTx, TxKind};
use tinystm::lockword::MAX_INCARNATION;
use tinystm::{AccessStrategy, CmPolicy, ConfigError, Stm, StmConfig, TCell, TxExt};

#[test]
fn write_through_incarnation_overflow_gets_fresh_version() {
    // Abort a write-through transaction on the same stripe more times
    // than the 3-bit incarnation can count; the overflow path must take
    // a fresh version from the clock and the cell must stay correct.
    let stm = Stm::new(StmConfig::default().with_strategy(AccessStrategy::WriteThrough)).unwrap();
    let cell = TCell::new(7u64);
    let clock_before = stm.clock_now();
    for _ in 0..(MAX_INCARNATION + 3) {
        let mut first = true;
        stm.run(TxKind::ReadWrite, |tx| {
            tx.write(&cell, 999)?;
            if std::mem::take(&mut first) {
                tx.retry()?; // undo + release with bumped incarnation
            }
            // Second attempt: immediately retry again? No — commit so
            // the next loop iteration starts from a clean value.
            Ok(())
        });
        // Reset the value for the next round.
        stm.run(TxKind::ReadWrite, |tx| tx.write(&cell, 7));
    }
    // The incarnation overflowed at least once: the clock must have been
    // force-bumped beyond just the commits (2 commits per round).
    let commits = stm.stats().totals.commits;
    assert!(
        stm.clock_now() > clock_before + commits / 2,
        "no evidence of forced version refresh (clock {}, commits {commits})",
        stm.clock_now()
    );
    assert_eq!(cell.read_direct(), 7);
}

#[test]
fn consecutive_aborts_on_one_stripe_write_through() {
    // Same stripe, alternating abort/commit; memory must never leak a
    // dirty value to a concurrent reader.
    let stm = Stm::new(
        StmConfig::default()
            .with_strategy(AccessStrategy::WriteThrough)
            .with_cm(CmPolicy::Immediate),
    )
    .unwrap();
    let cell = Arc::new(TCell::new(0u64));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let (stm, cell, stop) = (stm.clone(), cell.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let v = stm.run_ro(|tx| tx.read(&cell));
                assert_ne!(v, 999, "dirty write-through value escaped");
            }
        })
    };
    for i in 0..2_000u64 {
        let mut first = true;
        stm.run(TxKind::ReadWrite, |tx| {
            tx.write(&cell, 999)?; // direct write, then maybe abort
            if std::mem::take(&mut first) {
                tx.retry()?;
            }
            tx.write(&cell, i % 10)
        });
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    reader.join().unwrap();
    assert!(cell.read_direct() < 10);
}

#[test]
fn read_only_stale_read_aborts_with_extend_failed() {
    // A read-only transaction keeps no read set, so a version newer
    // than its snapshot cannot be tolerated: ExtendFailed, then retry
    // succeeds with a fresh snapshot.
    let stm = Stm::with_defaults();
    let x = Arc::new(TCell::new(1u64));
    let y = Arc::new(TCell::new(1u64));
    let b1 = Arc::new(std::sync::Barrier::new(2));
    let b2 = Arc::new(std::sync::Barrier::new(2));
    let writer = {
        let (stm, y, b1, b2) = (stm.clone(), y.clone(), b1.clone(), b2.clone());
        std::thread::spawn(move || {
            b1.wait();
            stm.run(TxKind::ReadWrite, |tx| tx.write(&y, 2));
            b2.wait();
        })
    };
    let mut first = true;
    let before = stm.stats().totals;
    let sum = stm.run_ro(|tx| {
        let vx = tx.read(&x)?;
        if std::mem::take(&mut first) {
            b1.wait();
            b2.wait();
        }
        let vy = tx.read(&y)?;
        Ok(vx + vy)
    });
    writer.join().unwrap();
    assert_eq!(sum, 3, "retry must observe the committed write");
    let d = stm.stats().totals.since(&before);
    assert_eq!(
        d.aborts_by_reason[AbortReason::ExtendFailed.index()],
        1,
        "expected exactly one RO extension failure"
    );
    assert_eq!(d.extensions, 0, "read-only must never extend");
}

#[test]
fn update_transaction_extends_instead_of_aborting() {
    // The same interleaving with an update transaction extends.
    let stm = Stm::with_defaults();
    let x = Arc::new(TCell::new(1u64));
    let y = Arc::new(TCell::new(1u64));
    let b1 = Arc::new(std::sync::Barrier::new(2));
    let b2 = Arc::new(std::sync::Barrier::new(2));
    let writer = {
        let (stm, y, b1, b2) = (stm.clone(), y.clone(), b1.clone(), b2.clone());
        std::thread::spawn(move || {
            b1.wait();
            stm.run(TxKind::ReadWrite, |tx| tx.write(&y, 2));
            b2.wait();
        })
    };
    let mut first = true;
    let before = stm.stats().totals;
    let sum = stm.run(TxKind::ReadWrite, |tx| {
        let vx = tx.read(&x)?;
        if std::mem::take(&mut first) {
            b1.wait();
            b2.wait();
        }
        let vy = tx.read(&y)?;
        tx.write(&x, vx)?; // stay an update transaction
        Ok(vx + vy)
    });
    writer.join().unwrap();
    assert_eq!(sum, 3);
    let d = stm.stats().totals.since(&before);
    assert!(d.extensions >= 1, "update tx should have extended");
    assert_eq!(d.aborts, 0, "no abort needed: x was still valid");
}

#[test]
fn commit_validation_skipped_when_clock_adjacent() {
    // Serial execution: every commit has wv == end + 1 and skips
    // validation entirely.
    let stm = Stm::with_defaults();
    let cell = TCell::new(0u64);
    for i in 0..50 {
        stm.run(TxKind::ReadWrite, |tx| tx.write(&cell, i));
    }
    let t = stm.stats().totals;
    assert_eq!(t.commit_validation_skips, 50);
    assert_eq!(t.validations, 0);
}

#[test]
fn snapshot_accessors_make_sense() {
    let stm = Stm::with_defaults();
    let cell = TCell::new(0u64);
    stm.run(TxKind::ReadWrite, |tx| tx.write(&cell, 1));
    stm.run(TxKind::ReadWrite, |tx| {
        assert!(tx.snapshot_start() >= 1, "clock advanced by prior commit");
        assert_eq!(tx.snapshot_start(), tx.snapshot_end());
        assert_eq!(tx.read_set_len(), 0);
        assert_eq!(tx.write_set_stripes(), 0);
        let _ = tx.read(&cell)?;
        assert_eq!(tx.read_set_len(), 1);
        tx.write(&cell, 2)?;
        assert_eq!(tx.write_set_stripes(), 1);
        Ok(())
    });
}

#[test]
fn config_error_paths_via_stm_new() {
    assert!(matches!(
        Stm::new(StmConfig::default().with_locks_log2(0)),
        Err(ConfigError::LocksOutOfRange(0))
    ));
    assert!(matches!(
        Stm::new(StmConfig::default().with_locks_log2(27)),
        Err(ConfigError::LocksOutOfRange(27))
    ));
    assert!(matches!(
        Stm::new(StmConfig::default().with_shifts(17)),
        Err(ConfigError::ShiftsOutOfRange(17))
    ));
    assert!(matches!(
        Stm::new(StmConfig::default().with_max_clock(1)),
        Err(ConfigError::MaxClockTooSmall(1))
    ));
}

#[test]
fn reconfigure_rejects_invalid_configs_without_disruption() {
    let stm = Stm::with_defaults();
    let cell = TCell::new(5u64);
    assert!(stm
        .reconfigure(StmConfig::default().with_locks_log2(0))
        .is_err());
    // STM still fully functional.
    stm.run(TxKind::ReadWrite, |tx| tx.modify(&cell, |v| v + 1));
    assert_eq!(cell.read_direct(), 6);
    assert_eq!(stm.stats().reconfigurations, 0);
}

#[test]
fn strategy_switch_via_reconfigure() {
    // Reconfiguration can even switch write-back <-> write-through
    // (versions reset behind the fence).
    let stm = Stm::new(StmConfig::default()).unwrap();
    let cell = TCell::new(1u64);
    stm.run(TxKind::ReadWrite, |tx| tx.write(&cell, 2));
    stm.reconfigure(stm.config().with_strategy(AccessStrategy::WriteThrough))
        .unwrap();
    stm.run(TxKind::ReadWrite, |tx| tx.write(&cell, 3));
    assert_eq!(cell.read_direct(), 3);
    use stm_api::TmHandle;
    assert_eq!(stm.backend_name(), "tinystm-wt");
}

#[test]
fn limbo_respects_active_snapshots() {
    // A long-running reader pins the epoch: frees committed after its
    // start must not be reclaimed while it runs.
    let stm = Stm::with_defaults();
    let holder = Arc::new(TCell::new(0usize));
    // Allocate and publish.
    {
        let holder = &holder;
        stm.run(TxKind::ReadWrite, |tx| {
            let p = tx.malloc(2)?;
            tx.write(holder, p as usize)
        });
    }
    let p = holder.read_direct() as *mut usize;

    let gate_in = Arc::new(std::sync::Barrier::new(2));
    let gate_out = Arc::new(std::sync::Barrier::new(2));
    let reader = {
        let (stm, gi, go) = (stm.clone(), gate_in.clone(), gate_out.clone());
        let holder = Arc::clone(&holder);
        std::thread::spawn(move || {
            let mut first = true;
            stm.run(TxKind::ReadWrite, |tx| {
                let _ = tx.read(&holder)?;
                if std::mem::take(&mut first) {
                    gi.wait(); // freeing tx commits now
                    go.wait();
                }
                tx.write(&holder, 0)
            });
        })
    };
    gate_in.wait();
    // Free the block while the reader transaction is still live.
    stm.run(TxKind::ReadWrite, |tx| unsafe { tx.free(p, 2) });
    assert_eq!(stm.stats().limbo_pending, 1);
    // Reclamation must refuse: the reader started before the free.
    assert_eq!(stm.reclaim_now(), 0, "reclaimed under an active reader");
    gate_out.wait();
    reader.join().unwrap();
    // Now it can go.
    assert_eq!(stm.reclaim_now(), 1);
}

#[test]
fn backend_names() {
    use stm_api::TmHandle;
    let wb = Stm::new(StmConfig::default()).unwrap();
    assert_eq!(wb.backend_name(), "tinystm-wb");
    let wt = Stm::new(StmConfig::default().with_strategy(AccessStrategy::WriteThrough)).unwrap();
    assert_eq!(wt.backend_name(), "tinystm-wt");
}

#[test]
fn word_blocks_shared_between_many_cells_and_stripes() {
    // Lots of independent cells hammered through one tiny lock array:
    // false sharing galore, still correct.
    let stm = Stm::new(StmConfig::default().with_locks_log2(1)).unwrap(); // 2 locks!
    let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..64).map(|_| TCell::new(0)).collect());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let (stm, cells) = (stm.clone(), cells.clone());
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    let idx = ((t * 500 + i) % 64) as usize;
                    stm.run(TxKind::ReadWrite, |tx| {
                        let v = tx.read(&cells[idx])?;
                        tx.write(&cells[idx], v + 1)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = (0..64).map(|i| cells[i].read_direct()).sum();
    assert_eq!(total, 2_000);
}

#[test]
fn huge_transaction_many_stripes() {
    // One transaction touching more stripes than the lock array has
    // entries (wrap-around in the hash).
    let stm = Stm::new(StmConfig::default().with_locks_log2(4)).unwrap();
    let block = WordBlock::new(256);
    stm.run(TxKind::ReadWrite, |tx| {
        for i in 0..256 {
            unsafe { tx.store_word(block.as_ptr().add(i), i) }?;
        }
        Ok(())
    });
    stm.run(TxKind::ReadOnly, |tx| {
        for i in 0..256 {
            assert_eq!(unsafe { tx.load_word(block.as_ptr().add(i)) }?, i);
        }
        Ok(())
    });
}

#[test]
fn stats_display_is_readable() {
    let stm = Stm::with_defaults();
    let c = TCell::new(0u64);
    stm.run(TxKind::ReadWrite, |tx| {
        let _ = tx.read(&c)?;
        tx.write(&c, 1)
    });
    let mut first = true;
    stm.run(TxKind::ReadWrite, |tx| {
        if std::mem::take(&mut first) {
            tx.retry()?;
        }
        tx.write(&c, 2)
    });
    let text = stm.stats().to_string();
    assert!(text.contains("commits: 2"), "got: {text}");
    assert!(text.contains("explicit=1"), "got: {text}");
    assert!(text.contains("reconfigurations: 0"), "got: {text}");
}

#[test]
fn validation_skip_fraction_math() {
    use tinystm::StatsSnapshot;
    let mut s = StatsSnapshot::default();
    assert_eq!(s.validation_skip_fraction(), 0.0);
    s.val_locks_processed = 25;
    s.val_locks_skipped = 75;
    assert!((s.validation_skip_fraction() - 0.75).abs() < 1e-12);
}

#[test]
fn wasted_reads_accounting() {
    // An aborted attempt's reads land in wasted_reads; committed reads
    // do not.
    let stm = Stm::with_defaults();
    let c = TCell::new(0u64);
    let mut first = true;
    stm.run(TxKind::ReadWrite, |tx| {
        for _ in 0..10 {
            let _ = tx.read(&c)?;
        }
        if std::mem::take(&mut first) {
            tx.retry()?;
        }
        tx.write(&c, 1)
    });
    let t = stm.stats().totals;
    assert_eq!(t.reads, 20, "10 reads per attempt, 2 attempts");
    assert_eq!(t.wasted_reads, 10, "only the aborted attempt's reads");
}

#[test]
fn panicking_transaction_body_does_not_wedge_the_fence() {
    // The bench harness tolerates panicking workers (catch_unwind), so
    // an unwind through `Stm::run` must release the quiesce gate and
    // the oldest-reader marker; otherwise the next fence (clock
    // roll-over or reconfiguration) would spin forever.
    let stm = Stm::with_defaults();
    let c = TCell::new(0u64);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run(TxKind::ReadWrite, |tx| {
            let _ = tx.read(&c)?;
            panic!("intentional test panic: tx body");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert!(caught.is_err());
    // Reconfiguration runs a full quiesce fence: it must complete.
    stm.reconfigure(StmConfig::default().with_locks_log2(10))
        .expect("fence completed after a panicked attempt");
    // And the instance still commits transactions afterwards.
    stm.run(TxKind::ReadWrite, |tx| tx.write(&c, 9));
    let seen = stm.run(TxKind::ReadOnly, |tx| tx.read(&c));
    assert_eq!(seen, 9);
}
