//! Smoke test per contention-management policy (ROADMAP "CM policy
//! coverage", first slice): every policy must drive a contended
//! counter workload to the correct total — the policies differ in
//! *when* they retry, never in *whether* the retry preserves atomicity.

use stm_api::TxKind;
use tinystm::{CmPolicy, Stm, StmConfig, TCell, TxExt};

const THREADS: usize = 4;
const INCREMENTS: i64 = 250;

fn hammer_counter(policy: CmPolicy) {
    let stm = Stm::new(StmConfig::default().with_cm(policy)).expect("valid config");
    let counter = TCell::new(0i64);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let stm = stm.clone();
            let counter = &counter;
            scope.spawn(move || {
                for _ in 0..INCREMENTS {
                    stm.run(TxKind::ReadWrite, |tx| {
                        let v = tx.read(counter)?;
                        tx.write(counter, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(
        counter.read_direct(),
        THREADS as i64 * INCREMENTS,
        "{policy:?} lost increments"
    );
    let stats = stm.stats();
    assert_eq!(stats.totals.commits, THREADS as u64 * INCREMENTS as u64);
}

#[test]
fn immediate_policy_is_correct_under_contention() {
    hammer_counter(CmPolicy::Immediate);
}

#[test]
fn suicide_policy_is_correct_under_contention() {
    hammer_counter(CmPolicy::Suicide);
}

#[test]
fn delay_policy_is_correct_under_contention() {
    hammer_counter(CmPolicy::Delay);
}

#[test]
fn backoff_policy_is_correct_under_contention() {
    hammer_counter(CmPolicy::Backoff {
        base: 16,
        max_spins: 1 << 12,
    });
}

#[test]
fn delay_policy_progresses_single_threaded() {
    // Degenerate case: nothing to wait for — Delay must not spin on a
    // stale or absent lock index.
    let stm = Stm::new(StmConfig::default().with_cm(CmPolicy::Delay)).expect("valid config");
    let cell = TCell::new(7i64);
    for _ in 0..10 {
        stm.run(TxKind::ReadWrite, |tx| {
            let v = tx.read(&cell)?;
            tx.write(&cell, v + 1)
        });
    }
    assert_eq!(cell.read_direct(), 17);
}
