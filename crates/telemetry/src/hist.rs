//! Concurrent bounded histogram for hot-path recording.
//!
//! [`AtomicHist`] is the multi-writer sibling of `stm-perf`'s
//! single-threaded `LatencyHist`: same log-linear bucket map (see
//! [`crate::buckets`]), but every cell is an `AtomicU64` updated with
//! Relaxed increments, so any number of transaction threads can record
//! into one instance without locks or cross-thread ordering. A
//! [`snapshot`](AtomicHist::snapshot) is *not* atomic across cells —
//! counters may be mid-update — which is fine for monitoring: each cell
//! is individually consistent and the total error is bounded by the
//! in-flight increments at snapshot time.

use crate::buckets::{bucket_width, index_for, lower_bound, BUCKETS};
use core::sync::atomic::{AtomicU64, Ordering};

/// Lock-free fixed-footprint histogram (Relaxed atomics throughout).
#[derive(Debug)]
pub struct AtomicHist {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHist {
    fn default() -> AtomicHist {
        AtomicHist::new()
    }
}

impl AtomicHist {
    /// An empty histogram (~4 KiB of buckets).
    pub fn new() -> AtomicHist {
        AtomicHist {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free; Relaxed ordering only.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[index_for(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-data copy for reporting (per-cell consistent, see module
    /// docs for the cross-cell caveat).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable point-in-time copy of an [`AtomicHist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values (wraps only after ~584 years of ns).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `pct` (0–100]. Bucket midpoints clamped to
    /// the observed `[min, max]`; the top rank returns the exact max.
    pub fn value_at_percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= rank {
                let mid = lower_bound(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bucket-wise sum (for merging per-shard histograms).
    pub fn merged(&self, other: &HistSnapshot) -> HistSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(a, b)| a + b)
            .collect();
        HistSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_hist_is_all_zero() {
        let h = AtomicHist::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.value_at_percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_dominates_every_percentile() {
        let h = AtomicHist::new();
        h.record(777);
        let s = h.snapshot();
        for pct in [1.0, 50.0, 99.0, 100.0] {
            let v = s.value_at_percentile(pct);
            assert_eq!(v, 777, "p{pct} = {v}");
        }
        assert_eq!(s.min, 777);
        assert_eq!(s.max, 777);
    }

    #[test]
    fn extreme_values_saturate_the_bucket_bounds_without_panic() {
        // Satellite: saturation at bucket bounds. 0, 1, u64::MAX and the
        // top bucket's lower bound must all land inside the table.
        let h = AtomicHist::new();
        for v in [0, 1, u64::MAX, lower_bound(BUCKETS - 1), u64::MAX - 1] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        // Top rank reports the exact max even though the bucket is huge.
        assert_eq!(s.value_at_percentile(100.0), u64::MAX);
    }

    #[test]
    fn percentiles_are_clamped_to_observed_range() {
        let h = AtomicHist::new();
        for v in 1000..1100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for pct in [10.0, 50.0, 90.0, 99.0] {
            let v = s.value_at_percentile(pct);
            assert!((1000..=1099).contains(&v), "p{pct} = {v} escapes range");
        }
    }

    #[test]
    fn merged_adds_counts_and_widens_range() {
        let a = AtomicHist::new();
        a.record(10);
        let b = AtomicHist::new();
        b.record(1_000_000);
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.min, 10);
        assert_eq!(m.max, 1_000_000);
        assert_eq!(m.sum, 1_000_010);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        // Satellite: concurrent increment correctness. Run hard enough
        // that release mode exercises real interleavings: N threads ×
        // M records each, all into one histogram; the totals must be
        // exact (fetch_add never drops increments, Relaxed or not).
        let h = Arc::new(AtomicHist::new());
        let threads = 8;
        let per_thread = if cfg!(debug_assertions) {
            20_000
        } else {
            200_000
        };
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Spread across many buckets, deterministic sum.
                        h.record(((t * per_thread + i) % 4096) as u64);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, (threads * per_thread) as u64);
        assert_eq!(s.value_at_percentile(100.0), s.max);
        assert!(s.max < 4096);
    }
}
