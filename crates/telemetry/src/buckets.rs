//! The shared log-linear bucket map used by every histogram in the
//! workspace (`stm-perf`'s single-threaded `LatencyHist` and this
//! crate's concurrent [`crate::AtomicHist`]).
//!
//! Values are bucketed HdrHistogram-style: exact below 2^SUB_BITS, then
//! `SUBS` sub-buckets per power of two, giving a bounded relative error
//! of `1/SUBS` (12.5%) across the whole `u64` range with a fixed,
//! smallish table. Keeping the map in one place guarantees the offline
//! perf schema and the live telemetry exposition agree on every bucket
//! boundary, so quantiles from the two paths are comparable.

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Total bucket count for the full `u64` range.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) * (1 << SUB_BITS)) + (1 << SUB_BITS);

/// Bucket index for a value (total over `u64`, monotone).
#[inline]
pub fn index_for(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let m = 63 - v.leading_zeros();
        let sub = (v >> (m - SUB_BITS)) & (SUBS - 1);
        (((m - SUB_BITS) as u64 * SUBS) + SUBS + sub) as usize
    }
}

/// Smallest value mapping to bucket `idx`.
#[inline]
pub fn lower_bound(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        idx
    } else {
        let block = idx >> SUB_BITS;
        let m = block as u32 - 1 + SUB_BITS;
        let sub = idx & (SUBS - 1);
        (SUBS + sub) << (m - SUB_BITS)
    }
}

/// Number of distinct values mapping to bucket `idx`.
#[inline]
pub fn bucket_width(idx: usize) -> u64 {
    if (idx as u64) < SUBS {
        1
    } else {
        let block = (idx as u64) >> SUB_BITS;
        let m = block as u32 - 1 + SUB_BITS;
        1u64 << (m - SUB_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_map_is_total_and_monotone() {
        let mut probes: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .chain([0, u64::MAX - 1, u64::MAX])
            .collect();
        probes.sort_unstable();
        probes.dedup();
        let mut prev = 0usize;
        for v in probes {
            let idx = index_for(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= prev, "non-monotone at {v}");
            prev = idx;
        }
    }

    #[test]
    fn lower_bound_inverts_index() {
        for idx in 0..BUCKETS {
            let lb = lower_bound(idx);
            assert_eq!(
                index_for(lb),
                idx,
                "lower_bound({idx}) = {lb} maps back wrong"
            );
            // The last value of the bucket still maps to it.
            let last = lb + (bucket_width(idx) - 1);
            assert_eq!(index_for(last), idx, "top of bucket {idx} escapes");
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUBS {
            assert_eq!(lower_bound(index_for(v)), v);
            assert_eq!(bucket_width(index_for(v)), 1);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound ≤ 1/SUBS for all non-exact buckets.
        for idx in SUBS as usize..BUCKETS {
            let lb = lower_bound(idx);
            let w = bucket_width(idx);
            assert!(
                (w as f64) / (lb as f64) <= 1.0 / SUBS as f64 + 1e-12,
                "bucket {idx}: width {w} too wide for lower bound {lb}"
            );
        }
    }
}
