//! The pull-model metrics plane: sources project their existing Relaxed
//! counters into a [`MetricsFrame`] on demand, plus the one set of
//! *push* instruments ([`TxMetrics`]) the backends record into on the
//! transaction hot path.
//!
//! ## Why pull
//!
//! The backends already keep per-thread Relaxed counters (commits,
//! aborts by reason, clock conflicts) and the durable engine keeps
//! fault counters — duplicating those into a second registry would put
//! a second increment on every hot path for nothing. Instead a
//! [`MetricsSource`] *reads* them at scrape time. The only genuinely
//! new hot-path instruments are the latency/retry histograms in
//! [`TxMetrics`], and those are gated on one Relaxed `bool` load so a
//! run that never enables them pays a predicted-not-taken branch.
//!
//! ## Memory layout
//!
//! One [`TxMetrics`] per backend instance (per shard under the engine):
//! the `enabled`/`tag` word shares a line, and each `AtomicHist` is a
//! contiguous ~4 KiB bucket array written by all threads of that shard
//! with Relaxed `fetch_add`. Cross-shard instances never share lines
//! (each sits in its own backend's allocation). Registry-owned shared
//! tallies use [`crate::PaddedCounter`] (128-byte aligned).

use crate::hist::{AtomicHist, HistSnapshot};
use core::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use parking_lot::Mutex;
use std::sync::Arc;

/// Prometheus-style metric kinds (histograms expose as summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone cumulative count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Quantile summary backed by a [`HistSnapshot`].
    Summary,
}

impl MetricKind {
    /// The `# TYPE` keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// One sample's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram snapshot, exposed as quantiles + sum + count.
    Summary(HistSnapshot),
}

/// One labelled sample within a family.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs, already in exposition order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A named metric family (one `# TYPE` line, many samples).
#[derive(Debug, Clone)]
pub struct Family {
    /// Family name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// The kind, shared by every sample.
    pub kind: MetricKind,
    /// Samples, in registration order.
    pub samples: Vec<Sample>,
}

/// A collected frame: families in first-touch order, samples appended
/// as sources report them. Families are merged by name so two shards
/// reporting `stm_commits_total` produce one family with two samples —
/// which is exactly what the exposition linter demands.
#[derive(Debug, Default)]
pub struct MetricsFrame {
    families: Vec<Family>,
}

impl MetricsFrame {
    /// An empty frame.
    pub fn new() -> MetricsFrame {
        MetricsFrame::default()
    }

    /// The collected families.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert_eq!(
                self.families[i].kind, kind,
                "metric family {name} reported with two kinds"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) {
        let labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.family_mut(name, help, kind)
            .samples
            .push(Sample { labels, value });
    }

    /// Report a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            labels,
            MetricValue::Counter(v),
        );
    }

    /// Report a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.push(name, help, MetricKind::Gauge, labels, MetricValue::Gauge(v));
    }

    /// Report a histogram snapshot as a summary sample.
    pub fn summary(&mut self, name: &str, help: &str, labels: &[(&str, &str)], snap: HistSnapshot) {
        self.push(
            name,
            help,
            MetricKind::Summary,
            labels,
            MetricValue::Summary(snap),
        );
    }
}

/// Project a backend's commit/abort/clock counters into `frame` under
/// `labels`, using the shared family vocabulary every backend emits
/// (`stm_commits_total`, `stm_aborts_total{reason=…}`,
/// `stm_clock_conflicts_total`, `stm_rollovers_total`,
/// `stm_reconfigurations_total`). Keeping this in one place guarantees
/// tinystm, TL2, and the sharded engine agree on names and label
/// shapes, which the exposition linter then holds them to.
pub fn collect_tx_counters(
    frame: &mut MetricsFrame,
    labels: &[(&str, &str)],
    stats: &stm_api::stats::BasicStats,
    rollovers: u64,
    reconfigurations: u64,
) {
    frame.counter(
        "stm_commits_total",
        "Committed transactions.",
        labels,
        stats.commits,
    );
    for reason in stm_api::AbortReason::ALL {
        let n = stats.aborts_by_reason[reason.index()];
        if n == 0 {
            continue;
        }
        let mut with_reason: Vec<(&str, &str)> = labels.to_vec();
        with_reason.push(("reason", reason.label()));
        frame.counter(
            "stm_aborts_total",
            "Aborted transaction attempts by reason.",
            &with_reason,
            n,
        );
    }
    frame.counter(
        "stm_clock_conflicts_total",
        "Foreign commit timestamps consumed between snapshot and commit.",
        labels,
        stats.clock_conflicts,
    );
    frame.counter(
        "stm_rollovers_total",
        "Clock roll-over fences performed.",
        labels,
        rollovers,
    );
    frame.counter(
        "stm_reconfigurations_total",
        "Dynamic reconfigurations performed.",
        labels,
        reconfigurations,
    );
}

/// Anything that can project metrics into a frame at scrape time.
pub trait MetricsSource {
    /// Append this source's families/samples to `frame`.
    fn collect(&self, frame: &mut MetricsFrame);
}

/// A scrape root: the set of sources one exposition covers.
#[derive(Default)]
pub struct Registry {
    sources: Mutex<Vec<Arc<dyn MetricsSource + Send + Sync>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add a source (scraped in registration order).
    pub fn register(&self, source: Arc<dyn MetricsSource + Send + Sync>) {
        self.sources.lock().push(source);
    }

    /// Scrape every source into one frame.
    pub fn collect(&self) -> MetricsFrame {
        let mut frame = MetricsFrame::new();
        for source in self.sources.lock().iter() {
            source.collect(&mut frame);
        }
        frame
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("sources", &self.sources.lock().len())
            .finish()
    }
}

/// Tag value meaning "not running under the sharded engine".
pub const UNTAGGED: u32 = u32::MAX;

/// Per-backend-instance hot-path instruments: commit latency and
/// retries-per-commit histograms, runtime-gated.
///
/// Embedded in each backend's shared inner state. Disabled (the
/// default) costs one Relaxed load + untaken branch per transaction;
/// the perf gate runs with exactly that configuration, which is how
/// "telemetry compiled in by default" stays free.
#[derive(Debug)]
pub struct TxMetrics {
    enabled: AtomicBool,
    tag: AtomicU32,
    commit_latency_ns: AtomicHist,
    commit_retries: AtomicHist,
}

impl Default for TxMetrics {
    fn default() -> TxMetrics {
        TxMetrics::new()
    }
}

impl TxMetrics {
    /// Fresh, disabled, untagged instruments.
    pub fn new() -> TxMetrics {
        TxMetrics {
            enabled: AtomicBool::new(false),
            tag: AtomicU32::new(UNTAGGED),
            commit_latency_ns: AtomicHist::new(),
            commit_retries: AtomicHist::new(),
        }
    }

    /// Turn hot-path recording on or off (Relaxed; takes effect at each
    /// transaction's next begin).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether transactions should time themselves right now.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the instance tag (shard index under the engine).
    pub fn set_tag(&self, tag: u32) {
        self.tag.store(tag, Ordering::Relaxed);
    }

    /// The instance tag ([`UNTAGGED`] outside the engine).
    #[inline]
    pub fn tag(&self) -> u32 {
        self.tag.load(Ordering::Relaxed)
    }

    /// Record one committed transaction: wall latency of the whole
    /// `run` call (including retries) and how many aborted attempts it
    /// took.
    #[inline]
    pub fn record_commit(&self, latency_ns: u64, retries: u64) {
        self.commit_latency_ns.record(latency_ns);
        self.commit_retries.record(retries);
    }

    /// Append this instance's summaries to a frame under `labels`.
    /// Empty histograms are skipped (a disabled instance adds nothing).
    pub fn collect_into(&self, frame: &mut MetricsFrame, labels: &[(&str, &str)]) {
        if self.commit_latency_ns.count() == 0 {
            return;
        }
        frame.summary(
            "stm_commit_latency_ns",
            "Wall latency of committed transactions, begin-to-commit including retries.",
            labels,
            self.commit_latency_ns.snapshot(),
        );
        frame.summary(
            "stm_commit_retries",
            "Aborted attempts per committed transaction.",
            labels,
            self.commit_retries.snapshot(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_merges_families_by_name() {
        let mut f = MetricsFrame::new();
        f.counter("stm_commits_total", "h", &[("shard", "0")], 1);
        f.counter("stm_commits_total", "h", &[("shard", "1")], 2);
        f.gauge("stm_up", "h", &[], 1.0);
        assert_eq!(f.families().len(), 2);
        assert_eq!(f.families()[0].samples.len(), 2);
    }

    #[test]
    fn registry_scrapes_in_registration_order() {
        struct One;
        impl MetricsSource for One {
            fn collect(&self, frame: &mut MetricsFrame) {
                frame.counter("a_total", "h", &[], 1);
            }
        }
        struct Two;
        impl MetricsSource for Two {
            fn collect(&self, frame: &mut MetricsFrame) {
                frame.counter("b_total", "h", &[], 2);
            }
        }
        let reg = Registry::new();
        reg.register(Arc::new(One));
        reg.register(Arc::new(Two));
        let frame = reg.collect();
        let names: Vec<&str> = frame.families().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
    }

    #[test]
    fn tx_metrics_disabled_by_default_and_empty_collects_nothing() {
        let m = TxMetrics::new();
        assert!(!m.enabled());
        assert_eq!(m.tag(), UNTAGGED);
        let mut frame = MetricsFrame::new();
        m.collect_into(&mut frame, &[]);
        assert!(frame.families().is_empty());
    }

    #[test]
    fn tx_metrics_records_and_exposes_summaries() {
        let m = TxMetrics::new();
        m.set_enabled(true);
        m.set_tag(3);
        m.record_commit(1_000, 0);
        m.record_commit(5_000, 2);
        let mut frame = MetricsFrame::new();
        m.collect_into(&mut frame, &[("shard", "3")]);
        assert_eq!(frame.families().len(), 2);
        let lat = &frame.families()[0];
        assert_eq!(lat.name, "stm_commit_latency_ns");
        match &lat.samples[0].value {
            MetricValue::Summary(s) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.min, 1_000);
                assert_eq!(s.max, 5_000);
            }
            other => panic!("expected summary, got {other:?}"),
        }
    }
}
