//! Cache-line-padded counters for registry-owned aggregates.
//!
//! The STM hot paths publish into *per-thread* counters (no sharing, no
//! padding needed — see `tinystm::stats::ThreadStats`). The telemetry
//! plane, by contrast, owns a small number of counters that many
//! threads bump directly (sampler window tallies, flight-recorder
//! drops). Those live one-per-cache-line so two adjacent counters never
//! false-share: 128-byte alignment covers the spatial-prefetcher pair
//! of 64-byte lines on x86 and the 128-byte lines on apple-silicon.

use core::sync::atomic::{AtomicU64, Ordering};

/// A `u64` counter alone on its cache line(s).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct PaddedCounter(AtomicU64);

impl PaddedCounter {
    /// A zeroed counter.
    pub const fn new() -> PaddedCounter {
        PaddedCounter(AtomicU64::new(0))
    }

    /// Add one (Relaxed).
    #[inline]
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Add `n` (Relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (Relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_cache_line_padded() {
        assert!(core::mem::align_of::<PaddedCounter>() >= 128);
        assert!(core::mem::size_of::<PaddedCounter>() >= 128);
    }

    #[test]
    fn inc_returns_previous_value() {
        let c = PaddedCounter::new();
        assert_eq!(c.inc(), 0);
        assert_eq!(c.inc(), 1);
        c.add(10);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = PaddedCounter::new();
        let threads = 8;
        let per_thread = if cfg!(debug_assertions) {
            50_000
        } else {
            500_000
        };
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), (threads * per_thread) as u64);
    }
}
