//! # stm-telemetry — the observability plane
//!
//! PRs 1–8 made the STM stack *react* to its own behavior (autotune,
//! shard health, chaos rejoin); this crate makes it *observable*: a
//! production-length run reports what it is doing without a debugger
//! attached, cheaply enough to stay compiled in by default.
//!
//! Four pieces:
//!
//! * **Metrics** ([`MetricsFrame`] / [`MetricsSource`] / [`Registry`] /
//!   [`TxMetrics`]) — a pull-model registry: sources project their
//!   existing Relaxed counters at scrape time; the only new hot-path
//!   instruments (commit-latency and retries histograms) hide behind
//!   one Relaxed `bool`. Histograms share the perf schema's log-linear
//!   bucket map ([`buckets`]) via the concurrent [`AtomicHist`].
//! * **Flight recorder** ([`flight`]) — per-thread ring buffers of
//!   begin/retry/commit/abort events, torn-read-tolerant by design,
//!   dumped on panic, chaos failure, or quarantine.
//! * **Exposition** ([`expo`]) — Prometheus-style text and JSONL
//!   renderers plus the lint pass CI runs over the text format.
//! * **Sampler** ([`Sampler`], feature `sampling`) — schedules every
//!   k-th window per shard into a fresh bounded `stm_check::TraceSink`
//!   so the opacity checker runs continuously on long runs.

pub mod buckets;
mod counters;
pub mod expo;
pub mod flight;
mod hist;
mod metrics;
#[cfg(feature = "sampling")]
mod sampler;

pub use counters::PaddedCounter;
pub use expo::{lint_exposition, render_jsonl, render_prometheus};
pub use hist::{AtomicHist, HistSnapshot};
pub use metrics::{
    collect_tx_counters, Family, MetricKind, MetricValue, MetricsFrame, MetricsSource, Registry,
    Sample, TxMetrics, UNTAGGED,
};
#[cfg(feature = "sampling")]
pub use sampler::{Sampler, SamplerConfig, SamplerCounts, WindowOutcome};
