//! The transaction flight recorder: a fixed-size per-thread ring of
//! lifecycle events (begin / retry / commit / abort), written with two
//! Relaxed stores per event and dumped on demand — automatically on
//! panic (via [`install_panic_hook`]), chaos failure, or shard
//! quarantine — so the last few hundred transactions per thread are
//! always reconstructible without a debugger.
//!
//! ## Consistency model (deliberately weak)
//!
//! Writers never synchronize with readers: a slot's `(t_ns, meta)` pair
//! is two independent Relaxed stores, so a dump taken mid-write can see
//! a torn pair (fresh timestamp, stale meta, or vice versa) and a
//! wrapped ring can interleave old and new events. That is the price of
//! a zero-coordination hot path and is acceptable because the recorder
//! is purely diagnostic — the dump is a best-effort reconstruction,
//! never an oracle input. (`stm-check` histories, which *are* oracle
//! inputs, use the properly synchronized `TraceSink` path instead.)
//!
//! Rings are registered globally and kept alive after thread exit so a
//! post-mortem dump still covers recently-dead workers; memory is
//! bounded at `RING_SLOTS × 16 B` per thread that ever recorded.

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::OnceCell;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Events retained per thread (power of two; ~4 KiB per thread).
pub const RING_SLOTS: usize = 256;

/// Lifecycle stages a transaction reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A `run` call entered its attempt loop.
    Begin,
    /// An attempt aborted and will be retried (reason attached).
    Retry,
    /// The transaction committed (info = retries it took).
    Commit,
    /// The transaction failed terminally (e.g. WAL publish failure).
    Abort,
}

impl FlightKind {
    /// Short label for dumps.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Begin => "begin",
            FlightKind::Retry => "retry",
            FlightKind::Commit => "commit",
            FlightKind::Abort => "abort",
        }
    }

    fn from_u8(v: u8) -> FlightKind {
        match v {
            0 => FlightKind::Begin,
            1 => FlightKind::Retry,
            2 => FlightKind::Commit,
            _ => FlightKind::Abort,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            FlightKind::Begin => 0,
            FlightKind::Retry => 1,
            FlightKind::Commit => 2,
            FlightKind::Abort => 3,
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's first use in this process.
    pub t_ns: u64,
    /// Recorder-assigned thread ordinal.
    pub thread: u64,
    /// Instance tag (shard index under the engine, `u32::MAX` outside).
    pub tag: u32,
    /// Lifecycle stage.
    pub kind: FlightKind,
    /// Abort reason index (`stm_api::AbortReason::index`) for
    /// retry/abort events; 0 otherwise.
    pub reason: u8,
    /// Stage-specific payload (retries for commits).
    pub info: u16,
}

struct Slot {
    t_ns: AtomicU64,
    meta: AtomicU64,
}

struct Ring {
    thread: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(thread: u64) -> Ring {
        Ring {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS)
                .map(|_| Slot {
                    t_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn record(&self, tag: u32, kind: FlightKind, reason: u8, info: u16) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) as usize) % RING_SLOTS;
        let meta = (u64::from(tag) << 32)
            | (u64::from(kind.as_u8()) << 24)
            | (u64::from(reason) << 16)
            | u64::from(info);
        let slot = &self.slots[idx];
        slot.t_ns.store(now_ns(), Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
    }

    fn events(&self) -> Vec<FlightEvent> {
        let written = self.head.load(Ordering::Relaxed);
        let n = (written as usize).min(RING_SLOTS);
        (0..n)
            .map(|i| {
                let slot = &self.slots[i];
                let meta = slot.meta.load(Ordering::Relaxed);
                FlightEvent {
                    t_ns: slot.t_ns.load(Ordering::Relaxed),
                    thread: self.thread,
                    tag: (meta >> 32) as u32,
                    kind: FlightKind::from_u8((meta >> 24) as u8),
                    reason: (meta >> 16) as u8,
                    info: meta as u16,
                }
            })
            .collect()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static RINGS: Mutex<Vec<std::sync::Arc<Ring>>> = Mutex::new(Vec::new());
static START: OnceLock<Instant> = OnceLock::new();
static HOOK: Once = Once::new();

thread_local! {
    static RING: OnceCell<std::sync::Arc<Ring>> = const { OnceCell::new() };
}

fn now_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Turn recording on or off process-wide (Relaxed).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`record`] currently does anything. Callers on hot paths
/// should check this once per transaction and skip their packing work
/// when off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one lifecycle event into the calling thread's ring. No-op
/// when disabled.
#[inline]
pub fn record(tag: u32, kind: FlightKind, reason: u8, info: u16) {
    if !enabled() {
        return;
    }
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = std::sync::Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            RINGS
                .lock()
                .expect("flight registry poisoned")
                .push(std::sync::Arc::clone(&ring));
            ring
        });
        ring.record(tag, kind, reason, info);
    });
}

/// Snapshot every thread's retained events, oldest-first by timestamp.
/// Best-effort under concurrent writers (see the module docs).
pub fn snapshot() -> Vec<FlightEvent> {
    let rings = RINGS.lock().expect("flight registry poisoned");
    let mut events: Vec<FlightEvent> = rings.iter().flat_map(|r| r.events()).collect();
    events.sort_by_key(|e| e.t_ns);
    events
}

/// Dump the last `limit` events to stderr with a one-line header naming
/// the trigger. Used by the panic hook, chaos harness, and quarantine
/// path; safe to call with recording disabled (dumps whatever remains).
pub fn dump_to_stderr(why: &str) {
    let events = snapshot();
    let limit = 128usize;
    let skip = events.len().saturating_sub(limit);
    eprintln!(
        "[flight] dump ({why}): {} event(s) retained, showing last {}",
        events.len(),
        events.len() - skip
    );
    for e in &events[skip..] {
        let reason = stm_api::AbortReason::ALL
            .get(e.reason as usize)
            .map(|r| r.label())
            .unwrap_or("?");
        let tag = if e.tag == u32::MAX {
            "-".to_string()
        } else {
            e.tag.to_string()
        };
        match e.kind {
            FlightKind::Retry | FlightKind::Abort => eprintln!(
                "[flight] t={:>12}ns thread={} shard={} {} reason={}",
                e.t_ns,
                e.thread,
                tag,
                e.kind.label(),
                reason
            ),
            FlightKind::Commit => eprintln!(
                "[flight] t={:>12}ns thread={} shard={} commit retries={}",
                e.t_ns, e.thread, tag, e.info
            ),
            FlightKind::Begin => eprintln!(
                "[flight] t={:>12}ns thread={} shard={} begin",
                e.t_ns, e.thread, tag
            ),
        }
    }
}

/// Install (once) a panic hook that dumps the flight recorder before
/// delegating to the previous hook. Idempotent.
pub fn install_panic_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_to_stderr("panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests share it. Each test uses a
    // unique tag and filters its own events, and the enable flag is
    // serialized through one lock so parallel tests don't observe each
    // other's toggles.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = serial();
        set_enabled(false);
        record(91_001, FlightKind::Begin, 0, 0);
        assert!(snapshot().iter().all(|e| e.tag != 91_001));
    }

    #[test]
    fn events_round_trip_through_the_packing() {
        let _g = serial();
        set_enabled(true);
        record(91_002, FlightKind::Retry, 3, 7);
        record(91_002, FlightKind::Commit, 0, 2);
        set_enabled(false);
        let mine: Vec<FlightEvent> = snapshot().into_iter().filter(|e| e.tag == 91_002).collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, FlightKind::Retry);
        assert_eq!(mine[0].reason, 3);
        assert_eq!(mine[0].info, 7);
        assert_eq!(mine[1].kind, FlightKind::Commit);
        assert_eq!(mine[1].info, 2);
        assert!(mine[0].t_ns <= mine[1].t_ns);
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent_slots() {
        let _g = serial();
        set_enabled(true);
        for i in 0..(RING_SLOTS as u16 + 50) {
            record(91_003, FlightKind::Begin, 0, i);
        }
        set_enabled(false);
        let mine: Vec<FlightEvent> = snapshot().into_iter().filter(|e| e.tag == 91_003).collect();
        // This thread's ring holds at most RING_SLOTS of our events
        // (other tests on this thread may share the ring).
        assert!(mine.len() <= RING_SLOTS);
        // The latest event survived the wrap.
        assert!(mine.iter().any(|e| e.info == RING_SLOTS as u16 + 49));
        // The earliest were overwritten.
        assert!(mine.iter().all(|e| e.info >= 1));
    }

    #[test]
    fn concurrent_recording_from_many_threads_is_safe() {
        let _g = serial();
        set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1_000u16 {
                        record(91_004, FlightKind::Commit, 0, i);
                    }
                });
            }
        });
        set_enabled(false);
        let mine = snapshot().into_iter().filter(|e| e.tag == 91_004).count();
        // Each spawned thread has its own ring: 4 × min(1000, RING_SLOTS).
        assert!(mine >= RING_SLOTS, "only {mine} events retained");
        // And a dump never panics.
        dump_to_stderr("test");
    }
}
