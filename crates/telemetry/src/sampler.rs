//! Sampled recording windows (feature `sampling`): run `stm-check`
//! continuously on production-length runs by recording every k-th
//! window per shard into a fresh *bounded* `TraceSink` instead of one
//! unbounded recording of the whole run.
//!
//! ## The contract with `stm-check`
//!
//! * **Fresh sink per window.** A window's sink is created at the
//!   window boundary and drained after detach, so no event can be
//!   attributed to two windows: sessions are per-(thread × attach
//!   generation), and a drained sink is closed — late activations
//!   against it fail and the attempt simply goes unrecorded.
//! * **Bounded.** Sinks are created with a per-session event cap
//!   (`event_cap`); once a thread's session fills, further attempts
//!   are skipped *whole* at activation time, keeping the history
//!   well-formed (never a truncated attempt). Overflow is counted, not
//!   silent.
//! * **Mid-run attach ⇒ version inflation allowed.** A sampled window
//!   starts after unrecorded commits, so observed versions may lack a
//!   recorded writer. Windows must therefore be checked with
//!   `CheckOpts { allow_version_inflation: true, .. }` (see
//!   [`Sampler::check_opts`]), which resolves each read to the
//!   greatest recorded writer version ≤ the observed one. The
//!   trade-off is weaker lost-update detection across the window
//!   boundary — inside the window, conflict serializability is checked
//!   in full.
//!
//! The sampler itself only schedules: callers own attach/detach/drain
//! (they know their backend), then report the outcome back so the
//! window tallies land in the metrics frame.

use crate::counters::PaddedCounter;
use crate::metrics::{MetricsFrame, MetricsSource};
use std::sync::Arc;
use stm_check::{CheckOpts, TraceSink};

/// Sampling cadence and bounds.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Record every k-th window (1 = every window).
    pub every: u64,
    /// Per-session (per-thread) event cap of each window's sink.
    pub event_cap: u64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            every: 8,
            event_cap: 1 << 16,
        }
    }
}

/// How a sampled window ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOutcome {
    /// Drained and checked clean.
    Clean,
    /// The checker found a violation (loud failure upstream).
    Violation,
    /// The recording was unsound (e.g. clock roll-over mid-window).
    Unsound,
}

#[derive(Debug, Default)]
struct ShardWindows {
    seen: PaddedCounter,
    sampled: PaddedCounter,
    overflowed: PaddedCounter,
    clean: PaddedCounter,
    violations: PaddedCounter,
    unsound: PaddedCounter,
}

/// Plain-value tally of one shard's windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerCounts {
    /// Window boundaries crossed.
    pub seen: u64,
    /// Windows that got a sink.
    pub sampled: u64,
    /// Sampled windows whose sink skipped attempts at its cap.
    pub overflowed: u64,
    /// Sampled windows drained and checked clean.
    pub clean: u64,
    /// Sampled windows with checker violations.
    pub violations: u64,
    /// Sampled windows with unsound recordings.
    pub unsound: u64,
}

/// The per-shard window scheduler.
#[derive(Debug)]
pub struct Sampler {
    cfg: SamplerConfig,
    shards: Vec<ShardWindows>,
}

impl Sampler {
    /// A sampler for `shards` shards (use 1 for an unsharded backend).
    pub fn new(shards: usize, cfg: SamplerConfig) -> Sampler {
        let cfg = SamplerConfig {
            every: cfg.every.max(1),
            event_cap: cfg.event_cap.max(1),
        };
        Sampler {
            cfg,
            shards: (0..shards.max(1))
                .map(|_| ShardWindows::default())
                .collect(),
        }
    }

    /// Number of shards scheduled.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured cadence.
    pub fn config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Checker options sampled windows must be verified with (see the
    /// module docs: mid-run attach requires version inflation for every
    /// backend, not just write-through).
    pub fn check_opts(&self) -> CheckOpts {
        CheckOpts {
            allow_version_inflation: true,
            ..CheckOpts::default()
        }
    }

    /// Cross a window boundary on `shard`. Windows are numbered from 0;
    /// windows 0, k, 2k… get a fresh bounded sink (so the very first
    /// window is always recorded and exactly every k-th thereafter).
    pub fn begin_window(&self, shard: usize) -> Option<Arc<TraceSink>> {
        let w = self.shards[shard].seen.inc();
        if w.is_multiple_of(self.cfg.every) {
            self.shards[shard].sampled.inc();
            Some(TraceSink::with_event_cap(self.cfg.event_cap))
        } else {
            None
        }
    }

    /// Report a drained window's outcome. `skipped_attempts` is the
    /// sink's overflow tally (attempts refused at the event cap).
    pub fn note_result(&self, shard: usize, outcome: WindowOutcome, skipped_attempts: u64) {
        let s = &self.shards[shard];
        if skipped_attempts > 0 {
            s.overflowed.inc();
        }
        match outcome {
            WindowOutcome::Clean => s.clean.inc(),
            WindowOutcome::Violation => s.violations.inc(),
            WindowOutcome::Unsound => s.unsound.inc(),
        };
    }

    /// Current tallies for `shard`.
    pub fn counts(&self, shard: usize) -> SamplerCounts {
        let s = &self.shards[shard];
        SamplerCounts {
            seen: s.seen.get(),
            sampled: s.sampled.get(),
            overflowed: s.overflowed.get(),
            clean: s.clean.get(),
            violations: s.violations.get(),
            unsound: s.unsound.get(),
        }
    }
}

impl MetricsSource for Sampler {
    fn collect(&self, frame: &mut MetricsFrame) {
        for shard in 0..self.shards.len() {
            let c = self.counts(shard);
            let tag = shard.to_string();
            let labels: [(&str, &str); 1] = [("shard", tag.as_str())];
            frame.counter(
                "stm_sampler_windows_seen_total",
                "Window boundaries crossed.",
                &labels,
                c.seen,
            );
            frame.counter(
                "stm_sampler_windows_sampled_total",
                "Windows recorded into a bounded sink.",
                &labels,
                c.sampled,
            );
            frame.counter(
                "stm_sampler_windows_overflowed_total",
                "Sampled windows that hit their event cap.",
                &labels,
                c.overflowed,
            );
            frame.counter(
                "stm_sampler_windows_clean_total",
                "Sampled windows checked clean.",
                &labels,
                c.clean,
            );
            frame.counter(
                "stm_sampler_windows_violation_total",
                "Sampled windows with checker violations.",
                &labels,
                c.violations,
            );
            frame.counter(
                "stm_sampler_windows_unsound_total",
                "Sampled windows whose recording was unsound.",
                &labels,
                c.unsound,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kth_window_is_sampled_starting_with_the_first() {
        // Satellite: the cadence property. Over n windows with cadence
        // k, exactly ceil(n/k) are sampled: windows 0, k, 2k, …
        for k in [1u64, 2, 3, 8] {
            let s = Sampler::new(
                1,
                SamplerConfig {
                    every: k,
                    event_cap: 64,
                },
            );
            let n = 20u64;
            let mut got = Vec::new();
            for w in 0..n {
                if let Some(sink) = s.begin_window(0) {
                    got.push(w);
                    drop(sink);
                }
            }
            let expect: Vec<u64> = (0..n).filter(|w| w % k == 0).collect();
            assert_eq!(got, expect, "cadence {k}");
            assert_eq!(s.counts(0).seen, n);
            assert_eq!(s.counts(0).sampled, n.div_ceil(k));
        }
    }

    #[test]
    fn shards_schedule_independently() {
        let s = Sampler::new(
            2,
            SamplerConfig {
                every: 2,
                event_cap: 64,
            },
        );
        assert!(s.begin_window(0).is_some());
        // Shard 1's first window is still window 0 for shard 1.
        assert!(s.begin_window(1).is_some());
        assert!(s.begin_window(0).is_none());
        assert_eq!(s.counts(0).seen, 2);
        assert_eq!(s.counts(1).seen, 1);
    }

    #[test]
    fn outcomes_and_overflow_are_tallied() {
        let s = Sampler::new(1, SamplerConfig::default());
        s.note_result(0, WindowOutcome::Clean, 0);
        s.note_result(0, WindowOutcome::Clean, 5);
        s.note_result(0, WindowOutcome::Violation, 0);
        s.note_result(0, WindowOutcome::Unsound, 0);
        let c = s.counts(0);
        assert_eq!(c.clean, 2);
        assert_eq!(c.violations, 1);
        assert_eq!(c.unsound, 1);
        assert_eq!(c.overflowed, 1);
    }

    #[test]
    fn sampler_exposes_lintable_counters() {
        let s = Sampler::new(2, SamplerConfig::default());
        s.begin_window(0);
        s.note_result(0, WindowOutcome::Clean, 0);
        let mut frame = MetricsFrame::new();
        s.collect(&mut frame);
        // 6 families × 2 shard samples each, merged by name.
        assert_eq!(frame.families().len(), 6);
        assert!(frame.families().iter().all(|f| f.samples.len() == 2));
        let text = crate::expo::render_prometheus(&frame);
        assert!(crate::expo::lint_exposition(&text).is_empty());
    }

    #[test]
    fn check_opts_allow_inflation_for_mid_run_attach() {
        let s = Sampler::new(1, SamplerConfig::default());
        assert!(s.check_opts().allow_version_inflation);
    }
}
