//! Exposition: render a [`MetricsFrame`] as Prometheus-style text or as
//! JSONL (the same line-delimited-JSON family as `stm-perf`'s bench
//! records, so one tool chain slurps both), plus a lint pass CI runs
//! over the text format.
//!
//! Everything here is dependency-free by construction (the build
//! environment is offline): JSON strings are escaped by hand and the
//! linter is a line-oriented scan, not a full openmetrics parser.
//!
//! ## Schema
//!
//! Text: one `# HELP` + `# TYPE` pair per family, then one line per
//! sample. Summaries expose `name{...,quantile="q"}` lines for q ∈
//! {0.5, 0.95, 0.99, 0.999} plus `name_sum` and `name_count`.
//!
//! JSONL: one object per sample —
//! `{"metric":NAME,"type":KIND,"labels":{..},...}` with `"value"` for
//! counters/gauges and `"count"/"sum"/"min"/"max"/"p50".."p999"` for
//! summaries.

use crate::metrics::{MetricValue, MetricsFrame};

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render the Prometheus text exposition.
pub fn render_prometheus(frame: &MetricsFrame) -> String {
    let mut out = String::new();
    for family in frame.families() {
        out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
        out.push_str(&format!(
            "# TYPE {} {}\n",
            family.name,
            family.kind.keyword()
        ));
        for sample in &family.samples {
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        family.name,
                        label_block(&sample.labels, None)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        family.name,
                        label_block(&sample.labels, None)
                    ));
                }
                MetricValue::Summary(s) => {
                    for (q, pct) in [
                        ("0.5", 50.0),
                        ("0.95", 95.0),
                        ("0.99", 99.0),
                        ("0.999", 99.9),
                    ] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            label_block(&sample.labels, Some(("quantile", q.to_string()))),
                            s.value_at_percentile(pct)
                        ));
                    }
                    let plain = label_block(&sample.labels, None);
                    out.push_str(&format!("{}_sum{} {}\n", family.name, plain, s.sum));
                    out.push_str(&format!("{}_count{} {}\n", family.name, plain, s.count));
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Render the frame as JSONL, one object per sample.
pub fn render_jsonl(frame: &MetricsFrame) -> String {
    let mut out = String::new();
    for family in frame.families() {
        for sample in &family.samples {
            let head = format!(
                "{{\"metric\":\"{}\",\"type\":\"{}\",\"labels\":{}",
                json_escape(&family.name),
                family.kind.keyword(),
                json_labels(&sample.labels)
            );
            match &sample.value {
                MetricValue::Counter(v) => out.push_str(&format!("{head},\"value\":{v}}}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{head},\"value\":{v}}}\n")),
                MetricValue::Summary(s) => {
                    let min = if s.count == 0 { 0 } else { s.min };
                    out.push_str(&format!(
                        "{head},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}\n",
                        s.count,
                        s.sum,
                        min,
                        s.max,
                        s.value_at_percentile(50.0),
                        s.value_at_percentile(95.0),
                        s.value_at_percentile(99.0),
                        s.value_at_percentile(99.9),
                    ));
                }
            }
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Lint a text exposition: every sample's family must have exactly one
/// preceding `# TYPE` line, family names must be well-formed, and no
/// family may be declared twice. Returns the problems found (empty =
/// clean). CI fails the telemetry job on any finding.
pub fn lint_exposition(text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !valid_metric_name(name) {
                problems.push(format!("line {lineno}: bad family name {name:?}"));
                continue;
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                problems.push(format!("line {lineno}: unknown kind {kind:?} for {name}"));
            }
            if typed.iter().any(|t| t == name) {
                problems.push(format!("line {lineno}: duplicate TYPE for family {name}"));
            } else {
                typed.push(name.to_string());
            }
        } else if line.starts_with('#') || line.trim().is_empty() {
            continue;
        } else {
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            if !valid_metric_name(name) {
                problems.push(format!("line {lineno}: bad metric name {name:?}"));
                continue;
            }
            // A summary/histogram sample may carry a _sum/_count/_bucket
            // suffix on its family's name.
            let base = name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .or_else(|| name.strip_suffix("_bucket"))
                .unwrap_or(name);
            if !typed.iter().any(|t| t == name || t == base) {
                problems.push(format!("line {lineno}: sample {name} has no TYPE line"));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::AtomicHist;

    fn sample_frame() -> MetricsFrame {
        let mut frame = MetricsFrame::new();
        frame.counter(
            "stm_commits_total",
            "Committed transactions.",
            &[("backend", "tl2"), ("shard", "0")],
            42,
        );
        frame.counter(
            "stm_commits_total",
            "Committed transactions.",
            &[("backend", "tl2"), ("shard", "1")],
            7,
        );
        frame.gauge("stm_shard_health", "Health state.", &[("shard", "0")], 0.0);
        let h = AtomicHist::new();
        h.record(100);
        h.record(200);
        frame.summary(
            "stm_commit_latency_ns",
            "Commit latency.",
            &[("backend", "tl2")],
            h.snapshot(),
        );
        frame
    }

    #[test]
    fn prometheus_text_round_trips_the_linter() {
        let text = render_prometheus(&sample_frame());
        assert!(text.contains("# TYPE stm_commits_total counter"));
        assert!(text.contains("stm_commits_total{backend=\"tl2\",shard=\"0\"} 42"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("stm_commit_latency_ns_count{backend=\"tl2\"} 2"));
        let problems = lint_exposition(&text);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn linter_flags_missing_type_and_duplicates() {
        let bad = "\
# TYPE a_total counter
a_total 1
orphan_total 2
# TYPE a_total counter
";
        let problems = lint_exposition(bad);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("orphan_total"));
        assert!(problems[1].contains("duplicate"));
    }

    #[test]
    fn linter_flags_bad_names() {
        let problems = lint_exposition("9bad_name 1\n");
        assert_eq!(problems.len(), 1);
        let problems = lint_exposition("# TYPE bad-name counter\n");
        assert_eq!(problems.len(), 1);
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_sample() {
        let out = render_jsonl(&sample_frame());
        let lines: Vec<&str> = out.lines().collect();
        // 2 counter samples + 1 gauge + 1 summary.
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"metric\":\"stm_commits_total\""));
        assert!(lines[3].contains("\"p99\":"));
        assert!(lines[3].contains("\"count\":2"));
    }

    #[test]
    fn label_values_are_escaped_in_both_formats() {
        let mut frame = MetricsFrame::new();
        frame.counter("x_total", "h", &[("k", "a\"b\\c\nd")], 1);
        let text = render_prometheus(&frame);
        assert!(text.contains(r#"k="a\"b\\c\nd""#), "{text}");
        let json = render_jsonl(&frame);
        assert!(json.contains(r#""k":"a\"b\\c\nd""#), "{json}");
        assert!(lint_exposition(&text).is_empty());
    }
}
