//! Property-based tests of the hill climber: whatever throughput
//! sequence it observes, the tuner must stay inside the tuning space,
//! respect its own forbidden bounds, and keep making decisions.

use proptest::prelude::*;
use stm_tuning::{Tuner, TuningPoint};

fn start_strategy() -> impl Strategy<Value = TuningPoint> {
    (8u32..=24, 0u32..=8, 0u32..=8).prop_filter_map("hier <= locks", |(l, s, h)| {
        let p = TuningPoint {
            locks_log2: l,
            shifts: s,
            hier_log2: h,
        };
        p.in_space().then_some(p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tuner_never_leaves_the_space(
        start in start_strategy(),
        seed in any::<u64>(),
        throughputs in proptest::collection::vec(0.0f64..1e7, 1..120),
    ) {
        let mut tuner = Tuner::new(start, seed);
        for &t in &throughputs {
            let d = tuner.record(t);
            prop_assert!(d.next.in_space(), "left the space: {:?}", d.next);
            prop_assert_eq!(tuner.current(), d.next);
        }
        prop_assert_eq!(tuner.log().len(), throughputs.len());
    }

    #[test]
    fn labels_follow_paper_grammar(
        start in start_strategy(),
        seed in any::<u64>(),
        throughputs in proptest::collection::vec(1.0f64..1e6, 1..60),
    ) {
        let mut tuner = Tuner::new(start, seed);
        for &t in &throughputs {
            let d = tuner.record(t);
            let body = d.label.trim_start_matches('-');
            let n: u8 = body.parse().expect("numeric label");
            prop_assert!((1..=8).contains(&n), "label {}", d.label);
            if d.label.starts_with('-') {
                prop_assert!((1..=6).contains(&n), "composite label {}", d.label);
            }
        }
    }

    #[test]
    fn best_tracks_maximum_observed(
        start in start_strategy(),
        seed in any::<u64>(),
        throughputs in proptest::collection::vec(1.0f64..1e6, 2..60),
    ) {
        let mut tuner = Tuner::new(start, seed);
        let mut seen: Vec<(TuningPoint, f64)> = Vec::new();
        for &t in &throughputs {
            let point = tuner.current();
            tuner.record(t);
            seen.retain(|(p, _)| *p != point);
            seen.push((point, t));
            let best = tuner.best().unwrap();
            let expect = seen
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((best.1 - expect).abs() < 1e-9,
                "best {} != expected max {}", best.1, expect);
        }
    }

    #[test]
    fn constant_throughput_eventually_settles(
        start in start_strategy(),
        seed in any::<u64>(),
    ) {
        // With identical throughput everywhere, no reversal rule ever
        // fires; the tuner explores and must not crash or cycle
        // infinitely fast through reversals (labels stay exploratory or
        // eventually nop).
        let mut tuner = Tuner::new(start, seed);
        let mut nops = 0;
        for _ in 0..600 {
            let d = tuner.record(1000.0);
            if d.label == "7" {
                nops += 1;
                if nops > 3 {
                    break;
                }
            }
        }
        // Either it settled into nops or it is still exploring the
        // (large) space — both acceptable; the property is termination
        // of each call, which reaching this line demonstrates.
        prop_assert!(tuner.log().len() <= 600);
    }
}
