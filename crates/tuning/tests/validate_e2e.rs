//! Quick-mode end-to-end tuning validation (acceptance gate for the
//! fig10/fig11 claim): starting from the paper's deliberately poor
//! configuration (2^8 locks, shift 0, hierarchy off), `autotune` must
//! reach ≥ 85% of the best static throughput found by exhaustive grid
//! sweep on both the rbtree and list workloads — with the whole tuned
//! run recorded across every `reconfigure` and checked clean by the
//! stm-check oracle.
//!
//! Measurement noise on a shared single-core CI container is real, so
//! a run that misses the margin is retried (distinct seeds) before the
//! test fails; a recording/oracle failure is never retried away — an
//! unsound history or a violation fails immediately.
#![cfg(feature = "record")]

use stm_tuning::{validate_autotune, ValWorkload, ValidateOpts};

fn converges(workload: ValWorkload) {
    let mut last = String::new();
    for attempt in 0..3u64 {
        let opts = ValidateOpts {
            workload,
            seed: 0xF161_0AF1 ^ (attempt * 0x9E37_79B9),
            ..ValidateOpts::default()
        };
        let report = validate_autotune(&opts)
            .unwrap_or_else(|e| panic!("{}: validation run died: {e}", workload.label()));

        // Oracle obligations are not subject to measurement noise:
        // the recorded run must span ≥ 2 epochs (the tuner really was
        // watched through a reconfiguration) and must check clean.
        let check = report.check.as_ref().expect("recording was on");
        assert!(
            check.is_clean(),
            "{}: tuned run recorded a non-opaque history:\n{check}",
            workload.label()
        );
        assert!(
            report.epochs_checked >= 2,
            "{}: oracle saw only {} epoch(s) — the tuner never reconfigured under recording",
            workload.label(),
            report.epochs_checked
        );
        assert_eq!(report.tuned.records.len(), opts.max_configs);
        assert_eq!(
            report.tuned.records[0].point,
            stm_tuning::TuningPoint::experiment_start(),
            "must start from the paper's poor configuration"
        );

        if report.converged {
            return;
        }
        last = report.summary();
    }
    panic!(
        "{}: autotune stayed below 85% of the sweep's best static throughput \
         across 3 attempts; last: {last}",
        workload.label()
    );
}

#[test]
fn autotune_converges_on_rbtree() {
    converges(ValWorkload::Rbtree);
}

#[test]
fn autotune_converges_on_list() {
    converges(ValWorkload::List);
}
