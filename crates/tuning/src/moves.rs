//! The eight tuning moves of Section 4.2:
//! (1–2) double/halve `#locks`, (3–4) increase/decrease `#shifts`,
//! (5–6) double/halve `h`, (7) nop, (8) reverse to the best measured
//! configuration.

use crate::point::{TuningPoint, HIER_LOG2_MAX, LOCKS_LOG2_MAX, LOCKS_LOG2_MIN, SHIFTS_MAX};

/// One tuning move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Move 1: double the number of locks.
    DoubleLocks,
    /// Move 2: halve the number of locks.
    HalveLocks,
    /// Move 3: increase the shift count by one.
    IncShifts,
    /// Move 4: decrease the shift count by one.
    DecShifts,
    /// Move 5: double the hierarchical array.
    DoubleHier,
    /// Move 6: halve the hierarchical array.
    HalveHier,
    /// Move 7: no change.
    Nop,
    /// Move 8: reverse to the best configuration so far.
    Reverse,
}

impl Move {
    /// The six exploratory moves (1–6), in paper order.
    pub const EXPLORATORY: [Move; 6] = [
        Move::DoubleLocks,
        Move::HalveLocks,
        Move::IncShifts,
        Move::DecShifts,
        Move::DoubleHier,
        Move::HalveHier,
    ];

    /// Paper move number (1–8).
    pub fn number(self) -> u8 {
        match self {
            Move::DoubleLocks => 1,
            Move::HalveLocks => 2,
            Move::IncShifts => 3,
            Move::DecShifts => 4,
            Move::DoubleHier => 5,
            Move::HalveHier => 6,
            Move::Nop => 7,
            Move::Reverse => 8,
        }
    }

    /// Apply to a point; `None` when the result leaves the space.
    pub fn apply(self, p: TuningPoint) -> Option<TuningPoint> {
        let mut q = p;
        match self {
            Move::DoubleLocks => {
                if p.locks_log2 >= LOCKS_LOG2_MAX {
                    return None;
                }
                q.locks_log2 += 1;
            }
            Move::HalveLocks => {
                if p.locks_log2 <= LOCKS_LOG2_MIN {
                    return None;
                }
                q.locks_log2 -= 1;
                if q.hier_log2 > q.locks_log2 {
                    return None;
                }
            }
            Move::IncShifts => {
                if p.shifts >= SHIFTS_MAX {
                    return None;
                }
                q.shifts += 1;
            }
            Move::DecShifts => {
                if p.shifts == 0 {
                    return None;
                }
                q.shifts -= 1;
            }
            Move::DoubleHier => {
                if p.hier_log2 >= HIER_LOG2_MAX || p.hier_log2 >= p.locks_log2 {
                    return None;
                }
                q.hier_log2 += 1;
            }
            Move::HalveHier => {
                if p.hier_log2 == 0 {
                    return None;
                }
                q.hier_log2 -= 1;
            }
            Move::Nop | Move::Reverse => {}
        }
        debug_assert!(q.in_space());
        Some(q)
    }

    /// The figure-10/11 data-label convention: exploratory moves print
    /// their number; "−x" (reverse then move x) is composed by the
    /// tuner's log.
    pub fn label(self) -> String {
        self.number().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u32, s: u32, h: u32) -> TuningPoint {
        TuningPoint {
            locks_log2: l,
            shifts: s,
            hier_log2: h,
        }
    }

    #[test]
    fn numbers_match_paper() {
        assert_eq!(Move::DoubleLocks.number(), 1);
        assert_eq!(Move::HalveLocks.number(), 2);
        assert_eq!(Move::IncShifts.number(), 3);
        assert_eq!(Move::DecShifts.number(), 4);
        assert_eq!(Move::DoubleHier.number(), 5);
        assert_eq!(Move::HalveHier.number(), 6);
        assert_eq!(Move::Nop.number(), 7);
        assert_eq!(Move::Reverse.number(), 8);
    }

    #[test]
    fn moves_step_single_dimension() {
        let x = p(10, 2, 3);
        assert_eq!(Move::DoubleLocks.apply(x), Some(p(11, 2, 3)));
        assert_eq!(Move::HalveLocks.apply(x), Some(p(9, 2, 3)));
        assert_eq!(Move::IncShifts.apply(x), Some(p(10, 3, 3)));
        assert_eq!(Move::DecShifts.apply(x), Some(p(10, 1, 3)));
        assert_eq!(Move::DoubleHier.apply(x), Some(p(10, 2, 4)));
        assert_eq!(Move::HalveHier.apply(x), Some(p(10, 2, 2)));
        assert_eq!(Move::Nop.apply(x), Some(x));
        assert_eq!(Move::Reverse.apply(x), Some(x));
    }

    #[test]
    fn space_edges_rejected() {
        assert_eq!(Move::HalveLocks.apply(p(LOCKS_LOG2_MIN, 0, 0)), None);
        assert_eq!(Move::DoubleLocks.apply(p(LOCKS_LOG2_MAX, 0, 0)), None);
        assert_eq!(Move::DecShifts.apply(p(10, 0, 0)), None);
        assert_eq!(Move::IncShifts.apply(p(10, SHIFTS_MAX, 0)), None);
        assert_eq!(Move::HalveHier.apply(p(10, 0, 0)), None);
        assert_eq!(Move::DoubleHier.apply(p(10, 0, HIER_LOG2_MAX)), None);
    }

    #[test]
    fn hier_cannot_exceed_locks() {
        // Doubling h past the lock count is rejected...
        assert_eq!(Move::DoubleHier.apply(p(8, 0, 8)), None);
        // ...and halving locks below the hierarchy is rejected.
        // p(9,0,8): halving gives locks=8 >= h=8, allowed.
        assert_eq!(Move::HalveLocks.apply(p(9, 0, 8)), Some(p(8, 0, 8)));
        assert_eq!(Move::HalveLocks.apply(p(8 + 1, 0, 9)), None);
    }

    #[test]
    fn every_exploratory_move_changes_the_point() {
        let x = p(12, 4, 4);
        for m in Move::EXPLORATORY {
            let y = m.apply(x).unwrap();
            assert_ne!(x, y, "{m:?} must move");
        }
    }
}
