//! The hill-climbing tuning strategy of Section 4.2: "a hill climbing
//! algorithm with a memory and forbidden areas".
//!
//! Per measurement period the tuner receives the (maximum-of-samples)
//! throughput of the current configuration and decides the next one:
//!
//! * keep the most recent throughput for every visited configuration;
//! * after a move, if throughput fell more than 2% versus the previous
//!   configuration or sits more than 10% below the best, **reverse** to
//!   the best configuration;
//! * if the drop exceeded 10% on a shift or hierarchy move, **forbid**
//!   moving further in that direction beyond the starting value;
//! * exploration picks a random move (1–6) leading to an uncharted,
//!   non-forbidden configuration; when none exists, reverse to the best
//!   (or nop when already there);
//! * when parked at the best configuration and its throughput drops
//!   below the second best, switch to the second best.
//!
//! The paper's figure labels are reproduced: a reversal combined with an
//! exploratory move `x` is logged as `-x`.

use crate::moves::Move;
use crate::point::{TuningPoint, HIER_LOG2_MAX, SHIFTS_MAX};
use std::collections::HashMap;

/// Relative drop versus the previous configuration that triggers a
/// reversal (2%).
pub const REVERSE_DROP: f64 = 0.02;
/// Distance below the best configuration that triggers a reversal (10%).
pub const REVERSE_FROM_BEST: f64 = 0.10;
/// Drop that additionally forbids the move's direction (10%).
pub const FORBID_DROP: f64 = 0.10;

/// Directional bounds installed by the forbidding rule.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Largest allowed shift count.
    pub shifts_max: u32,
    /// Smallest allowed shift count.
    pub shifts_min: u32,
    /// Largest allowed hierarchy exponent.
    pub hier_log2_max: u32,
    /// Smallest allowed hierarchy exponent.
    pub hier_log2_min: u32,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            shifts_max: SHIFTS_MAX,
            shifts_min: 0,
            hier_log2_max: HIER_LOG2_MAX,
            hier_log2_min: 0,
        }
    }
}

impl Bounds {
    fn allows(&self, mv: Move, to: TuningPoint) -> bool {
        match mv {
            Move::IncShifts => to.shifts <= self.shifts_max,
            Move::DecShifts => to.shifts >= self.shifts_min,
            Move::DoubleHier => to.hier_log2 <= self.hier_log2_max,
            Move::HalveHier => to.hier_log2 >= self.hier_log2_min,
            _ => true,
        }
    }

    fn forbid_beyond(&mut self, mv: Move, from: TuningPoint) {
        match mv {
            Move::IncShifts => self.shifts_max = self.shifts_max.min(from.shifts),
            Move::DecShifts => self.shifts_min = self.shifts_min.max(from.shifts),
            Move::DoubleHier => self.hier_log2_max = self.hier_log2_max.min(from.hier_log2),
            Move::HalveHier => self.hier_log2_min = self.hier_log2_min.max(from.hier_log2),
            _ => {}
        }
    }
}

/// One tuner decision: which configuration to measure next.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Configuration to switch to (may equal the current one — nop).
    pub next: TuningPoint,
    /// Figure-10/11 style label: `"3"`, `"-4"` (reverse + move), `"7"`
    /// (nop), `"8"` (bare reverse).
    pub label: String,
}

#[derive(Debug, Clone, Copy)]
struct LastMove {
    mv: Move,
    from: TuningPoint,
    from_throughput: f64,
}

/// One log entry per measurement period.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Configuration that was measured.
    pub point: TuningPoint,
    /// Its (max-of-samples) throughput.
    pub throughput: f64,
    /// Label of the decision taken afterwards.
    pub label: String,
}

/// The hill climber.
#[derive(Debug)]
pub struct Tuner {
    current: TuningPoint,
    history: HashMap<TuningPoint, f64>,
    last: Option<LastMove>,
    bounds: Bounds,
    rng: u64,
    log: Vec<LogEntry>,
}

impl Tuner {
    /// Start at `start` with RNG seed `seed` (move selection is random,
    /// as in the paper).
    pub fn new(start: TuningPoint, seed: u64) -> Tuner {
        assert!(start.in_space());
        Tuner {
            current: start,
            history: HashMap::new(),
            last: None,
            bounds: Bounds::default(),
            rng: seed | 1,
            log: Vec::new(),
        }
    }

    /// The configuration currently being measured.
    pub fn current(&self) -> TuningPoint {
        self.current
    }

    /// Best configuration measured so far.
    pub fn best(&self) -> Option<(TuningPoint, f64)> {
        self.history
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(p, t)| (*p, *t))
    }

    /// Second-best configuration (distinct point).
    pub fn second_best(&self) -> Option<(TuningPoint, f64)> {
        let (bp, _) = self.best()?;
        self.history
            .iter()
            .filter(|(p, _)| **p != bp)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(p, t)| (*p, *t))
    }

    /// Installed directional bounds (tests/diagnostics).
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Full decision log (figures 10/11).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Random exploratory move from `from` to an uncharted, allowed
    /// configuration.
    fn pick_exploration(&mut self, from: TuningPoint) -> Option<(Move, TuningPoint)> {
        let mut order: Vec<Move> = Move::EXPLORATORY.to_vec();
        // Fisher–Yates with the internal generator.
        for i in (1..order.len()).rev() {
            let j = (self.next_rand() as usize) % (i + 1);
            order.swap(i, j);
        }
        for mv in order {
            if let Some(q) = mv.apply(from) {
                if self.bounds.allows(mv, q) && !self.history.contains_key(&q) {
                    return Some((mv, q));
                }
            }
        }
        None
    }

    /// Feed the measured throughput of the current configuration and get
    /// the next configuration to run.
    pub fn record(&mut self, throughput: f64) -> Decision {
        let measured = self.current;
        self.history.insert(measured, throughput);
        let (best_pt, best_t) = self.best().expect("history non-empty");

        // Evaluate the previous move, if any.
        if let Some(last) = self.last.take() {
            let dropped = throughput < last.from_throughput * (1.0 - REVERSE_DROP);
            let far_from_best = throughput < best_t * (1.0 - REVERSE_FROM_BEST);
            if dropped || far_from_best {
                if throughput < last.from_throughput * (1.0 - FORBID_DROP) {
                    self.bounds.forbid_beyond(last.mv, last.from);
                }
                return self.reverse_and_explore(measured, throughput, best_pt);
            }
        }

        // The move (if any) held up — keep exploring from here.
        if let Some((mv, q)) = self.pick_exploration(measured) {
            self.last = Some(LastMove {
                mv,
                from: measured,
                from_throughput: throughput,
            });
            self.current = q;
            let label = mv.label();
            self.push_log(measured, throughput, &label);
            return Decision { next: q, label };
        }

        // No uncharted neighbours from here.
        if measured != best_pt {
            return self.reverse_and_explore(measured, throughput, best_pt);
        }

        // Parked at the maximum configuration: switch to the second best
        // if our throughput fell below it, otherwise nop.
        if let Some((second_pt, second_t)) = self.second_best() {
            if throughput < second_t {
                self.current = second_pt;
                self.push_log(measured, throughput, "8");
                return Decision {
                    next: second_pt,
                    label: "8".into(),
                };
            }
        }
        self.push_log(measured, throughput, "7");
        Decision {
            next: measured,
            label: "7".into(),
        }
    }

    /// Reverse to the best configuration and, when possible, chain an
    /// exploratory move from there (the paper's `-x` composite).
    fn reverse_and_explore(
        &mut self,
        measured: TuningPoint,
        throughput: f64,
        best_pt: TuningPoint,
    ) -> Decision {
        if let Some((mv, q)) = self.pick_exploration(best_pt) {
            let best_throughput = self.history[&best_pt];
            self.last = Some(LastMove {
                mv,
                from: best_pt,
                from_throughput: best_throughput,
            });
            self.current = q;
            let label = format!("-{}", mv.number());
            self.push_log(measured, throughput, &label);
            return Decision { next: q, label };
        }
        // Nothing to explore from the best either: just reverse.
        self.current = best_pt;
        self.push_log(measured, throughput, "8");
        Decision {
            next: best_pt,
            label: "8".into(),
        }
    }

    fn push_log(&mut self, point: TuningPoint, throughput: f64, label: &str) {
        self.log.push(LogEntry {
            point,
            throughput,
            label: label.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: u32, s: u32, h: u32) -> TuningPoint {
        TuningPoint {
            locks_log2: l,
            shifts: s,
            hier_log2: h,
        }
    }

    #[test]
    fn first_record_explores() {
        let mut t = Tuner::new(p(10, 0, 0), 7);
        let d = t.record(1000.0);
        assert_ne!(d.next, p(10, 0, 0), "must explore from the start");
        assert!(d.label.parse::<u8>().is_ok(), "exploratory label");
        assert_eq!(t.current(), d.next);
    }

    #[test]
    fn good_moves_are_kept() {
        let mut t = Tuner::new(p(10, 0, 0), 7);
        let d1 = t.record(1000.0);
        // The move improved throughput: we keep walking from there.
        let d2 = t.record(1500.0);
        assert_ne!(d2.next, p(10, 0, 0), "no reversal after improvement");
        assert_eq!(t.best().unwrap().0, d1.next);
    }

    #[test]
    fn bad_move_reverses_to_best() {
        let mut t = Tuner::new(p(10, 0, 0), 7);
        let d1 = t.record(1000.0);
        let _moved_to = d1.next;
        // >2% drop: reverse (possibly composite -x from best).
        let d2 = t.record(500.0);
        assert!(
            d2.label.starts_with('-') || d2.label == "8",
            "expected reversal, got {}",
            d2.label
        );
        // Composite reversal explores FROM the best point: the next
        // configuration must be one move away from the best.
        let best = t.best().unwrap().0;
        assert_eq!(best, p(10, 0, 0));
    }

    #[test]
    fn severe_drop_forbids_direction() {
        // Force a shift move by seeding until the first exploration is
        // IncShifts; easier: drive the space so only shift moves exist.
        let mut t = Tuner::new(p(10, 0, 0), 1);
        // Walk until a shift or hier move happens, then feed a huge drop
        // and check the corresponding bound tightened.
        let mut last_label;
        let mut from;
        loop {
            from = t.current();
            let d = t.record(1000.0);
            last_label = d.label.clone();
            let n: i32 = last_label.trim_start_matches('-').parse().unwrap_or(7);
            if (3..=6).contains(&n) {
                // 50% drop → forbid.
                t.record(400.0);
                let b = t.bounds();
                let defaults = Bounds::default();
                let tightened = b.shifts_max < defaults.shifts_max
                    || b.shifts_min > defaults.shifts_min
                    || b.hier_log2_max < defaults.hier_log2_max
                    || b.hier_log2_min > defaults.hier_log2_min;
                assert!(
                    tightened,
                    "severe drop on move {n} did not forbid a direction"
                );
                let _ = from;
                break;
            }
            if t.log().len() > 50 {
                panic!("never picked a shift/hier move");
            }
        }
    }

    #[test]
    fn forbidden_direction_not_picked_again() {
        let mut t = Tuner::new(p(10, 0, 0), 3);
        t.bounds.shifts_max = 0; // forbid any shift increase
        for _ in 0..30 {
            let d = t.record(1000.0);
            assert!(
                d.next.shifts == 0,
                "entered forbidden shift region: {:?}",
                d.next
            );
        }
    }

    #[test]
    fn exhausted_neighbourhood_leads_to_nop() {
        // Tight bounds: no shift/hier moves; locks only between 8..=9.
        // After exploring both lock values, the tuner must settle.
        let mut t = Tuner::new(p(8, 0, 0), 5);
        t.bounds.shifts_max = 0;
        t.bounds.hier_log2_max = 0;
        // Measure identical throughput everywhere; walk the tiny space.
        let mut labels = Vec::new();
        for _ in 0..40 {
            let d = t.record(1000.0);
            labels.push(d.label.clone());
            // Keep within 8..=9 locks by rejecting bigger space moves:
            // the global bounds allow up to 2^24, so this test only
            // checks the tuner eventually repeats nops at the best.
            if d.label == "7" {
                break;
            }
        }
        assert!(
            labels.iter().any(|l| l == "7") || labels.len() == 40,
            "never settled: {labels:?}"
        );
    }

    #[test]
    fn switches_to_second_best_when_best_degrades() {
        let mut t = Tuner::new(p(10, 0, 0), 9);
        // Visit a couple of configurations with distinct throughputs.
        let d1 = t.record(1000.0); // from start
        let start = p(10, 0, 0);
        let second = d1.next;
        let _d2 = t.record(990.0); // slight drop < 2%: keep going
                                   // Manually corner the tuner: exhaust exploration by forbidding
                                   // everything, then degrade the best's throughput below second.
        t.bounds.shifts_max = 0;
        t.bounds.shifts_min = 0;
        t.bounds.hier_log2_max = 0;
        t.bounds.hier_log2_min = 0;
        // Drive back to best then degrade it.
        for _ in 0..100 {
            let cur = t.current();
            let best = t.best().unwrap().0;
            if cur == best && t.second_best().is_some() {
                // Feed a throughput below the second best.
                let second_t = t.second_best().unwrap().1;
                let d = t.record(second_t * 0.5);
                if d.next == t.history_keys_best_excluded() {
                    return; // switched
                }
            } else {
                t.record(500.0);
            }
            if t.log().len() > 90 {
                break;
            }
        }
        // The invariant we really need: the tuner never wedges.
        assert!(t.log().len() > 2);
        let _ = (start, second);
    }

    impl Tuner {
        /// Test helper: the second-best point (or current when none).
        fn history_keys_best_excluded(&self) -> TuningPoint {
            self.second_best().map(|(p, _)| p).unwrap_or(self.current)
        }
    }

    #[test]
    fn log_records_every_period() {
        let mut t = Tuner::new(p(12, 0, 0), 11);
        for i in 0..10 {
            t.record(1000.0 + i as f64);
        }
        assert_eq!(t.log().len(), 10);
        assert!(t.log().iter().all(|e| e.throughput >= 1000.0));
    }

    #[test]
    fn history_keeps_most_recent_value() {
        let mut t = Tuner::new(p(12, 0, 0), 13);
        let d = t.record(1000.0);
        let _ = d;
        // Force a reversal back to start by crashing throughput.
        let _ = t.record(10.0);
        // Eventually re-measures some config; feed a new value and check
        // history updates rather than keeping stale entries.
        let cur = t.current();
        t.record(2000.0);
        assert_eq!(t.history[&cur], 2000.0);
    }
}
