//! Exhaustive static-configuration sweep: the "best static
//! configuration" baseline the paper's tuning figures (10/11) compare
//! the hill climber against. Every grid point is applied through
//! [`stm_api::TmLifecycle::reconfigure`] (the same quiesce mechanism
//! the tuner uses) and measured with the same max-of-samples rule, so
//! sweep and autotune results are directly comparable.

use crate::point::TuningPoint;
use crate::runner::measure_current;
use std::time::Duration;
use stm_api::TmLifecycle;
use tinystm::{Stm, StmConfig};

/// The static grid to sweep: the cartesian product of the three
/// parameter lists, filtered to points inside the tuning space.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Lock-array exponents to try.
    pub locks_log2: Vec<u32>,
    /// Hash shift counts to try.
    pub shifts: Vec<u32>,
    /// Hierarchy exponents to try (0 = disabled).
    pub hier_log2: Vec<u32>,
}

impl SweepGrid {
    /// Quick-mode grid (12 points): coarse but spanning the dimensions
    /// the tuner explores, sized for CI-container runs.
    pub fn quick() -> SweepGrid {
        SweepGrid {
            locks_log2: vec![8, 12, 16],
            shifts: vec![0, 2],
            hier_log2: vec![0, 4],
        }
    }

    /// Paper-scale grid (the static exploration behind Figures 10/11):
    /// 2^8–2^24 locks, 0–8 shifts, h up to 256.
    pub fn paper() -> SweepGrid {
        SweepGrid {
            locks_log2: (8..=24).step_by(2).collect(),
            shifts: (0..=8).step_by(2).collect(),
            hier_log2: vec![0, 2, 4, 6, 8],
        }
    }

    /// Enumerate the grid's in-space points, deterministic order.
    pub fn points(&self) -> Vec<TuningPoint> {
        let mut out = Vec::new();
        for &locks_log2 in &self.locks_log2 {
            for &shifts in &self.shifts {
                for &hier_log2 in &self.hier_log2 {
                    let p = TuningPoint {
                        locks_log2,
                        shifts,
                        hier_log2,
                    };
                    if p.in_space() {
                        out.push(p);
                    }
                }
            }
        }
        out
    }
}

/// Sweep options (measurement mirrors [`crate::AutoTuneOpts`]).
#[derive(Debug, Clone, Copy)]
pub struct SweepOpts {
    /// Measurement period per sample.
    pub period: Duration,
    /// Samples per point; the maximum is used.
    pub samples_per_point: usize,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            period: Duration::from_millis(100),
            samples_per_point: 3,
        }
    }
}

/// One measured static configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepRecord {
    /// The configuration measured.
    pub point: TuningPoint,
    /// Max-of-samples committed throughput (txs/s).
    pub throughput: f64,
}

/// Result of a sweep: one record per measured point, plus an error
/// annotation when a grid point's `reconfigure` was rejected (the
/// points measured so far are preserved).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One record per measured grid point, grid order.
    pub records: Vec<SweepRecord>,
    /// Why the sweep stopped early, if it did.
    pub error: Option<String>,
}

impl SweepOutcome {
    /// The best static configuration found.
    pub fn best(&self) -> Option<&SweepRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
    }
}

/// Exhaustively measure every grid point against `stm` while worker
/// threads (driven by the caller) keep the system loaded.
pub fn sweep(stm: &Stm, template: StmConfig, grid: &SweepGrid, opts: SweepOpts) -> SweepOutcome {
    let mut records = Vec::new();
    for point in grid.points() {
        if let Err(e) = TmLifecycle::reconfigure(stm, &point.apply(template)) {
            return SweepOutcome {
                records,
                error: Some(format!("reconfigure to {} rejected: {e}", point.label())),
            };
        }
        let (throughput, _, _) = measure_current(stm, opts.period, opts.samples_per_point);
        records.push(SweepRecord { point, throughput });
    }
    SweepOutcome {
        records,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_stay_in_space() {
        for grid in [SweepGrid::quick(), SweepGrid::paper()] {
            let points = grid.points();
            assert!(!points.is_empty());
            assert!(points.iter().all(|p| p.in_space()));
        }
        // hier > locks combinations are filtered, not produced.
        let grid = SweepGrid {
            locks_log2: vec![8],
            shifts: vec![0],
            hier_log2: vec![0, 8, 9],
        };
        let points = grid.points();
        assert_eq!(points.len(), 2, "{points:?}");
    }

    #[test]
    fn quick_grid_size_is_bounded() {
        // The quick grid is what CI sweeps; keep it small on purpose.
        assert!(SweepGrid::quick().points().len() <= 16);
    }

    #[test]
    fn best_picks_max_throughput() {
        let p = TuningPoint::experiment_start;
        let out = SweepOutcome {
            records: vec![
                SweepRecord {
                    point: p(),
                    throughput: 10.0,
                },
                SweepRecord {
                    point: p(),
                    throughput: 30.0,
                },
                SweepRecord {
                    point: p(),
                    throughput: 20.0,
                },
            ],
            error: None,
        };
        assert_eq!(out.best().unwrap().throughput, 30.0);
    }

    #[test]
    fn sweep_over_tiny_grid_measures_every_point() {
        use stm_api::TxKind;
        use tinystm::{TCell, TxExt};
        let stm = Stm::new(StmConfig::default()).unwrap();
        let cell = std::sync::Arc::new(TCell::new(0u64));
        let grid = SweepGrid {
            locks_log2: vec![8, 10],
            shifts: vec![0],
            hier_log2: vec![0],
        };
        let out = stm_harness::drive_with_coordinator(
            stm_harness::MeasureOpts::default().with_threads(2),
            |_t| {
                let stm = stm.clone();
                let cell = std::sync::Arc::clone(&cell);
                move |_rng: &mut rand::rngs::SmallRng| {
                    stm.run(TxKind::ReadWrite, |tx| {
                        let v = tx.read(&cell)?;
                        tx.write(&cell, v + 1)
                    });
                }
            },
            || {
                sweep(
                    &stm,
                    StmConfig::default(),
                    &grid,
                    SweepOpts {
                        period: Duration::from_millis(10),
                        samples_per_point: 2,
                    },
                )
            },
        );
        assert!(out.error.is_none(), "{:?}", out.error);
        assert_eq!(out.records.len(), 2);
        assert!(out.records.iter().all(|r| r.throughput > 0.0));
        assert!(stm.stats().reconfigurations >= 2);
    }
}
