//! The auto-tuning runner: couples the hill climber to a live `Stm`.
//!
//! Following Section 4.3: throughput is measured over a period per
//! configuration, **three times**, and the maximum of the three samples
//! feeds the adaptation strategy; configuration switches go through the
//! backend-neutral lifecycle trait ([`stm_api::TmLifecycle`], whose
//! `reconfigure` reuses the clock roll-over quiesce), so rejections
//! surface as [`stm_api::LifecycleError`] rather than a backend's
//! config-error type.

use crate::point::TuningPoint;
use crate::tuner::Tuner;
use std::time::{Duration, Instant};
use stm_api::TmLifecycle;
use tinystm::{Stm, StmConfig};

/// Runner options.
#[derive(Debug, Clone, Copy)]
pub struct AutoTuneOpts {
    /// Measurement period per sample (the paper uses ≈ 1 s; benches use
    /// shorter periods).
    pub period: Duration,
    /// Samples per configuration; the maximum is used (paper: 3).
    pub samples_per_config: usize,
    /// Number of configurations to evaluate before stopping.
    pub max_configs: usize,
    /// RNG seed for the move selection.
    pub seed: u64,
}

impl Default for AutoTuneOpts {
    fn default() -> Self {
        AutoTuneOpts {
            period: Duration::from_millis(100),
            samples_per_config: 3,
            max_configs: 20,
            seed: 0x7E57,
        }
    }
}

/// Max-of-samples measurement of the *current* configuration: sleep
/// `period` per sample, diff the STM's aggregate counters, keep the
/// best sample (the paper measures three times and keeps the maximum).
/// Returns `(throughput, val_locks_processed/s, val_locks_skipped/s)`.
pub(crate) fn measure_current(stm: &Stm, period: Duration, samples: usize) -> (f64, f64, f64) {
    let mut best_sample = 0.0f64;
    let mut processed_rate = 0.0;
    let mut skipped_rate = 0.0;
    for _ in 0..samples.max(1) {
        let before = stm.stats().totals;
        let t0 = Instant::now();
        std::thread::sleep(period);
        let after = stm.stats().totals;
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let delta = after.since(&before);
        let throughput = delta.commits as f64 / secs;
        if throughput >= best_sample {
            best_sample = throughput;
            processed_rate = delta.val_locks_processed as f64 / secs;
            skipped_rate = delta.val_locks_skipped as f64 / secs;
        }
    }
    (best_sample, processed_rate, skipped_rate)
}

/// One evaluated configuration (a point on Figures 10–12).
#[derive(Debug, Clone)]
pub struct TuneRecord {
    /// 1-based configuration index (x-axis of the figures).
    pub index: usize,
    /// The configuration measured.
    pub point: TuningPoint,
    /// Max-of-samples committed throughput (txs/s).
    pub throughput: f64,
    /// Decision label taken after measuring (figure data labels).
    pub label: String,
    /// Read-set locks processed during validation, per second
    /// (Figure 12).
    pub val_processed_per_s: f64,
    /// Read-set locks skipped thanks to hierarchical locking, per
    /// second (Figure 12).
    pub val_skipped_per_s: f64,
}

/// Result of one auto-tuning run: the per-configuration trajectory,
/// plus an error annotation when the climb had to stop early (a
/// `reconfigure` rejected a configuration). The records gathered up to
/// that point — in particular the best-so-far configuration — are
/// always returned; a tuning thread must never panic mid-climb.
#[derive(Debug, Clone)]
pub struct AutoTuneOutcome {
    /// One record per evaluated configuration, in evaluation order.
    pub records: Vec<TuneRecord>,
    /// Why the climb stopped early, if it did (`None` = ran to
    /// completion).
    pub error: Option<String>,
}

impl AutoTuneOutcome {
    /// The best configuration measured so far (highest throughput).
    pub fn best(&self) -> Option<&TuneRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
    }

    /// True when the climb ran to completion.
    pub fn is_complete(&self) -> bool {
        self.error.is_none()
    }
}

/// Run the auto-tuner against `stm` while worker threads (driven by the
/// caller, e.g. `stm_harness::drive_with_coordinator`) keep the system
/// loaded. Starts from `start`, evaluates up to `opts.max_configs`
/// configurations, returns one record per configuration plus an error
/// annotation if a configuration switch was rejected (best-so-far is
/// preserved; the tuning thread never panics).
pub fn autotune(
    stm: &Stm,
    template: StmConfig,
    start: TuningPoint,
    opts: AutoTuneOpts,
) -> AutoTuneOutcome {
    let mut records = Vec::with_capacity(opts.max_configs);
    if let Err(e) = TmLifecycle::reconfigure(stm, &start.apply(template)) {
        return AutoTuneOutcome {
            records,
            error: Some(format!(
                "initial reconfigure to {} rejected: {e}",
                start.label()
            )),
        };
    }
    let mut tuner = Tuner::new(start, opts.seed);
    let mut error = None;

    for index in 1..=opts.max_configs {
        let point = tuner.current();
        let (best_sample, processed_rate, skipped_rate) =
            measure_current(stm, opts.period, opts.samples_per_config);
        let decision = tuner.record(best_sample);
        records.push(TuneRecord {
            index,
            point,
            throughput: best_sample,
            label: decision.label.clone(),
            val_processed_per_s: processed_rate,
            val_skipped_per_s: skipped_rate,
        });
        if decision.next != point {
            if let Err(e) = TmLifecycle::reconfigure(stm, &decision.next.apply(template)) {
                error = Some(format!(
                    "reconfigure to {} rejected after {index} configuration(s): {e}",
                    decision.next.label()
                ));
                break;
            }
        }
    }
    AutoTuneOutcome { records, error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_api::TxKind;
    use tinystm::{TCell, TxExt};

    #[test]
    fn autotune_runs_and_reconfigures() {
        let stm = Stm::new(StmConfig::default().with_locks_log2(8)).unwrap();
        let cell = std::sync::Arc::new(TCell::new(0u64));
        let opts = AutoTuneOpts {
            period: Duration::from_millis(15),
            samples_per_config: 2,
            max_configs: 6,
            seed: 5,
        };
        let records = stm_harness::drive_with_coordinator(
            stm_harness::MeasureOpts::default().with_threads(2),
            |_t| {
                let stm = stm.clone();
                let cell = std::sync::Arc::clone(&cell);
                move |_rng: &mut rand::rngs::SmallRng| {
                    stm.run(TxKind::ReadWrite, |tx| {
                        let v = tx.read(&cell)?;
                        tx.write(&cell, v + 1)
                    });
                }
            },
            || {
                autotune(
                    &stm,
                    StmConfig::default(),
                    TuningPoint::experiment_start(),
                    opts,
                )
            },
        );
        assert!(records.is_complete(), "{:?}", records.error);
        let records = records.records;
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.throughput > 0.0));
        assert_eq!(records[0].point, TuningPoint::experiment_start());
        // Indices are 1-based and sequential.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i + 1);
        }
        // The tuner must have switched configuration at least once.
        assert!(stm.stats().reconfigurations >= 1);
    }

    #[test]
    fn rejected_reconfigure_annotates_instead_of_panicking() {
        // A template whose max_clock fails validation makes every
        // configuration switch impossible: autotune must return the
        // error annotation (here: before any record), not panic.
        let stm = Stm::new(StmConfig::default()).unwrap();
        let bad_template = StmConfig::default().with_max_clock(2);
        let out = autotune(
            &stm,
            bad_template,
            TuningPoint::experiment_start(),
            AutoTuneOpts {
                period: Duration::from_millis(1),
                samples_per_config: 1,
                max_configs: 3,
                seed: 1,
            },
        );
        assert!(!out.is_complete());
        let err = out.error.as_deref().expect("annotated");
        assert!(err.contains("rejected"), "{err}");
        assert!(out.records.is_empty());
        assert!(out.best().is_none());
        assert_eq!(stm.stats().reconfigurations, 0);
    }
}
