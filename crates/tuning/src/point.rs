//! The tuning configuration space: the triple `(#locks, #shifts, h)`
//! of Section 4, navigated by the hill climber in `tuner.rs`.

use tinystm::StmConfig;

/// Hard bounds of the explored space (the paper sweeps 2^8–2^24 locks,
/// 0–8 shifts, h up to 256).
pub const LOCKS_LOG2_MIN: u32 = 8;
/// Upper bound on the lock-array exponent.
pub const LOCKS_LOG2_MAX: u32 = 24;
/// Upper bound on the shift count.
pub const SHIFTS_MAX: u32 = 8;
/// Upper bound on the hierarchical-array exponent (2^8 = 256).
pub const HIER_LOG2_MAX: u32 = 8;

/// A point in the tuning space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TuningPoint {
    /// log2 of the number of locks.
    pub locks_log2: u32,
    /// Hash shift count.
    pub shifts: u32,
    /// log2 of the hierarchical array size (0 = disabled).
    pub hier_log2: u32,
}

impl TuningPoint {
    /// The paper's tuning start for the experiments of Section 4.3:
    /// 2^8 locks, shift 0, hierarchy disabled.
    pub fn experiment_start() -> TuningPoint {
        TuningPoint {
            locks_log2: 8,
            shifts: 0,
            hier_log2: 0,
        }
    }

    /// The production default start (2^16 locks).
    pub fn default_start() -> TuningPoint {
        TuningPoint {
            locks_log2: 16,
            shifts: 0,
            hier_log2: 0,
        }
    }

    /// Read the point out of an [`StmConfig`].
    pub fn from_config(cfg: &StmConfig) -> TuningPoint {
        TuningPoint {
            locks_log2: cfg.locks_log2,
            shifts: cfg.shifts,
            hier_log2: cfg.hier_log2,
        }
    }

    /// Apply the point to a configuration template.
    pub fn apply(&self, template: StmConfig) -> StmConfig {
        template
            .with_locks_log2(self.locks_log2)
            .with_shifts(self.shifts)
            .with_hier_log2(self.hier_log2)
    }

    /// Compact display used in figure output: `(2^l, s, h)`.
    pub fn label(&self) -> String {
        format!(
            "locks=2^{},shifts={},h={}",
            self.locks_log2,
            self.shifts,
            1u64 << self.hier_log2
        )
    }

    /// Whether the point lies inside the explored space (the hierarchy
    /// may never exceed the lock count).
    pub fn in_space(&self) -> bool {
        (LOCKS_LOG2_MIN..=LOCKS_LOG2_MAX).contains(&self.locks_log2)
            && self.shifts <= SHIFTS_MAX
            && self.hier_log2 <= HIER_LOG2_MAX
            && self.hier_log2 <= self.locks_log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_are_in_space() {
        assert!(TuningPoint::experiment_start().in_space());
        assert!(TuningPoint::default_start().in_space());
    }

    #[test]
    fn config_roundtrip() {
        let p = TuningPoint {
            locks_log2: 12,
            shifts: 3,
            hier_log2: 4,
        };
        let cfg = p.apply(StmConfig::default());
        assert_eq!(TuningPoint::from_config(&cfg), p);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn out_of_space_points_detected() {
        let mut p = TuningPoint::experiment_start();
        p.locks_log2 = LOCKS_LOG2_MAX + 1;
        assert!(!p.in_space());
        let p = TuningPoint {
            locks_log2: 8,
            shifts: 0,
            hier_log2: 9,
        };
        assert!(!p.in_space());
        // hier larger than locks
        let p = TuningPoint {
            locks_log2: 8,
            shifts: 0,
            hier_log2: 8,
        };
        assert!(p.in_space());
    }

    #[test]
    fn label_is_readable() {
        let p = TuningPoint {
            locks_log2: 16,
            shifts: 2,
            hier_log2: 4,
        };
        assert_eq!(p.label(), "locks=2^16,shifts=2,h=16");
    }
}
