//! End-to-end tuning validation (ROADMAP "Tuning-loop validation",
//! Figures 10/11): prove that `autotune`, started from the paper's
//! deliberately poor configuration, reaches within a configurable
//! margin of the best *static* configuration found by exhaustive sweep
//! — and that the whole tuned run, reconfigurations included, records a
//! history the stm-check oracle finds clean.
//!
//! The flow drives one live `Stm` under a steady intset workload:
//!
//! 1. **Sweep** — measure every grid point statically (same
//!    max-of-samples rule as the tuner);
//! 2. **Record + autotune** — attach a trace sink, then hill-climb from
//!    [`TuningPoint::experiment_start`]; every `reconfigure` bumps the
//!    recording epoch, so the run stays checkable across stripe
//!    renumbering (the PR 4 restriction this PR lifts);
//! 3. **Check** — drain the sink (safe close-and-wait drain), discard
//!    the partial epoch before the tuner's first switch (recording
//!    attached mid-run: see [`History::retain_epochs_from`]), and run
//!    the per-epoch opacity/serializability checker;
//! 4. **Playoff** — re-measure the sweep's best configuration and the
//!    tuner's best configuration *back-to-back* (two alternating
//!    rounds, max-of-samples). Sweep and climb run minutes apart on a
//!    drifting shared host, so comparing their historical samples
//!    confounds configuration quality with drift; the adjacent
//!    playoff measurements isolate the paper's actual claim — the
//!    tuner converges to a near-best *configuration*;
//! 5. **Compare** — converged iff
//!    `tuned_ref ≥ (1 − margin) · static_ref` (default margin 15%).

use crate::point::TuningPoint;
use crate::runner::{autotune, measure_current, AutoTuneOpts, AutoTuneOutcome, TuneRecord};
use crate::sweep::{sweep, SweepGrid, SweepOpts, SweepOutcome, SweepRecord};
use std::time::Duration;
use stm_api::TmLifecycle;
use stm_check::{check_history, CheckOpts, CheckReport, TraceSink};
use stm_harness::{drive_with_coordinator, IntSetOp, IntSetWorkload, MeasureOpts};
use stm_structures::{LinkedList, RbTree, TxSet};
use tinystm::{CmPolicy, Stm, StmConfig};

/// The two tuned workloads of Figures 10/11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValWorkload {
    /// Intset on the red-black tree (Figure 10).
    Rbtree,
    /// Intset on the sorted linked list (Figure 11).
    List,
}

impl ValWorkload {
    /// Label for reports/CLI.
    pub fn label(self) -> &'static str {
        match self {
            ValWorkload::Rbtree => "rbtree",
            ValWorkload::List => "list",
        }
    }
}

/// Validation options. The defaults are quick-mode (CI-container sized);
/// the paper-scale run raises periods/samples and uses
/// [`SweepGrid::paper`].
#[derive(Debug, Clone)]
pub struct ValidateOpts {
    /// Workload to tune.
    pub workload: ValWorkload,
    /// Worker threads kept loaded throughout.
    pub threads: usize,
    /// Structure size.
    pub size: u64,
    /// Update percentage.
    pub update_pct: u32,
    /// Static grid to sweep.
    pub grid: SweepGrid,
    /// Measurement period per sample (sweep and autotune alike).
    pub period: Duration,
    /// Samples per configuration (max-of-samples).
    pub samples: usize,
    /// Configurations the tuner may evaluate.
    pub max_configs: usize,
    /// Allowed shortfall versus the sweep's best static throughput
    /// (0.15 = the tuner must reach ≥ 85% of it).
    pub margin: f64,
    /// Record the tuned run and check it with the oracle.
    pub record: bool,
    /// Base RNG seed (workload streams + tuner move selection).
    pub seed: u64,
}

impl Default for ValidateOpts {
    fn default() -> Self {
        ValidateOpts {
            workload: ValWorkload::Rbtree,
            threads: 2,
            size: 64,
            update_pct: 20,
            grid: SweepGrid::quick(),
            period: Duration::from_millis(10),
            samples: 2,
            max_configs: 12,
            margin: 0.15,
            record: true,
            seed: 0xF161_0AF1,
        }
    }
}

/// Outcome of one validation run.
#[derive(Debug)]
pub struct ValidateReport {
    /// The static sweep (baseline).
    pub sweep: SweepOutcome,
    /// The tuned trajectory.
    pub tuned: AutoTuneOutcome,
    /// Best static configuration found by the sweep.
    pub sweep_best: SweepRecord,
    /// Best configuration the tuner reached.
    pub tuned_best: TuneRecord,
    /// Playoff throughput of the sweep's best configuration
    /// (re-measured back-to-back with the tuned one).
    pub static_ref: f64,
    /// Playoff throughput of the tuner's best configuration.
    pub tuned_ref: f64,
    /// `tuned_ref / static_ref` (back-to-back playoff measurements).
    pub ratio: f64,
    /// Margin the run was validated against.
    pub margin: f64,
    /// `ratio ≥ 1 − margin`, both phases complete, and (when recorded)
    /// the history checked clean.
    pub converged: bool,
    /// Reconfigure epochs the checked history spanned (0 when not
    /// recording). ≥ 2 proves the oracle watched the tuner through at
    /// least one reconfiguration.
    pub epochs_checked: usize,
    /// The oracle's report over the tuned run (`None` when recording
    /// was off).
    pub check: Option<CheckReport>,
}

impl ValidateReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "playoff: tuned config {:.0} txs/s vs best static config {:.0} txs/s \
             (ratio {:.3}, margin {:.2}): {}; {} epoch(s) checked",
            self.tuned_ref,
            self.static_ref,
            self.ratio,
            self.margin,
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.epochs_checked,
        )
    }
}

fn build_set(stm: &Stm, workload: ValWorkload) -> Box<dyn TxSet> {
    match workload {
        ValWorkload::Rbtree => Box::new(RbTree::new(stm.clone())),
        ValWorkload::List => Box::new(LinkedList::new(stm.clone())),
    }
}

/// Run the full sweep → autotune → record/check validation. `Err` means
/// the run could not be evaluated at all (a phase died or the recording
/// was unsound); a completed-but-unconverged run comes back as
/// `Ok(report)` with `converged = false` so callers can inspect it.
pub fn validate_autotune(opts: &ValidateOpts) -> Result<ValidateReport, String> {
    // Light backoff so the single-core CI container cannot livelock on
    // the high-conflict start configuration (same policy the benches
    // use; identical for sweep and tuner, so the comparison is fair).
    let template = StmConfig::default().with_cm(CmPolicy::Backoff {
        base: 16,
        max_spins: 1 << 14,
    });
    let stm = Stm::new(template).map_err(|e| format!("config: {e:?}"))?;
    let set = build_set(&stm, opts.workload);
    let workload = IntSetWorkload::new(opts.size, opts.update_pct);
    stm_harness::populate(&*set, &workload, opts.seed);

    let sink = opts.record.then(TraceSink::new);
    let sweep_opts = SweepOpts {
        period: opts.period,
        samples_per_point: opts.samples,
    };
    let tune_opts = AutoTuneOpts {
        period: opts.period,
        samples_per_config: opts.samples,
        max_configs: opts.max_configs,
        seed: opts.seed ^ 0x7E57,
    };

    let (swept, first_full_epoch, tuned, playoff) = drive_with_coordinator(
        MeasureOpts::default()
            .with_threads(opts.threads)
            .with_seed(opts.seed),
        |_t| {
            let mut op = IntSetOp::new(&*set, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || {
            // Attach recording *before* the sweep so both phases pay
            // the same per-event cost — the tuned-vs-static comparison
            // must not handicap the tuner with instrumentation the
            // baseline never carried. The epoch in flight at attach
            // time reads versions whose writers predate the attach, so
            // only the epochs from the sweep's first reconfigure
            // onwards are checkable.
            if let Some(sink) = &sink {
                stm.attach_trace(sink);
            }
            let first_full_epoch = stm.record_epoch() + 1;
            let swept = sweep(&stm, template, &opts.grid, sweep_opts);
            let tuned = autotune(&stm, template, TuningPoint::experiment_start(), tune_opts);
            // Playoff: the sweep ran long before the climb finished,
            // and a shared host drifts over that span — re-measure
            // both best configurations adjacently so the comparison
            // isolates configuration quality.
            let playoff = match (swept.best(), tuned.best()) {
                (Some(sb), Some(tb)) if swept.error.is_none() && tuned.error.is_none() => {
                    let pairs = [(sb.point, 0usize), (tb.point, 1usize)];
                    let mut refs = [0.0f64; 2];
                    let mut err = None;
                    'rounds: for _ in 0..2 {
                        for (point, slot) in pairs {
                            if let Err(e) = TmLifecycle::reconfigure(&stm, &point.apply(template)) {
                                err = Some(format!(
                                    "playoff reconfigure to {} rejected: {e}",
                                    point.label()
                                ));
                                break 'rounds;
                            }
                            let (t, _, _) = measure_current(&stm, opts.period, opts.samples);
                            refs[slot] = refs[slot].max(t);
                        }
                    }
                    match err {
                        None => Ok((refs[0], refs[1])),
                        Some(e) => Err(e),
                    }
                }
                _ => Ok((0.0, 0.0)), // phase errors reported below
            };
            (swept, first_full_epoch, tuned, playoff)
        },
    );
    if let Some(sink) = &sink {
        stm.detach_trace();
        debug_assert!(!sink.is_closed());
    }

    if let Some(e) = &swept.error {
        return Err(format!("sweep failed: {e}"));
    }
    if let Some(e) = &tuned.error {
        return Err(format!("autotune failed: {e}"));
    }
    let sweep_best = *swept.best().ok_or("sweep produced no records")?;
    let tuned_best = tuned.best().ok_or("autotune produced no records")?.clone();
    let (static_ref, tuned_ref) = playoff.map_err(|e| format!("playoff failed: {e}"))?;

    let (check, epochs_checked) = match &sink {
        Some(sink) => {
            // Safe drain: workers have joined (the coordinator scope
            // closed above).
            let mut history = sink
                .drain_history()
                .map_err(|e| format!("recording unsound: {e}"))?;
            history.retain_epochs_from(first_full_epoch);
            let epochs = history.epochs().len();
            // Write-back backend: strict version resolution.
            (Some(check_history(&history, &CheckOpts::default())), epochs)
        }
        None => (None, 0),
    };

    // Fail closed: a playoff that measured zero static throughput (a
    // starved host) validated nothing — report it as not converged so
    // callers retry rather than passing vacuously.
    let ratio = if static_ref > 0.0 {
        tuned_ref / static_ref
    } else {
        0.0
    };
    let clean = check.as_ref().is_none_or(|r| r.is_clean());
    let converged = ratio >= 1.0 - opts.margin && clean;
    Ok(ValidateReport {
        sweep: swept,
        tuned,
        sweep_best,
        tuned_best,
        static_ref,
        tuned_ref,
        ratio,
        margin: opts.margin,
        converged,
        epochs_checked,
        check,
    })
}
