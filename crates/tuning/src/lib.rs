//! # stm-tuning — dynamic performance tuning (Section 4)
//!
//! The paper's headline contribution: a hill-climbing strategy with
//! memory and forbidden areas that adapts TinySTM's three tuning
//! parameters — the number of locks, the hash shift, and the size of the
//! hierarchical array — to the running workload, switching
//! configurations through the same quiesce mechanism as clock roll-over.
//!
//! * [`point`] — the `(#locks, #shifts, h)` space and its bounds;
//! * [`moves`] — the eight moves of Section 4.2;
//! * [`tuner`] — the hill climber (memory, 2%/10% reversal rules,
//!   forbidden directions, second-best fallback);
//! * [`runner`] — couples the tuner to a live [`tinystm::Stm`],
//!   measuring each configuration three times and keeping the maximum,
//!   as in Section 4.3;
//! * [`sweep`] — the exhaustive static-grid baseline (best static
//!   configuration) the tuning figures compare against;
//! * [`validate`] (feature `record`) — the end-to-end fig10/fig11
//!   validation: sweep, then autotune from the paper's poor start
//!   configuration with the whole tuned run recorded across
//!   `reconfigure` boundaries and checked by the stm-check oracle.

pub mod moves;
pub mod point;
pub mod runner;
pub mod sweep;
pub mod tuner;
#[cfg(feature = "record")]
pub mod validate;

pub use moves::Move;
pub use point::TuningPoint;
pub use runner::{autotune, AutoTuneOpts, AutoTuneOutcome, TuneRecord};
pub use sweep::{sweep, SweepGrid, SweepOpts, SweepOutcome, SweepRecord};
pub use tuner::{Decision, LogEntry, Tuner};
#[cfg(feature = "record")]
pub use validate::{validate_autotune, ValWorkload, ValidateOpts, ValidateReport};
