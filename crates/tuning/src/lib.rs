//! # stm-tuning — dynamic performance tuning (Section 4)
//!
//! The paper's headline contribution: a hill-climbing strategy with
//! memory and forbidden areas that adapts TinySTM's three tuning
//! parameters — the number of locks, the hash shift, and the size of the
//! hierarchical array — to the running workload, switching
//! configurations through the same quiesce mechanism as clock roll-over.
//!
//! * [`point`] — the `(#locks, #shifts, h)` space and its bounds;
//! * [`moves`] — the eight moves of Section 4.2;
//! * [`tuner`] — the hill climber (memory, 2%/10% reversal rules,
//!   forbidden directions, second-best fallback);
//! * [`runner`] — couples the tuner to a live [`tinystm::Stm`],
//!   measuring each configuration three times and keeping the maximum,
//!   as in Section 4.3.

pub mod moves;
pub mod point;
pub mod runner;
pub mod tuner;

pub use moves::Move;
pub use point::TuningPoint;
pub use runner::{autotune, AutoTuneOpts, TuneRecord};
pub use tuner::{Decision, LogEntry, Tuner};
