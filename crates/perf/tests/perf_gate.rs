//! End-to-end test of the perf gate: write result sets as real `.jsonl`
//! files, load them back through the directory loader, and check the
//! gate decision — the same path `perf-diff baselines/ target/perf`
//! exercises in CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use stm_perf::{diff_records, load_records, BenchRecord, BenchRun, Tolerance};

fn record(experiment: &str, backend: &str, threads: usize, ops: f64) -> BenchRecord {
    BenchRecord {
        experiment: experiment.to_string(),
        panel: "256/20%".to_string(),
        structure: "rbtree".to_string(),
        backend: backend.to_string(),
        threads,
        initial_size: 256,
        key_range: 512,
        update_pct: 20,
        ops_per_sec: ops,
        aborts_per_sec: ops / 100.0,
        abort_ratio: 0.01,
        commits: ops as u64,
        aborts: (ops / 100.0) as u64,
        elapsed_ms: 1000.0,
        aborts_by_reason: BTreeMap::new(),
        worker_panics: 0,
        extras: BTreeMap::new(),
    }
}

fn write_set(dir: &Path, experiment: &str, scale: f64) {
    std::fs::create_dir_all(dir).unwrap();
    let mut run = BenchRun::new(experiment, "gate test", "quick", 10);
    for backend in ["tinystm-wb", "tinystm-wt", "tl2"] {
        for threads in [1usize, 2] {
            run.records
                .push(record(experiment, backend, threads, 50_000.0 * scale));
        }
    }
    std::fs::write(dir.join(format!("{experiment}.jsonl")), run.to_jsonl()).unwrap();
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stm-perf-gate-{}-{tag}", std::process::id()));
    // A fresh directory per test invocation; stale files would corrupt
    // the record sets, so clear any leftover.
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn unchanged_run_passes_gate_via_files() {
    let root = temp_dir("unchanged");
    let baseline = root.join("baselines");
    let current = root.join("current");
    write_set(&baseline, "fig02", 1.0);
    write_set(&baseline, "fig03", 1.0);
    write_set(&current, "fig02", 1.0);
    write_set(&current, "fig03", 1.0);

    let base = load_records(&baseline).unwrap();
    let cur = load_records(&current).unwrap();
    assert_eq!(base.len(), 12, "2 experiments x 3 backends x 2 threads");
    let report = diff_records(&base, &cur, &Tolerance::default());
    assert_eq!(report.exit_code(true, false), 0);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn degraded_run_fails_gate_via_files() {
    let root = temp_dir("degraded");
    let baseline = root.join("baselines");
    let current = root.join("current");
    write_set(&baseline, "fig02", 1.0);
    // 40% of baseline throughput: outside even a wide 50% band.
    write_set(&current, "fig02", 0.4);

    let base = load_records(&baseline).unwrap();
    let cur = load_records(&current).unwrap();
    let wide = Tolerance {
        throughput_drop: 0.5,
        ..Tolerance::default()
    };
    let report = diff_records(&base, &cur, &wide);
    assert_eq!(report.exit_code(false, false), 1);
    assert!(report.regressions().count() >= 1);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn loader_rejects_empty_directory() {
    let root = temp_dir("empty");
    std::fs::create_dir_all(&root).unwrap();
    assert!(load_records(&root).is_err());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn quick_subset_against_full_baseline_passes_without_require_all() {
    let root = temp_dir("subset");
    let baseline = root.join("baselines");
    let current = root.join("current");
    write_set(&baseline, "fig02", 1.0);
    write_set(&baseline, "fig03", 1.0);
    write_set(&current, "fig02", 1.0); // fig03 not re-measured

    let base = load_records(&baseline).unwrap();
    let cur = load_records(&current).unwrap();
    let report = diff_records(&base, &cur, &Tolerance::default());
    assert_eq!(report.missing_in_current.len(), 6);
    assert_eq!(
        report.exit_code(false, true),
        0,
        "subset passes when unmatched is allowed"
    );
    assert_eq!(
        report.exit_code(false, false),
        3,
        "unmatched configs get the distinct warning code"
    );
    assert_eq!(report.exit_code(true, false), 1, "--require-all escalates");
    assert_eq!(report.unmatched_warnings().len(), 6);
    std::fs::remove_dir_all(&root).unwrap();
}
