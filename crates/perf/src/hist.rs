//! Log-scaled fixed-bucket latency histogram.
//!
//! The open-loop driver ([`stm_harness::open_loop`]) measures one
//! latency per scheduled request; something has to aggregate millions
//! of samples into the handful of numbers a `BenchRecord` can carry.
//! This is an HDR-style histogram cut down to exactly what the perf
//! pipeline needs: fixed memory (no allocation after construction), a
//! bounded relative error, and cheap merging across worker threads.
//!
//! ## Bucketing
//!
//! Values are u64 nanoseconds. Each power-of-two octave is split into
//! `2^SUB_BITS = 8` sub-buckets, so the bucket width is at most 1/8 of
//! the value's magnitude and the midpoint representative is within
//! ~6.25% of any sample in the bucket — more than enough resolution to
//! gate p99-style metrics under a multiplicative tolerance band.
//! Values below 8 ns get exact unit buckets. The full u64 range maps
//! into [`BUCKETS`] = 496 slots, so the whole histogram is ~4 KiB.

use std::collections::BTreeMap;
// The bucket map is shared with the telemetry plane's concurrent
// `AtomicHist` (one source of truth for boundaries ⇒ comparable
// percentiles across the perf pipeline and the metrics exposition).
use stm_telemetry::buckets::{bucket_width, index_for, lower_bound};

/// Total bucket count covering the full u64 range.
pub const BUCKETS: usize = stm_telemetry::buckets::BUCKETS;

/// Fixed-size log-scaled histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one latency sample in nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[index_for(nanos)] += 1;
        self.count += 1;
        self.sum += nanos as u128;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one (per-worker merge).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at percentile `p` in `[0, 100]`: the representative
    /// (bucket midpoint) of the bucket holding the `ceil(p% · count)`-th
    /// smallest sample, clamped to the exact observed min/max so the
    /// tails never report values outside the data. When the target rank
    /// is the largest sample, the exact max is reported (so the extreme
    /// tail of a small sample set is not smeared across a wide bucket).
    /// Returns 0 when empty.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= target {
                let mid = lower_bound(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Standard percentile extras for a `BenchRecord`: p50/p95/p99/p999
    /// plus the exact mean and max, all in nanoseconds.
    pub fn extras(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("p50_ns".to_string(), self.value_at_percentile(50.0) as f64);
        m.insert("p95_ns".to_string(), self.value_at_percentile(95.0) as f64);
        m.insert("p99_ns".to_string(), self.value_at_percentile(99.0) as f64);
        m.insert("p999_ns".to_string(), self.value_at_percentile(99.9) as f64);
        m.insert("mean_ns".to_string(), self.mean());
        m.insert("max_ns".to_string(), self.max() as f64);
        m
    }
}

impl stm_harness::open_loop::LatencyRecorder for LatencyHist {
    #[inline]
    fn record_latency(&mut self, nanos: u64) {
        self.record(nanos);
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_map_is_total_and_monotone() {
        // Every bucket's lower bound maps back to that bucket, bounds
        // strictly increase, and widths tile without gaps.
        for idx in 0..BUCKETS - 1 {
            let lo = lower_bound(idx);
            assert_eq!(index_for(lo), idx, "lower bound of {idx}");
            assert_eq!(
                lower_bound(idx + 1),
                lo + bucket_width(idx),
                "gap after {idx}"
            );
        }
        assert_eq!(index_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for (q, want) in [(12.5, 0), (50.0, 3), (100.0, 7)] {
            assert_eq!(h.value_at_percentile(q), want, "q={q}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // The representative of any sample's bucket is within 1/16 of
        // the sample (half the 1/8 bucket width).
        for v in [9u64, 100, 1_000, 65_537, 1 << 40, u64::MAX / 3] {
            let idx = index_for(v);
            let mid = lower_bound(idx) + bucket_width(idx) / 2;
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHist::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100 ns .. 1 ms
        }
        for (q, exact) in [(50.0, 500_000.0), (95.0, 950_000.0), (99.0, 990_000.0)] {
            let got = h.value_at_percentile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err < 0.07, "q={q} got={got} err={err}");
        }
        assert_eq!(h.count(), 10_000);
        let mean = h.mean();
        assert!((mean - 500_050.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn tails_clamp_to_observed_extremes() {
        let mut h = LatencyHist::new();
        h.record(1_000);
        h.record(1_001);
        h.record(9_999_999);
        // p999 lands in the outlier's wide bucket; the clamp keeps it at
        // the exact max instead of the bucket midpoint.
        assert_eq!(h.value_at_percentile(99.9), 9_999_999);
        assert_eq!(h.value_at_percentile(0.0), 1_000);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 9_999_999);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut both = LatencyHist::new();
        for i in 0..1_000u64 {
            let v = (i * 7919) % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.value_at_percentile(q), both.value_at_percentile(q));
        }
    }

    #[test]
    fn extras_contain_the_gated_keys() {
        let mut h = LatencyHist::new();
        for v in 1..=100u64 {
            h.record(v * 1_000);
        }
        let e = h.extras();
        for key in ["p50_ns", "p95_ns", "p99_ns", "p999_ns", "mean_ns", "max_ns"] {
            assert!(e.contains_key(key), "missing {key}");
        }
        assert!(e["p50_ns"] <= e["p99_ns"]);
        assert!(e["p99_ns"] <= e["max_ns"]);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }
}
