//! Compare two result sets: match records by configuration key, apply
//! per-metric tolerance bands, and render a markdown comparison table.
//!
//! Tolerance policy (documented in the README):
//!
//! * `ops_per_sec` is the gated metric: a matched record regresses when
//!   `current < baseline * (1 - throughput_drop)`. Improvements never
//!   fail the gate.
//! * `aborts_per_sec` is gated only when an abort tolerance is set
//!   (noise in abort counts is far larger than in throughput), and only
//!   above an absolute floor so near-zero baselines don't amplify.
//! * Latency `extras` (keys ending `_ns`) are gated lower-is-better
//!   under `latency_increase`, when the key appears on both sides —
//!   in practice only the median (p50), because every tail key
//!   ([`VOLATILE_LATENCY_KEYS`]: p95/p99/p999/mean/max) and all
//!   non-`_ns` extras stay reported-only.
//! * Partial records (worker panics) on the *current* side always
//!   count as regressions — a crashed bench must never pass the gate.
//! * Configs present on one side only are never silently skipped: they
//!   are reported as an explicit warning list and turn a passing run's
//!   exit code into the distinct "unmatched" code (3) unless the
//!   caller opts out (`--allow-unmatched`). Under `require_all` they
//!   escalate to a hard failure. (A baseline/CI drift in `STM_MS` or
//!   `STM_THREADS` shows up exactly this way — the PR 2 gotcha.)

use crate::record::BenchRecord;
use std::collections::BTreeMap;

/// Latency extras excluded from gating even though they end in `_ns`:
/// one multi-millisecond scheduler preemption inside a measurement
/// window swings these by 10–40× between identical builds on a shared
/// 1-core host, so a band wide enough to absorb that would be
/// meaningless. p95 is volatile too: the open-loop driver counts
/// queueing delay (no coordinated omission), so a single preemption
/// backs up more than 5% of a quick-mode window's arrivals. They are
/// still emitted and reported for inspection; the median (p50) is the
/// only percentile robust enough to carry the gate.
pub const VOLATILE_LATENCY_KEYS: [&str; 5] = ["p95_ns", "p99_ns", "p999_ns", "mean_ns", "max_ns"];

/// Per-metric tolerance bands.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed fractional throughput drop (0.25 == 25% below baseline).
    pub throughput_drop: f64,
    /// Allowed fractional abort-rate increase; `None` disables gating.
    pub abort_rate_increase: Option<f64>,
    /// Abort gating only applies when the baseline rate exceeds this
    /// floor (aborts/s); below it the signal is pure noise.
    pub abort_rate_floor: f64,
    /// Allowed fractional increase for latency extras (keys ending in
    /// `_ns`, lower-is-better): a matched extra regresses when
    /// `current > baseline * (1 + latency_increase)`. `None` disables
    /// extras gating. Extras whose keys do not end in `_ns` (counters,
    /// config echoes, ratios) are never gated — they carry no
    /// universal "which direction is worse" convention.
    ///
    /// The default mirrors the throughput band multiplicatively: an
    /// allowed throughput *drop* of `d` corresponds to an allowed
    /// latency *inflation* of `d / (1 - d)` (the open-loop driver's
    /// latency is roughly inverse to capacity), so `d = 0.25` gives
    /// `1/3`.
    pub latency_increase: Option<f64>,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            throughput_drop: 0.25,
            abort_rate_increase: None,
            abort_rate_floor: 100.0,
            latency_increase: Some(0.25 / 0.75),
        }
    }
}

impl Tolerance {
    /// The latency band multiplicatively equivalent to a throughput
    /// drop of `d`: `d / (1 - d)` (see [`Tolerance::latency_increase`]).
    pub fn latency_band_for_drop(d: f64) -> f64 {
        d / (1.0 - d).max(f64::EPSILON)
    }
}

/// Verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the tolerance band.
    Ok,
    /// Better than baseline beyond the band (reported, never fatal).
    Improved,
    /// Worse than baseline beyond the band.
    Regressed,
}

/// One compared metric of one matched config.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The matched [`BenchRecord::config_key`].
    pub key: String,
    /// Metric name (`ops_per_sec`, `aborts_per_sec`, `partial`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed percent change relative to baseline.
    pub delta_pct: f64,
    /// The verdict under the tolerance band.
    pub verdict: Verdict,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-metric rows for matched configs.
    pub rows: Vec<DiffRow>,
    /// Configs in the baseline with no current counterpart.
    pub missing_in_current: Vec<String>,
    /// Configs in the current set with no baseline counterpart.
    pub new_in_current: Vec<String>,
}

impl DiffReport {
    /// Rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed)
    }

    /// Gate decision: true when the comparison should fail.
    pub fn failed(&self, require_all: bool) -> bool {
        self.regressions().next().is_some() || (require_all && !self.missing_in_current.is_empty())
    }

    /// Configs that matched nothing on the other side (both directions).
    pub fn unmatched(&self) -> usize {
        self.missing_in_current.len() + self.new_in_current.len()
    }

    /// Process exit code for the gate: 0 clean pass, 1 regression (or
    /// missing configs under `require_all`), 3 pass with unmatched
    /// configs (suppressed by `allow_unmatched`). Code 2 is reserved
    /// for usage/IO errors in the binary.
    pub fn exit_code(&self, require_all: bool, allow_unmatched: bool) -> i32 {
        if self.failed(require_all) {
            1
        } else if self.unmatched() > 0 && !allow_unmatched {
            3
        } else {
            0
        }
    }

    /// The warning lines for unmatched configs (one per config), ready
    /// for stderr.
    pub fn unmatched_warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for key in &self.missing_in_current {
            out.push(format!(
                "warning: baseline config not measured in current run: {key}"
            ));
        }
        for key in &self.new_in_current {
            out.push(format!("warning: measured config has no baseline: {key}"));
        }
        out
    }
}

fn pct_change(baseline: f64, current: f64) -> f64 {
    if baseline.abs() < f64::EPSILON {
        if current.abs() < f64::EPSILON {
            0.0
        } else {
            100.0
        }
    } else {
        (current - baseline) / baseline * 100.0
    }
}

/// Compare `current` against `baseline` under `tol`.
pub fn diff_records(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    tol: &Tolerance,
) -> DiffReport {
    let base_by_key: BTreeMap<String, &BenchRecord> =
        baseline.iter().map(|r| (r.config_key(), r)).collect();
    let cur_by_key: BTreeMap<String, &BenchRecord> =
        current.iter().map(|r| (r.config_key(), r)).collect();

    let mut report = DiffReport::default();
    for (key, base) in &base_by_key {
        let Some(cur) = cur_by_key.get(key) else {
            report.missing_in_current.push(key.clone());
            continue;
        };

        // Throughput: the gated metric.
        let verdict = if cur.ops_per_sec < base.ops_per_sec * (1.0 - tol.throughput_drop) {
            Verdict::Regressed
        } else if cur.ops_per_sec > base.ops_per_sec * (1.0 + tol.throughput_drop) {
            Verdict::Improved
        } else {
            Verdict::Ok
        };
        report.rows.push(DiffRow {
            key: key.clone(),
            metric: "ops_per_sec".to_string(),
            baseline: base.ops_per_sec,
            current: cur.ops_per_sec,
            delta_pct: pct_change(base.ops_per_sec, cur.ops_per_sec),
            verdict,
        });

        // Abort rate: opt-in gating above the noise floor.
        if let Some(allowed) = tol.abort_rate_increase {
            if base.aborts_per_sec > tol.abort_rate_floor {
                let verdict = if cur.aborts_per_sec > base.aborts_per_sec * (1.0 + allowed) {
                    Verdict::Regressed
                } else if cur.aborts_per_sec < base.aborts_per_sec * (1.0 - allowed) {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                report.rows.push(DiffRow {
                    key: key.clone(),
                    metric: "aborts_per_sec".to_string(),
                    baseline: base.aborts_per_sec,
                    current: cur.aborts_per_sec,
                    delta_pct: pct_change(base.aborts_per_sec, cur.aborts_per_sec),
                    verdict,
                });
            }
        }

        // Latency extras (`*_ns`, lower-is-better): gated when present
        // on BOTH sides — a newly added or retired percentile is a
        // schema change, not a regression. Other extras stay
        // reported-only, as do the tail keys
        // ([`VOLATILE_LATENCY_KEYS`]): on shared runners a single
        // multi-millisecond preemption swings p95/p99/p999/mean/max
        // by 10–40× between otherwise identical runs, so gating them
        // would only produce flakes.
        if let Some(allowed) = tol.latency_increase {
            for (name, &base_v) in &base.extras {
                if !name.ends_with("_ns") || VOLATILE_LATENCY_KEYS.contains(&name.as_str()) {
                    continue;
                }
                let Some(&cur_v) = cur.extras.get(name) else {
                    continue;
                };
                let verdict = if cur_v > base_v * (1.0 + allowed) {
                    Verdict::Regressed
                } else if cur_v * (1.0 + allowed) < base_v {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                report.rows.push(DiffRow {
                    key: key.clone(),
                    metric: format!("extras.{name}"),
                    baseline: base_v,
                    current: cur_v,
                    delta_pct: pct_change(base_v, cur_v),
                    verdict,
                });
            }
        }

        // A crashed current run never passes, whatever its numbers say.
        if cur.is_partial() {
            report.rows.push(DiffRow {
                key: key.clone(),
                metric: "partial".to_string(),
                baseline: base.worker_panics as f64,
                current: cur.worker_panics as f64,
                delta_pct: 0.0,
                verdict: Verdict::Regressed,
            });
        }
    }
    for key in cur_by_key.keys() {
        if !base_by_key.contains_key(key) {
            report.new_in_current.push(key.clone());
        }
    }
    report
}

/// Render the report as a markdown document (table plus notes).
pub fn render_markdown(report: &DiffReport, tol: &Tolerance) -> String {
    let mut out = String::new();
    out.push_str("## perf-diff report\n\n");
    out.push_str(&format!(
        "Tolerance: throughput −{:.0}%{}{}\n\n",
        tol.throughput_drop * 100.0,
        match tol.abort_rate_increase {
            Some(a) => format!(
                ", abort rate +{:.0}% above {:.0}/s",
                a * 100.0,
                tol.abort_rate_floor
            ),
            None => ", abort rate not gated".to_string(),
        },
        match tol.latency_increase {
            Some(l) => format!(", latency extras (*_ns, median only) +{:.0}%", l * 100.0),
            None => ", latency extras not gated".to_string(),
        }
    ));
    out.push_str("| config | metric | baseline | current | Δ% | verdict |\n");
    out.push_str("|---|---|---:|---:|---:|---|\n");
    for row in &report.rows {
        let verdict = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "**REGRESSED**",
        };
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:+.1} | {} |\n",
            row.key, row.metric, row.baseline, row.current, row.delta_pct, verdict
        ));
    }
    if !report.missing_in_current.is_empty() {
        out.push_str("\nConfigs in baseline but not measured now:\n");
        for key in &report.missing_in_current {
            out.push_str(&format!("- {key}\n"));
        }
    }
    if !report.new_in_current.is_empty() {
        out.push_str("\nConfigs measured now with no baseline (consider refreshing):\n");
        for key in &report.new_in_current {
            out.push_str(&format!("- {key}\n"));
        }
    }
    let regressions = report.regressions().count();
    out.push_str(&format!(
        "\n{} matched metric(s), {} regression(s).\n",
        report.rows.len(),
        regressions
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    fn with_throughput(panel: &str, threads: usize, ops: f64) -> BenchRecord {
        let mut r = sample_record(panel, "tinystm-wb", threads);
        r.ops_per_sec = ops;
        r
    }

    #[test]
    fn unchanged_run_passes() {
        let base = vec![
            with_throughput("a", 1, 1000.0),
            with_throughput("a", 2, 1500.0),
        ];
        let report = diff_records(&base, &base, &Tolerance::default());
        assert!(!report.failed(true));
        assert_eq!(report.exit_code(true, false), 0);
        assert_eq!(report.unmatched(), 0);
        assert!(report.unmatched_warnings().is_empty());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn drop_beyond_band_regresses_and_within_band_passes() {
        let tol = Tolerance {
            throughput_drop: 0.25,
            ..Tolerance::default()
        };
        let base = vec![with_throughput("a", 1, 1000.0)];
        // 80% of baseline: inside the 25% band.
        let ok = vec![with_throughput("a", 1, 800.0)];
        assert!(!diff_records(&base, &ok, &tol).failed(true));
        // 70% of baseline: outside the band.
        let bad = vec![with_throughput("a", 1, 700.0)];
        let report = diff_records(&base, &bad, &tol);
        assert!(report.failed(false));
        assert_eq!(report.exit_code(false, false), 1);
        let row = report.regressions().next().unwrap();
        assert_eq!(row.metric, "ops_per_sec");
        assert!((row.delta_pct - -30.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_never_fails() {
        let base = vec![with_throughput("a", 1, 1000.0)];
        let faster = vec![with_throughput("a", 1, 5000.0)];
        let report = diff_records(&base, &faster, &Tolerance::default());
        assert!(!report.failed(true));
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn missing_config_fails_only_under_require_all() {
        let base = vec![
            with_throughput("a", 1, 1000.0),
            with_throughput("a", 2, 1000.0),
        ];
        let cur = vec![with_throughput("a", 1, 1000.0)];
        let report = diff_records(&base, &cur, &Tolerance::default());
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.failed(false), "subset runs pass by default");
        assert!(report.failed(true), "require_all escalates missing configs");
        // But never silently: the pass carries the distinct warning
        // exit code unless explicitly allowed.
        assert_eq!(report.exit_code(false, false), 3);
        assert_eq!(report.exit_code(false, true), 0);
        assert_eq!(report.unmatched_warnings().len(), 1);
        assert!(report.unmatched_warnings()[0].contains("not measured"));
    }

    #[test]
    fn new_config_is_reported_but_never_fatal() {
        let base = vec![with_throughput("a", 1, 1000.0)];
        let cur = vec![
            with_throughput("a", 1, 1000.0),
            with_throughput("b", 1, 9.0),
        ];
        let report = diff_records(&base, &cur, &Tolerance::default());
        assert_eq!(report.new_in_current.len(), 1);
        assert!(!report.failed(true));
        assert_eq!(report.exit_code(true, false), 3, "warned, not failed");
        assert!(report.unmatched_warnings()[0].contains("no baseline"));
    }

    #[test]
    fn abort_gating_is_opt_in_and_floored() {
        let mut base = with_throughput("a", 1, 1000.0);
        base.aborts_per_sec = 50.0; // below the 100/s floor
        let mut cur = base.clone();
        cur.aborts_per_sec = 5000.0;
        let tol = Tolerance {
            abort_rate_increase: Some(0.5),
            ..Tolerance::default()
        };
        // Below the floor: not gated even when enabled.
        assert!(!diff_records(&[base.clone()], &[cur.clone()], &tol).failed(true));
        // Above the floor: gated.
        base.aborts_per_sec = 1000.0;
        assert!(diff_records(&[base.clone()], &[cur.clone()], &tol).failed(false));
        // Disabled (default): never gated.
        assert!(!diff_records(&[base], &[cur], &Tolerance::default()).failed(true));
    }

    #[test]
    fn partial_current_record_always_regresses() {
        let base = with_throughput("a", 1, 1000.0);
        let mut cur = base.clone();
        cur.worker_panics = 1;
        let report = diff_records(&[base], &[cur], &Tolerance::default());
        assert!(report.failed(false));
        assert!(report.rows.iter().any(|r| r.metric == "partial"));
    }

    #[test]
    fn markdown_mentions_regressed_rows() {
        let base = vec![with_throughput("a", 1, 1000.0)];
        let bad = vec![with_throughput("a", 1, 100.0)];
        let tol = Tolerance::default();
        let report = diff_records(&base, &bad, &tol);
        let md = render_markdown(&report, &tol);
        assert!(md.contains("**REGRESSED**"), "{md}");
        assert!(md.contains("| ops_per_sec |"), "{md}");
        assert!(md.contains("1 regression(s)"), "{md}");
    }

    #[test]
    fn latency_extras_gate_lower_is_better() {
        let mut base = with_throughput("a", 1, 1000.0);
        base.extras.insert("p50_ns".to_string(), 1_000_000.0);
        let mut cur = base.clone();
        let tol = Tolerance::default(); // latency band 1/3

        // Within the band: +30% latency passes.
        cur.extras.insert("p50_ns".to_string(), 1_300_000.0);
        assert!(!diff_records(&[base.clone()], &[cur.clone()], &tol).failed(true));

        // Beyond the band: +50% regresses, and the row names the extra.
        cur.extras.insert("p50_ns".to_string(), 1_500_000.0);
        let report = diff_records(&[base.clone()], &[cur.clone()], &tol);
        assert!(report.failed(false));
        let row = report.regressions().next().unwrap();
        assert_eq!(row.metric, "extras.p50_ns");

        // A latency *improvement* never fails.
        cur.extras.insert("p50_ns".to_string(), 100_000.0);
        let report = diff_records(&[base.clone()], &[cur.clone()], &tol);
        assert!(!report.failed(true));
        assert!(report
            .rows
            .iter()
            .any(|r| r.metric == "extras.p50_ns" && r.verdict == Verdict::Improved));

        // Disabled: never gated.
        cur.extras.insert("p50_ns".to_string(), 9e9);
        let off = Tolerance {
            latency_increase: None,
            ..Tolerance::default()
        };
        assert!(!diff_records(&[base], &[cur], &off).failed(true));
    }

    #[test]
    fn volatile_tail_extras_are_reported_but_never_gated() {
        // One scheduler preemption can inflate p99/p999/mean/max by
        // orders of magnitude on a shared host; they are exempt even
        // though they end in `_ns`.
        let mut base = with_throughput("a", 1, 1000.0);
        let mut cur = base.clone();
        for key in VOLATILE_LATENCY_KEYS {
            base.extras.insert(key.to_string(), 10_000.0);
            cur.extras.insert(key.to_string(), 4e9);
        }
        let report = diff_records(&[base], &[cur], &Tolerance::default());
        assert!(!report.failed(true), "volatile tails must not gate");
        assert!(!report.rows.iter().any(|r| r.metric.starts_with("extras.")));
    }

    #[test]
    fn non_latency_extras_are_exempt() {
        let mut base = with_throughput("a", 1, 1000.0);
        base.extras.insert("clock_conflicts".to_string(), 10.0);
        base.extras.insert("locks_log2".to_string(), 16.0);
        let mut cur = base.clone();
        cur.extras.insert("clock_conflicts".to_string(), 1e9);
        cur.extras.insert("locks_log2".to_string(), 4.0);
        let report = diff_records(&[base], &[cur], &Tolerance::default());
        assert!(!report.failed(true), "non-_ns extras must not gate");
        assert!(!report.rows.iter().any(|r| r.metric.starts_with("extras.")));
    }

    #[test]
    fn one_sided_latency_extras_are_skipped() {
        // A percentile only present on one side is a schema change,
        // not a regression.
        let mut base = with_throughput("a", 1, 1000.0);
        base.extras.insert("p50_ns".to_string(), 1e6);
        let cur = with_throughput("a", 1, 1000.0); // no extras
        assert!(!diff_records(
            std::slice::from_ref(&base),
            std::slice::from_ref(&cur),
            &Tolerance::default()
        )
        .failed(true));
        // And the reverse direction.
        assert!(!diff_records(&[cur], &[base], &Tolerance::default()).failed(true));
    }

    #[test]
    fn latency_band_matches_throughput_band() {
        // d = 0.75 (the CI setting) allows 4× slower latency.
        let b = Tolerance::latency_band_for_drop(0.75);
        assert!((b - 3.0).abs() < 1e-9);
        // The default band mirrors the default 25% drop.
        let t = Tolerance::default();
        assert!((t.latency_increase.unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn pct_change_handles_zero_baseline() {
        assert_eq!(pct_change(0.0, 0.0), 0.0);
        assert_eq!(pct_change(0.0, 5.0), 100.0);
    }
}
