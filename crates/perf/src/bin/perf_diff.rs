//! `perf-diff` — the CI regression gate over bench result sets.
//!
//! ```text
//! perf-diff <BASELINE> <CURRENT> [options]
//!
//! <BASELINE>, <CURRENT>   a .jsonl file or a directory of them
//!   --tolerance <frac>    allowed throughput drop (default 0.25)
//!   --abort-tolerance <frac>
//!                         also gate abort rate (+frac; off by default)
//!   --require-all         fail if a baseline config was not measured
//!   --allow-unmatched     unmatched configs warn but exit 0
//!   --shape               check paper-shape invariants on CURRENT
//!   --scaling-slack <frac>    shape: max-threads vs 1-thread floor (0.5)
//!   --tl2-slack <frac>        shape: TinySTM vs TL2 floor (0.8)
//! ```
//!
//! Exit codes: 0 pass, 1 regression or shape violation, 2 usage/IO
//! error, 3 pass but some baseline/current configs matched nothing
//! (printed as a stderr warning list — typically an `STM_MS` /
//! `STM_THREADS` drift between the baseline snapshot and this run).

use std::path::PathBuf;
use std::process::ExitCode;
use stm_perf::{check_all, diff_records, load_records, render_markdown, ShapeOpts, Tolerance};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: Tolerance,
    require_all: bool,
    allow_unmatched: bool,
    shape: bool,
    shape_opts: ShapeOpts,
}

fn usage() -> String {
    "usage: perf-diff <BASELINE> <CURRENT> [--tolerance F] [--abort-tolerance F] \
     [--require-all] [--allow-unmatched] [--shape] [--scaling-slack F] [--tl2-slack F]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut tolerance = Tolerance::default();
    let mut require_all = false;
    let mut allow_unmatched = false;
    let mut shape = false;
    let mut shape_opts = ShapeOpts::default();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut frac = |name: &str| -> Result<f64, String> {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<f64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--tolerance" => {
                // One knob, two bands: the latency band tracks the
                // throughput band multiplicatively (a d-fraction drop
                // in capacity ≈ a d/(1-d) inflation in latency).
                tolerance.throughput_drop = frac("--tolerance")?;
                tolerance.latency_increase =
                    Some(Tolerance::latency_band_for_drop(tolerance.throughput_drop));
            }
            "--abort-tolerance" => tolerance.abort_rate_increase = Some(frac("--abort-tolerance")?),
            "--require-all" => require_all = true,
            "--allow-unmatched" => allow_unmatched = true,
            "--shape" => shape = true,
            "--scaling-slack" => shape_opts.scaling_slack = frac("--scaling-slack")?,
            "--tl2-slack" => shape_opts.tiny_vs_tl2_slack = frac("--tl2-slack")?,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(PathBuf::from(other)),
        }
    }
    if positional.len() != 2 {
        return Err(usage());
    }
    let mut positional = positional.into_iter();
    Ok(Args {
        baseline: positional.next().expect("checked len"),
        current: positional.next().expect("checked len"),
        tolerance,
        require_all,
        allow_unmatched,
        shape,
        shape_opts,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_records(&args.baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf-diff: baseline {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
    };
    let current = match load_records(&args.current) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf-diff: current {}: {e}", args.current.display());
            return ExitCode::from(2);
        }
    };

    let report = diff_records(&baseline, &current, &args.tolerance);
    print!("{}", render_markdown(&report, &args.tolerance));

    // Unmatched configs are never silent: warn on stderr (and, below,
    // exit 3 on an otherwise-clean run unless --allow-unmatched).
    for warning in report.unmatched_warnings() {
        eprintln!("perf-diff: {warning}");
    }

    let mut failed = report.failed(args.require_all);
    if args.shape {
        let violations = check_all(&current, &args.shape_opts);
        if violations.is_empty() {
            println!("\nShape invariants: all pass.");
        } else {
            println!("\nShape invariant violations:");
            for v in &violations {
                println!("- [{}] {}: {}", v.check, v.key, v.detail);
            }
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        let code = report.exit_code(args.require_all, args.allow_unmatched);
        debug_assert!(code == 0 || code == 3, "pass path");
        ExitCode::from(code as u8)
    }
}
