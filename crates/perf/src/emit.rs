//! The emitter the figure benches write through: each record is printed
//! as a human-readable CSV row on stdout (the pre-existing table
//! format) *and* collected into a [`BenchRun`] that `finish()` writes
//! as `<experiment>.jsonl` under the perf output directory.
//!
//! Output directory resolution: `$STM_PERF_DIR` when set, otherwise
//! `<workspace>/target/perf` (bench processes run with the package
//! directory as cwd, so a relative default would scatter files).

use crate::record::{BenchRecord, BenchRun};
use std::path::PathBuf;
use stm_harness::table::{f1, f3, i, s, SeriesWriter};

/// Where result files go (see module docs).
pub fn perf_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("STM_PERF_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    // crates/perf/../.. == the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/perf")
}

/// Collects [`BenchRecord`]s, mirroring them to stdout as CSV.
pub struct PerfEmitter {
    run: BenchRun,
    table: SeriesWriter<std::io::Stdout>,
}

/// The stdout columns every wired bench shares.
const COLUMNS: [&str; 8] = [
    "panel",
    "structure",
    "backend",
    "threads",
    "txs_per_s",
    "aborts_per_s",
    "abort_ratio",
    "panics",
];

impl PerfEmitter {
    /// Start an emitter: prints the experiment header and column row.
    pub fn new(experiment: &str, description: &str, mode: &str, point_ms: u64) -> PerfEmitter {
        let mut table = SeriesWriter::default();
        table.experiment(experiment, description);
        table.columns(&COLUMNS);
        PerfEmitter {
            run: BenchRun::new(experiment, description, mode, point_ms),
            table,
        }
    }

    /// Emit one measured point.
    pub fn record(&mut self, rec: BenchRecord) {
        self.table.row(&[
            s(rec.panel.clone()),
            s(rec.structure.clone()),
            s(rec.backend.clone()),
            i(rec.threads as u64),
            f1(rec.ops_per_sec),
            f1(rec.aborts_per_sec),
            f3(rec.abort_ratio),
            i(rec.worker_panics),
        ]);
        self.run.records.push(rec);
    }

    /// Blank separator line between stdout series (JSONL is unaffected).
    pub fn gap(&mut self) {
        self.table.gap();
    }

    /// Write `<perf_dir>/<experiment>.jsonl` and report the path on
    /// stdout. Benches call this last; failing to persist results is a
    /// hard error (the CI gate depends on the file).
    pub fn finish(mut self) -> PathBuf {
        let dir = perf_dir();
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create perf dir {}: {e}", dir.display()));
        let path = dir.join(format!("{}.jsonl", self.run.experiment));
        std::fs::write(&path, self.run.to_jsonl())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        self.table.gap();
        self.table
            .experiment(&self.run.experiment, &format!("wrote {}", path.display()));
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    #[test]
    fn perf_dir_honours_env_override() {
        // Env vars are process-global; restore to avoid cross-test bleed.
        let saved = std::env::var("STM_PERF_DIR").ok();
        std::env::set_var("STM_PERF_DIR", "/tmp/stm-perf-test");
        assert_eq!(perf_dir(), PathBuf::from("/tmp/stm-perf-test"));
        match saved {
            Some(v) => std::env::set_var("STM_PERF_DIR", v),
            None => std::env::remove_var("STM_PERF_DIR"),
        }
    }

    #[test]
    fn emitter_collects_records() {
        let mut e = PerfEmitter::new("figXX", "test", "quick", 10);
        e.record(sample_record("p", "tl2", 1));
        e.record(sample_record("p", "tl2", 2));
        e.gap();
        assert_eq!(e.run.records.len(), 2);
        assert_eq!(e.run.experiment, "figXX");
    }
}
