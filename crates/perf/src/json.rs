//! A tiny vendored-style JSON value model with a serializer and a
//! recursive-descent parser — just enough for the line-delimited bench
//! records, with no external dependencies (the build environment is
//! offline).
//!
//! Restrictions relative to full JSON, acceptable for bench records:
//! numbers are stored as `f64` (integers above 2^53 would lose
//! precision; bench counters never get there), and non-finite floats
//! serialize as `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; serialized via shortest round-trip formatting.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Fetch an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rounding), if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|v| v.max(0.0).round() as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's `Display` for f64 is shortest-round-trip.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document from `text`.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by bench
                            // records; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_line()).unwrap(), v, "round-trip of {text}");
        }
    }

    #[test]
    fn round_trips_nested() {
        let v = Json::obj([
            ("name".to_string(), Json::Str("fig02".to_string())),
            ("threads".to_string(), Json::Num(8.0)),
            (
                "series".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Null]),
            ),
            (
                "nested".to_string(),
                Json::obj([("k".to_string(), Json::Bool(true))]),
            ),
        ]);
        let line = v.to_line();
        assert!(!line.contains('\n'), "must stay on one line: {line}");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let line = v.to_line();
        assert_eq!(line, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_line(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nulL").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"héllo\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Str("héllo".to_string())])
        );
    }
}
