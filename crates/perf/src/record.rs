//! The shared bench-result schema: one [`BenchRecord`] per measured
//! point, grouped into a [`BenchRun`] per bench target, serialized as
//! line-delimited JSON (`*.jsonl`, one object per line, first line the
//! run header).
//!
//! The schema is deliberately flat and machine-independent: records are
//! matched between result sets by [`BenchRecord::config_key`], which
//! covers the workload configuration but none of the measured values,
//! so a baseline captured on one host diffs cleanly against a CI run on
//! another (with an appropriately wide tolerance).

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use stm_api::AbortReason;

/// Version stamped into every run header; bump on breaking schema
/// changes so `perf-diff` can refuse to compare incompatible files.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured point: a workload configuration plus its results.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment id (`fig02`, `ablation-contention`, ...).
    pub experiment: String,
    /// Panel / series within the experiment (`4096/20%`, `reads-256`).
    pub panel: String,
    /// Data structure under test (`rbtree`, `list`, `hot-cold`).
    pub structure: String,
    /// STM design (`tinystm-wb`, `tinystm-wt`, `tl2`).
    pub backend: String,
    /// Worker threads.
    pub threads: usize,
    /// Elements pre-populated before measurement.
    pub initial_size: u64,
    /// Keys drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Percentage of operations that are updates.
    pub update_pct: u32,
    /// Committed transactions per second — the gated metric.
    pub ops_per_sec: f64,
    /// Aborted attempts per second (Figure 4's unit).
    pub aborts_per_sec: f64,
    /// Aborts / attempts in `[0, 1]`.
    pub abort_ratio: f64,
    /// Raw commits inside the window.
    pub commits: u64,
    /// Raw aborts inside the window.
    pub aborts: u64,
    /// Measured wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Abort taxonomy, keyed by [`AbortReason::label`].
    pub aborts_by_reason: BTreeMap<String, u64>,
    /// Workers that panicked; non-zero marks the record as partial.
    pub worker_panics: u64,
    /// Bench-specific extra metrics. Keys ending in `_ns` (latency
    /// percentiles from the open-loop histogram) are gated
    /// lower-is-better by `perf-diff` when present in both baseline and
    /// current — except the volatile extreme tails
    /// ([`crate::diff::VOLATILE_LATENCY_KEYS`]); those and everything
    /// else are reported, never gated.
    pub extras: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// The identity used to match records across result sets: workload
    /// configuration only, no measured values.
    pub fn config_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|t{}|n{}|r{}|u{}",
            self.experiment,
            self.panel,
            self.structure,
            self.backend,
            self.threads,
            self.initial_size,
            self.key_range,
            self.update_pct
        )
    }

    /// True when a worker died and the counters cover a cut-short window.
    pub fn is_partial(&self) -> bool {
        self.worker_panics > 0
    }

    /// Translate a dense per-reason counter array (indexed per
    /// [`AbortReason::ALL`]) into the labelled map the schema stores.
    pub fn taxonomy_from_array(by_reason: &[u64; AbortReason::ALL.len()]) -> BTreeMap<String, u64> {
        AbortReason::ALL
            .iter()
            .zip(by_reason.iter())
            .filter(|(_, &count)| count > 0)
            .map(|(reason, &count)| (reason.label().to_string(), count))
            .collect()
    }

    fn to_json(&self) -> Json {
        let taxonomy = Json::Obj(
            self.aborts_by_reason
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        );
        let extras = Json::Obj(
            self.extras
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v)))
                .collect(),
        );
        Json::obj([
            ("kind".to_string(), Json::Str("record".to_string())),
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("panel".to_string(), Json::Str(self.panel.clone())),
            ("structure".to_string(), Json::Str(self.structure.clone())),
            ("backend".to_string(), Json::Str(self.backend.clone())),
            ("threads".to_string(), Json::Num(self.threads as f64)),
            (
                "initial_size".to_string(),
                Json::Num(self.initial_size as f64),
            ),
            ("key_range".to_string(), Json::Num(self.key_range as f64)),
            ("update_pct".to_string(), Json::Num(self.update_pct as f64)),
            ("ops_per_sec".to_string(), Json::Num(self.ops_per_sec)),
            ("aborts_per_sec".to_string(), Json::Num(self.aborts_per_sec)),
            ("abort_ratio".to_string(), Json::Num(self.abort_ratio)),
            ("commits".to_string(), Json::Num(self.commits as f64)),
            ("aborts".to_string(), Json::Num(self.aborts as f64)),
            ("elapsed_ms".to_string(), Json::Num(self.elapsed_ms)),
            ("aborts_by_reason".to_string(), taxonomy),
            (
                "worker_panics".to_string(),
                Json::Num(self.worker_panics as f64),
            ),
            ("extras".to_string(), extras),
        ])
    }

    fn from_json(v: &Json) -> Result<BenchRecord, SchemaError> {
        let str_field = |key: &str| -> Result<String, SchemaError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SchemaError::missing(key))
        };
        let num_field = |key: &str| -> Result<f64, SchemaError> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SchemaError::missing(key))
        };
        let u64_field = |key: &str| -> Result<u64, SchemaError> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| SchemaError::missing(key))
        };
        let map_field = |key: &str| -> BTreeMap<String, Json> {
            match v.get(key) {
                Some(Json::Obj(map)) => map.clone(),
                _ => BTreeMap::new(),
            }
        };
        Ok(BenchRecord {
            experiment: str_field("experiment")?,
            panel: str_field("panel")?,
            structure: str_field("structure")?,
            backend: str_field("backend")?,
            threads: u64_field("threads")? as usize,
            initial_size: u64_field("initial_size")?,
            key_range: u64_field("key_range")?,
            update_pct: u64_field("update_pct")? as u32,
            ops_per_sec: num_field("ops_per_sec")?,
            aborts_per_sec: num_field("aborts_per_sec")?,
            abort_ratio: num_field("abort_ratio")?,
            commits: u64_field("commits")?,
            aborts: u64_field("aborts")?,
            elapsed_ms: num_field("elapsed_ms")?,
            aborts_by_reason: map_field("aborts_by_reason")
                .into_iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k, n)))
                .collect(),
            // Required like every other field: a record missing its
            // partial-run marker must be rejected, not assumed healthy.
            worker_panics: u64_field("worker_panics")?,
            extras: map_field("extras")
                .into_iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
                .collect(),
        })
    }
}

/// One bench target's worth of records plus run metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Experiment id, also the output file stem.
    pub experiment: String,
    /// Human description (mirrors the stdout header).
    pub description: String,
    /// `quick` or `full` (paper-scale) measurement mode.
    pub mode: String,
    /// Milliseconds per measured point.
    pub point_ms: u64,
    /// The measured points.
    pub records: Vec<BenchRecord>,
}

impl BenchRun {
    /// Empty run with metadata.
    pub fn new(experiment: &str, description: &str, mode: &str, point_ms: u64) -> BenchRun {
        BenchRun {
            experiment: experiment.to_string(),
            description: description.to_string(),
            mode: mode.to_string(),
            point_ms,
            records: Vec::new(),
        }
    }

    /// Serialize as line-delimited JSON: header line, then one record
    /// per line.
    pub fn to_jsonl(&self) -> String {
        let header = Json::obj([
            ("kind".to_string(), Json::Str("run".to_string())),
            (
                "schema_version".to_string(),
                Json::Num(SCHEMA_VERSION as f64),
            ),
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            (
                "description".to_string(),
                Json::Str(self.description.clone()),
            ),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("point_ms".to_string(), Json::Num(self.point_ms as f64)),
        ]);
        let mut out = header.to_line();
        out.push('\n');
        for rec in &self.records {
            out.push_str(&rec.to_json().to_line());
            out.push('\n');
        }
        out
    }

    /// Parse a `.jsonl` document produced by [`BenchRun::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<BenchRun, SchemaError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or_else(|| SchemaError::missing("header"))?;
        let header = json::parse(header_line)?;
        if header.get("kind").and_then(Json::as_str) != Some("run") {
            return Err(SchemaError::other("first line is not a run header"));
        }
        let version = header
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| SchemaError::missing("schema_version"))?;
        if version != SCHEMA_VERSION {
            return Err(SchemaError::other(&format!(
                "schema version {version} != supported {SCHEMA_VERSION}"
            )));
        }
        let mut run = BenchRun {
            experiment: header
                .get("experiment")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            description: header
                .get("description")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            mode: header
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            point_ms: header.get("point_ms").and_then(Json::as_u64).unwrap_or(0),
            records: Vec::new(),
        };
        for line in lines {
            let v = json::parse(line)?;
            match v.get("kind").and_then(Json::as_str) {
                Some("record") => run.records.push(BenchRecord::from_json(&v)?),
                other => {
                    return Err(SchemaError::other(&format!(
                        "unexpected line kind {other:?}"
                    )))
                }
            }
        }
        Ok(run)
    }
}

/// A schema or parse failure while reading a result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Human-readable message.
    pub message: String,
}

impl SchemaError {
    fn missing(field: &str) -> SchemaError {
        SchemaError {
            message: format!("missing or mistyped field '{field}'"),
        }
    }

    fn other(message: &str) -> SchemaError {
        SchemaError {
            message: message.to_string(),
        }
    }
}

impl From<json::ParseError> for SchemaError {
    fn from(e: json::ParseError) -> SchemaError {
        SchemaError {
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Load every record from `path`: a single `.jsonl` file or a directory
/// of them (sorted by file name for deterministic output).
pub fn load_records(path: &Path) -> io::Result<Vec<BenchRecord>> {
    let mut files: Vec<PathBuf> = Vec::new();
    if path.is_dir() {
        for entry in std::fs::read_dir(path)? {
            let p = entry?.path();
            if p.extension().is_some_and(|e| e == "jsonl") {
                files.push(p);
            }
        }
        files.sort();
    } else {
        files.push(path.to_path_buf());
    }
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .jsonl result files under {}", path.display()),
        ));
    }
    let mut records = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file)?;
        let run = BenchRun::from_jsonl(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {}", file.display(), e.message),
            )
        })?;
        records.extend(run.records);
    }
    Ok(records)
}

#[cfg(test)]
pub(crate) fn sample_record(panel: &str, backend: &str, threads: usize) -> BenchRecord {
    BenchRecord {
        experiment: "figXX".to_string(),
        panel: panel.to_string(),
        structure: "rbtree".to_string(),
        backend: backend.to_string(),
        threads,
        initial_size: 4096,
        key_range: 8192,
        update_pct: 20,
        ops_per_sec: 100_000.0,
        aborts_per_sec: 250.5,
        abort_ratio: 0.0025,
        commits: 50_000,
        aborts: 125,
        elapsed_ms: 500.25,
        aborts_by_reason: [
            ("read-locked".to_string(), 100),
            ("write-locked".to_string(), 25),
        ]
        .into_iter()
        .collect(),
        worker_panics: 0,
        extras: [("wasted_reads_per_abort".to_string(), 3.5)]
            .into_iter()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample_record("4096/20%", "tinystm-wb", 4);
        let parsed = BenchRecord::from_json(&json::parse(&rec.to_json().to_line()).unwrap());
        assert_eq!(parsed.unwrap(), rec);
    }

    #[test]
    fn run_round_trips_through_jsonl() {
        let mut run = BenchRun::new("figXX", "sample experiment", "quick", 120);
        run.records.push(sample_record("a", "tinystm-wb", 1));
        run.records.push(sample_record("a", "tl2", 8));
        let text = run.to_jsonl();
        assert_eq!(text.lines().count(), 3, "header + 2 records");
        assert_eq!(BenchRun::from_jsonl(&text).unwrap(), run);
    }

    #[test]
    fn config_key_ignores_measured_values() {
        let mut a = sample_record("p", "tl2", 2);
        let mut b = a.clone();
        b.ops_per_sec = 1.0;
        b.commits = 7;
        assert_eq!(a.config_key(), b.config_key());
        a.threads = 4;
        assert_ne!(a.config_key(), b.config_key());
    }

    #[test]
    fn taxonomy_array_conversion_drops_zero_rows() {
        let mut by_reason = [0u64; AbortReason::ALL.len()];
        by_reason[AbortReason::ReadLocked.index()] = 3;
        by_reason[AbortReason::Explicit.index()] = 1;
        let map = BenchRecord::taxonomy_from_array(&by_reason);
        assert_eq!(map.len(), 2);
        assert_eq!(map["read-locked"], 3);
        assert_eq!(map["explicit"], 1);
    }

    #[test]
    fn rejects_record_missing_worker_panics() {
        let mut line = sample_record("p", "tl2", 1).to_json().to_line();
        line = line.replace("\"worker_panics\":0", "\"worker_panics\":null");
        let err = BenchRecord::from_json(&json::parse(&line).unwrap()).unwrap_err();
        assert!(err.message.contains("worker_panics"), "{}", err.message);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = "{\"kind\":\"run\",\"schema_version\":99,\"experiment\":\"x\"}\n";
        let err = BenchRun::from_jsonl(text).unwrap_err();
        assert!(err.message.contains("schema version"), "{}", err.message);
    }

    #[test]
    fn rejects_headerless_file() {
        let rec = sample_record("p", "tl2", 1).to_json().to_line();
        assert!(BenchRun::from_jsonl(&format!("{rec}\n")).is_err());
    }

    #[test]
    fn partial_flag_follows_worker_panics() {
        let mut rec = sample_record("p", "tl2", 1);
        assert!(!rec.is_partial());
        rec.worker_panics = 1;
        assert!(rec.is_partial());
    }
}
