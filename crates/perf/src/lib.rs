//! # stm-perf — machine-readable bench results and the regression gate
//!
//! The figure benches used to print human-oriented tables that nothing
//! recorded or compared; the paper's claims (scaling, TinySTM ≥ TL2,
//! write-through vs write-back abort profiles) were unverifiable. This
//! crate makes throughput trajectories first-class, diffable artifacts:
//!
//! * [`record`] — the [`record::BenchRecord`]/[`record::BenchRun`]
//!   schema plus line-delimited JSON persistence;
//! * [`json`] — the tiny vendored-style JSON serializer/parser (the
//!   build environment is offline, so no serde);
//! * [`emit`] — the [`emit::PerfEmitter`] the wired benches write
//!   through (stdout CSV + `target/perf/<experiment>.jsonl`);
//! * [`hist`] — the log-scaled fixed-bucket latency histogram the
//!   open-loop driver fills, summarized into percentile `extras`;
//! * [`diff`] — config-keyed comparison with per-metric tolerance
//!   bands and a markdown report;
//! * [`shape`] — opt-in paper-shape invariants (scaling monotonicity,
//!   TinySTM vs TL2, abort-profile divergence per Section 3.1).
//!
//! The `perf-diff` binary glues these together:
//!
//! ```text
//! perf-diff baselines/ target/perf [--tolerance 0.25] [--shape] ...
//! ```
//!
//! exiting non-zero when a throughput record degrades beyond tolerance
//! (or, with `--shape`, when an invariant is violated). `baselines/`
//! holds checked-in snapshots; see `baselines/README.md` for the
//! refresh procedure.

pub mod diff;
pub mod emit;
pub mod hist;
pub mod json;
pub mod record;
pub mod shape;

pub use diff::{
    diff_records, render_markdown, DiffReport, Tolerance, Verdict, VOLATILE_LATENCY_KEYS,
};
pub use emit::{perf_dir, PerfEmitter};
pub use hist::LatencyHist;
pub use record::{load_records, BenchRecord, BenchRun, SCHEMA_VERSION};
pub use shape::{check_all, ShapeOpts, ShapeViolation};
