//! Paper-shape invariants: structural claims of the paper that a result
//! set can be checked against, independent of absolute numbers.
//!
//! * **Scaling** (Figures 2–3): within one series, throughput at the
//!   highest thread count must not collapse below the single-thread
//!   point by more than a slack factor. On the paper's 8-core Xeon this
//!   asserts real scaling; on a single-core CI host the slack has to be
//!   generous, which is why the checks are opt-in (`perf-diff
//!   --shape`).
//! * **TinySTM ≥ TL2** (Figures 2–3): at every matched configuration
//!   the better TinySTM variant must reach at least `slack ×` the TL2
//!   throughput.
//! * **Abort-profile divergence** (Section 3.1, Figure 4): under
//!   contention, write-through and write-back produce *different* abort
//!   taxonomies (write-through detects conflicts at encounter time and
//!   via incarnation changes; write-back aborts on validation). The
//!   check compares normalized abort-reason distributions at matched
//!   configs and requires an L1 distance above a threshold.

use crate::record::BenchRecord;
use std::collections::BTreeMap;

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct ShapeViolation {
    /// Which check fired (`scaling`, `tiny-vs-tl2`, `abort-divergence`).
    pub check: String,
    /// The series or config the violation is about.
    pub key: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// Knobs for the shape checks.
#[derive(Debug, Clone, Copy)]
pub struct ShapeOpts {
    /// Throughput at max threads must be ≥ `scaling_slack ×` the
    /// single-thread throughput (1.0 demands true non-degradation;
    /// < 1.0 tolerates single-core hosts).
    pub scaling_slack: f64,
    /// Best TinySTM variant must be ≥ `tiny_vs_tl2_slack ×` TL2.
    pub tiny_vs_tl2_slack: f64,
    /// Minimum L1 distance between WT and WB abort distributions.
    pub divergence_min_l1: f64,
    /// Ignore configs with fewer aborts than this on either side
    /// (distributions over a handful of aborts are noise).
    pub divergence_min_aborts: u64,
}

impl Default for ShapeOpts {
    fn default() -> ShapeOpts {
        ShapeOpts {
            scaling_slack: 0.5,
            tiny_vs_tl2_slack: 0.8,
            divergence_min_l1: 0.25,
            divergence_min_aborts: 200,
        }
    }
}

/// Run every shape check over `records`.
pub fn check_all(records: &[BenchRecord], opts: &ShapeOpts) -> Vec<ShapeViolation> {
    let mut v = check_scaling(records, opts);
    v.extend(check_tiny_vs_tl2(records, opts));
    v.extend(check_abort_divergence(records, opts));
    v
}

fn series_key(r: &BenchRecord) -> String {
    format!(
        "{}|{}|{}|{}|n{}|u{}",
        r.experiment, r.panel, r.structure, r.backend, r.initial_size, r.update_pct
    )
}

fn config_sans_backend(r: &BenchRecord) -> String {
    format!(
        "{}|{}|{}|t{}|n{}|u{}",
        r.experiment, r.panel, r.structure, r.threads, r.initial_size, r.update_pct
    )
}

/// The paper's comparative claims (Figures 2–4, Section 3.1) are about
/// the intset structures. Synthetic ablation workloads — e.g. the
/// forced-overlap `hot-cold` cell, whose bench header documents that
/// its throughput ordering *inverts* on a single-core host and whose
/// conflict point is a load under both access strategies — are out of
/// scope for the backend-comparison checks.
fn in_paper_scope(r: &BenchRecord) -> bool {
    matches!(r.structure.as_str(), "rbtree" | "list" | "list-overwrite")
}

/// Scaling check (see module docs).
pub fn check_scaling(records: &[BenchRecord], opts: &ShapeOpts) -> Vec<ShapeViolation> {
    let mut series: BTreeMap<String, Vec<&BenchRecord>> = BTreeMap::new();
    for r in records {
        series.entry(series_key(r)).or_default().push(r);
    }
    let mut violations = Vec::new();
    for (key, mut points) in series {
        points.sort_by_key(|r| r.threads);
        let (Some(first), Some(last)) = (points.first(), points.last()) else {
            continue;
        };
        if first.threads == last.threads {
            continue; // single point, nothing to check
        }
        let floor = first.ops_per_sec * opts.scaling_slack;
        if last.ops_per_sec < floor {
            violations.push(ShapeViolation {
                check: "scaling".to_string(),
                key,
                detail: format!(
                    "throughput at {} threads ({:.1}/s) fell below {:.2}x the \
                     {}-thread point ({:.1}/s)",
                    last.threads,
                    last.ops_per_sec,
                    opts.scaling_slack,
                    first.threads,
                    first.ops_per_sec
                ),
            });
        }
    }
    violations
}

/// TinySTM-above-TL2 check (see module docs).
pub fn check_tiny_vs_tl2(records: &[BenchRecord], opts: &ShapeOpts) -> Vec<ShapeViolation> {
    let mut configs: BTreeMap<String, Vec<&BenchRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| in_paper_scope(r)) {
        configs.entry(config_sans_backend(r)).or_default().push(r);
    }
    let mut violations = Vec::new();
    for (key, points) in configs {
        let tl2 = points.iter().find(|r| r.backend == "tl2");
        let best_tiny = points
            .iter()
            .filter(|r| r.backend.starts_with("tinystm"))
            .map(|r| r.ops_per_sec)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            });
        let (Some(tl2), Some(tiny)) = (tl2, best_tiny) else {
            continue;
        };
        if tiny < tl2.ops_per_sec * opts.tiny_vs_tl2_slack {
            violations.push(ShapeViolation {
                check: "tiny-vs-tl2".to_string(),
                key,
                detail: format!(
                    "best TinySTM ({tiny:.1}/s) below {:.2}x TL2 ({:.1}/s)",
                    opts.tiny_vs_tl2_slack, tl2.ops_per_sec
                ),
            });
        }
    }
    violations
}

/// L1 distance between two normalized abort-reason distributions.
fn taxonomy_l1(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> f64 {
    let total_a: u64 = a.values().sum();
    let total_b: u64 = b.values().sum();
    if total_a == 0 || total_b == 0 {
        return 0.0;
    }
    let mut reasons: Vec<&String> = a.keys().chain(b.keys()).collect();
    reasons.sort();
    reasons.dedup();
    reasons
        .into_iter()
        .map(|reason| {
            let fa = a.get(reason).copied().unwrap_or(0) as f64 / total_a as f64;
            let fb = b.get(reason).copied().unwrap_or(0) as f64 / total_b as f64;
            (fa - fb).abs()
        })
        .sum()
}

/// Abort-profile divergence check (see module docs).
pub fn check_abort_divergence(records: &[BenchRecord], opts: &ShapeOpts) -> Vec<ShapeViolation> {
    let mut configs: BTreeMap<String, (Option<&BenchRecord>, Option<&BenchRecord>)> =
        BTreeMap::new();
    for r in records.iter().filter(|r| in_paper_scope(r)) {
        let slot = configs.entry(config_sans_backend(r)).or_default();
        match r.backend.as_str() {
            "tinystm-wt" => slot.0 = Some(r),
            "tinystm-wb" => slot.1 = Some(r),
            _ => {}
        }
    }
    let mut violations = Vec::new();
    for (key, (wt, wb)) in configs {
        let (Some(wt), Some(wb)) = (wt, wb) else {
            continue;
        };
        if wt.aborts < opts.divergence_min_aborts || wb.aborts < opts.divergence_min_aborts {
            continue;
        }
        let l1 = taxonomy_l1(&wt.aborts_by_reason, &wb.aborts_by_reason);
        if l1 < opts.divergence_min_l1 {
            violations.push(ShapeViolation {
                check: "abort-divergence".to_string(),
                key,
                detail: format!(
                    "WT and WB abort taxonomies nearly identical \
                     (L1 distance {l1:.3} < {:.3}; WT {:?}, WB {:?})",
                    opts.divergence_min_l1, wt.aborts_by_reason, wb.aborts_by_reason
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::sample_record;

    fn rec(backend: &str, threads: usize, ops: f64) -> BenchRecord {
        let mut r = sample_record("p", backend, threads);
        r.ops_per_sec = ops;
        r
    }

    #[test]
    fn scaling_violation_detected_and_slack_respected() {
        let opts = ShapeOpts {
            scaling_slack: 0.5,
            ..ShapeOpts::default()
        };
        // 8 threads at 60% of 1 thread: above the 0.5 slack → fine.
        let fine = vec![rec("tl2", 1, 1000.0), rec("tl2", 8, 600.0)];
        assert!(check_scaling(&fine, &opts).is_empty());
        // 8 threads at 30%: collapse → violation.
        let bad = vec![rec("tl2", 1, 1000.0), rec("tl2", 8, 300.0)];
        let v = check_scaling(&bad, &opts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "scaling");
    }

    #[test]
    fn single_point_series_never_violates_scaling() {
        let one = vec![rec("tl2", 4, 10.0)];
        assert!(check_scaling(&one, &ShapeOpts::default()).is_empty());
    }

    #[test]
    fn tiny_vs_tl2_uses_best_variant_and_slack() {
        let opts = ShapeOpts {
            tiny_vs_tl2_slack: 0.8,
            ..ShapeOpts::default()
        };
        // WT is slow but WB beats TL2: fine.
        let fine = vec![
            rec("tinystm-wb", 4, 1200.0),
            rec("tinystm-wt", 4, 100.0),
            rec("tl2", 4, 1000.0),
        ];
        assert!(check_tiny_vs_tl2(&fine, &opts).is_empty());
        // Both TinySTM variants below 0.8 × TL2: violation.
        let bad = vec![
            rec("tinystm-wb", 4, 700.0),
            rec("tinystm-wt", 4, 650.0),
            rec("tl2", 4, 1000.0),
        ];
        let v = check_tiny_vs_tl2(&bad, &opts);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "tiny-vs-tl2");
    }

    #[test]
    fn synthetic_structures_are_out_of_scope_for_backend_checks() {
        // A hot-cold cell where TL2 wins and WT/WB taxonomies coincide:
        // both checks must ignore it (the bench documents the inversion).
        let mut wt = rec("tinystm-wt", 8, 100.0);
        let mut wb = rec("tinystm-wb", 8, 100.0);
        let mut tl2 = rec("tl2", 8, 10_000.0);
        for r in [&mut wt, &mut wb, &mut tl2] {
            r.structure = "hot-cold".to_string();
            r.aborts = 1000;
            r.aborts_by_reason = [("read-locked".to_string(), 1000)].into_iter().collect();
        }
        let records = vec![wt, wb, tl2];
        assert!(check_tiny_vs_tl2(&records, &ShapeOpts::default()).is_empty());
        assert!(check_abort_divergence(&records, &ShapeOpts::default()).is_empty());
    }

    #[test]
    fn divergence_passes_when_profiles_differ() {
        let mut wt = rec("tinystm-wt", 4, 100.0);
        wt.aborts = 1000;
        wt.aborts_by_reason = [
            ("write-locked".to_string(), 900),
            ("read-locked".to_string(), 100),
        ]
        .into_iter()
        .collect();
        let mut wb = rec("tinystm-wb", 4, 100.0);
        wb.aborts = 1000;
        wb.aborts_by_reason = [
            ("validation-failed".to_string(), 800),
            ("write-locked".to_string(), 200),
        ]
        .into_iter()
        .collect();
        assert!(check_abort_divergence(&[wt, wb], &ShapeOpts::default()).is_empty());
    }

    #[test]
    fn divergence_fires_when_profiles_coincide() {
        let taxonomy: BTreeMap<String, u64> =
            [("write-locked".to_string(), 500)].into_iter().collect();
        let mut wt = rec("tinystm-wt", 4, 100.0);
        wt.aborts = 500;
        wt.aborts_by_reason = taxonomy.clone();
        let mut wb = rec("tinystm-wb", 4, 100.0);
        wb.aborts = 500;
        wb.aborts_by_reason = taxonomy;
        let v = check_abort_divergence(&[wt, wb], &ShapeOpts::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "abort-divergence");
    }

    #[test]
    fn divergence_skips_low_abort_counts() {
        let taxonomy: BTreeMap<String, u64> =
            [("write-locked".to_string(), 5)].into_iter().collect();
        let mut wt = rec("tinystm-wt", 4, 100.0);
        wt.aborts = 5;
        wt.aborts_by_reason = taxonomy.clone();
        let mut wb = rec("tinystm-wb", 4, 100.0);
        wb.aborts = 5;
        wb.aborts_by_reason = taxonomy;
        assert!(check_abort_divergence(&[wt, wb], &ShapeOpts::default()).is_empty());
    }

    #[test]
    fn l1_distance_is_zero_for_identical_and_two_for_disjoint() {
        let a: BTreeMap<String, u64> = [("x".to_string(), 10)].into_iter().collect();
        let b: BTreeMap<String, u64> = [("y".to_string(), 3)].into_iter().collect();
        assert_eq!(taxonomy_l1(&a, &a), 0.0);
        assert!((taxonomy_l1(&a, &b) - 2.0).abs() < 1e-12);
    }
}
