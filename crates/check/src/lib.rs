//! # stm-check — transactional history recording and offline checking
//!
//! The repository's perf work keeps making the hot paths of the STM
//! backends faster (relaxed memory orderings, layout changes, validation
//! skips); no single hand-written stress test can vouch that every such
//! change preserved *opacity*. This crate is the standing oracle: a run
//! of any workload can record, per thread, the transactional events it
//! performed (begin / per-stripe read with the observed version /
//! per-stripe write / commit with the commit timestamp / abort), and an
//! offline checker then proves — or refutes, with a concrete cycle
//! witness — that the recorded history is serializable and opaque.
//!
//! The design follows dbcop's split (record sessions from a live system,
//! verify offline), specialized to a word-based, global-clock STM:
//!
//! * [`events`] — the raw event schema plus the lock-free per-thread
//!   log ([`SessionLog`]) and its registry ([`TraceSink`]) that the
//!   backends' `record` cargo feature writes through;
//! * [`history`] — sessions → transactions → events: the validated
//!   [`History`] model the checker consumes;
//! * [`graph`] — a small dense digraph with cycle detection;
//! * [`check`] — the checker: version-order graph construction over
//!   committed update transactions (write-read, write-write,
//!   anti-dependency, and commit-order edges), cycle detection for
//!   serializability, and the opacity refinement (aborted and read-only
//!   transactions must also have observed a consistent snapshot).
//!
//! ## What "correct" means here
//!
//! Both TinySTM and TL2 claim that their serialization order is the
//! global-clock commit order: a transaction committing at timestamp `wv`
//! must have read, for every stripe in its read set, the version written
//! by the latest committed writer before `wv`. The checker verifies that
//! claim directly: a read observing version `v` while another write to
//! the same stripe committed between `v` (exclusive) and `wv` shows up
//! as an anti-dependency edge pointing *backwards* in commit order — a
//! cycle. Aborted transactions have no commit point, but opacity demands
//! their reads still form a snapshot: there must exist an instant `t`
//! at which every stripe they read still carried the version they
//! observed.
//!
//! The checker is stripe-granular because the STMs are: two addresses
//! hashing to the same versioned lock are one variable as far as the
//! protocol is concerned, so the stripe-level history captures exactly
//! the consistency the lock words enforce.
//!
//! Dynamic reconfiguration renumbers stripes and resets the clock, so
//! every `Begin` carries the instance's *reconfigure epoch* and the
//! checker segments the history per epoch ([`check`]'s module docs);
//! clock roll-over has no epoch boundary and instead poisons the sink
//! so draining fails loudly ([`RecordingError::ClockRollover`]).

pub mod check;
pub mod events;
pub mod graph;
pub mod history;
pub mod replay;

pub use check::{
    check_history, CheckOpts, CheckReport, CycleWitness, EdgeKind, NodeRef, Violation,
};
pub use events::{AttemptGuard, Event, RecordingError, SessionLog, TraceSink};
pub use history::{History, HistoryError, Outcome, Txn, TxnId};
pub use replay::{check_wal_commits, ReplayViolation, WalCommit};
