//! A small dense digraph used by the checker: nodes are `usize` indices
//! into the checker's node table, edges carry a payload (the dependency
//! kind). Cycle detection is Kahn's algorithm (nodes left after peeling
//! all sources form the cyclic core); minimal-cycle extraction is a BFS
//! inside the core.

/// Adjacency-list digraph with edge payloads.
#[derive(Debug, Clone)]
pub struct DiGraph<E> {
    /// `edges[v]` = outgoing `(target, payload)` pairs of node `v`.
    edges: Vec<Vec<(usize, E)>>,
}

impl<E: Clone> DiGraph<E> {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> DiGraph<E> {
        DiGraph {
            edges: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add an edge `from → to`.
    pub fn add_edge(&mut self, from: usize, to: usize, payload: E) {
        debug_assert!(from < self.len() && to < self.len());
        self.edges[from].push((to, payload));
    }

    /// Outgoing edges of `v`.
    pub fn out(&self, v: usize) -> &[(usize, E)] {
        &self.edges[v]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Nodes that lie on at least one cycle (the leftover set of Kahn's
    /// algorithm). Empty iff the graph is acyclic.
    pub fn cyclic_core(&self) -> Vec<usize> {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            for &(to, _) in &self.edges[v] {
                indeg[to] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut removed = vec![false; n];
        while let Some(v) = queue.pop() {
            removed[v] = true;
            for &(to, _) in &self.edges[v] {
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to);
                }
            }
        }
        (0..n).filter(|&v| !removed[v]).collect()
    }

    /// Shortest cycle through `start`, restricted to nodes for which
    /// `in_core` is true: BFS over core nodes from `start`'s successors
    /// back to `start`. Returns the cycle as `(nodes, edges)` with
    /// `edges[i]` connecting `nodes[i] → nodes[(i+1) % len]`.
    pub fn shortest_cycle_through(
        &self,
        start: usize,
        in_core: &[bool],
    ) -> Option<(Vec<usize>, Vec<E>)> {
        // BFS from start; parent links reconstruct the path.
        let n = self.len();
        let mut parent: Vec<Option<(usize, E)>> = vec![None; n];
        let mut visited = vec![false; n];
        visited[start] = true;
        let mut frontier = vec![start];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for (to, payload) in &self.edges[v] {
                    if *to == start {
                        // Found the closing edge; unwind parents.
                        let mut nodes = vec![start];
                        let mut edges = Vec::new();
                        let mut cur = v;
                        let mut rev_nodes = Vec::new();
                        let mut rev_edges = vec![payload.clone()];
                        while cur != start {
                            rev_nodes.push(cur);
                            let (p, e) = parent[cur].clone().expect("BFS parent");
                            rev_edges.push(e);
                            cur = p;
                        }
                        rev_nodes.reverse();
                        rev_edges.reverse();
                        nodes.extend(rev_nodes);
                        edges.extend(rev_edges);
                        return Some((nodes, edges));
                    }
                    if !in_core[*to] || visited[*to] {
                        continue;
                    }
                    visited[*to] = true;
                    parent[*to] = Some((v, payload.clone()));
                    next.push(*to);
                }
            }
            frontier = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_has_empty_core() {
        let mut g: DiGraph<()> = DiGraph::new(4);
        g.add_edge(0, 1, ());
        g.add_edge(1, 2, ());
        g.add_edge(0, 3, ());
        assert!(g.cyclic_core().is_empty());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn cycle_core_and_extraction() {
        let mut g: DiGraph<&'static str> = DiGraph::new(5);
        // 0 → 1 → 2 → 0 is the cycle; 3 → 4 dangles off.
        g.add_edge(0, 1, "a");
        g.add_edge(1, 2, "b");
        g.add_edge(2, 0, "c");
        g.add_edge(3, 4, "d");
        g.add_edge(3, 0, "e");
        let core = g.cyclic_core();
        assert_eq!(core, vec![0, 1, 2]);
        let mut in_core = vec![false; g.len()];
        for &v in &core {
            in_core[v] = true;
        }
        let (nodes, edges) = g.shortest_cycle_through(0, &in_core).unwrap();
        assert_eq!(nodes, vec![0, 1, 2]);
        assert_eq!(edges, vec!["a", "b", "c"]);
    }

    #[test]
    fn shortest_cycle_prefers_short_loop() {
        let mut g: DiGraph<u32> = DiGraph::new(4);
        // Two cycles through 0: 0→1→0 (len 2) and 0→2→3→0 (len 3).
        g.add_edge(0, 2, 0);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 0, 2);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 0, 4);
        let in_core = vec![true; 4];
        let (nodes, _) = g.shortest_cycle_through(0, &in_core).unwrap();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn no_cycle_through_node_returns_none() {
        let mut g: DiGraph<()> = DiGraph::new(3);
        g.add_edge(0, 1, ());
        g.add_edge(1, 2, ());
        let in_core = vec![true; 3];
        assert!(g.shortest_cycle_through(0, &in_core).is_none());
    }
}
