//! The offline checker: version-order graph construction + cycle
//! detection for serializability, plus the opacity refinement for
//! aborted and read-only transactions. Histories are segmented per
//! *reconfigure epoch* before anything else (see below).
//!
//! ## Epoch segmentation
//!
//! A reconfiguration rebuilds the lock array and resets the clock
//! inside a quiesce fence, so stripe IDs and commit timestamps from
//! different epochs are incomparable: stripe 5 of epoch 0 and stripe 5
//! of epoch 1 cover unrelated address sets, and both epochs start their
//! clock at 0. The checker therefore partitions the transactions by
//! their `Begin` epoch and runs the whole version-order analysis
//! independently per epoch (each epoch gets its own `Init` node — the
//! fresh lock array really is all-zero versions).
//!
//! Cross-epoch ordering needs no graph: the fence is a real-time
//! barrier, so every transaction of epoch *e* precedes every
//! transaction of epoch *e + 1* — all cross-epoch commit-order edges
//! point forward and can never close a cycle. The one checkable
//! cross-epoch obligation is that those edges are consistent with the
//! recorded session order: within a session (one thread's program
//! order) epochs must be non-decreasing. A session that runs an
//! epoch-1 attempt and then an epoch-0 attempt contradicts the fence
//! and is reported as [`Violation::CrossEpochOrder`].
//!
//! ## The version-order graph
//!
//! Nodes are the committed *update* transactions (each holds a unique
//! global-clock commit timestamp `wv`) plus a synthetic `Init` node
//! standing for the pre-history state (every stripe at version 0).
//! Edges:
//!
//! * **wr** — the writer a read observed → the reader;
//! * **ww** — consecutive committed writers of one stripe, in version
//!   order (the version order *is* the commit-timestamp order in a
//!   global-clock STM);
//! * **rw** — anti-dependency: a reader that observed version `v` of a
//!   stripe → the first writer that overwrote `v`;
//! * **co** — the claimed serialization (commit-timestamp) order,
//!   materialized as a chain through the nodes sorted by `wv`.
//!
//! wr, ww and co edges always point forward in commit-timestamp order,
//! so every cycle must travel through an rw edge pointing *backwards* —
//! a transaction that committed at `wv` having observed a stripe version
//! that a second transaction overwrote before `wv`. That is precisely a
//! snapshot that was stale at its commit point, i.e. the anomaly the
//! STM's commit-time validation exists to prevent.
//!
//! ## Version resolution
//!
//! A read's observed version is matched to the committed writer with
//! the greatest `wv ≤ version` on that stripe (or `Init`). For
//! write-back and TL2 every non-zero observed version corresponds to a
//! commit exactly, and [`CheckOpts::allow_version_inflation`] `= false`
//! reports any unmatched version as a [`Violation::PhantomVersion`]
//! (this is what catches *lost writes*). Write-through rollback may
//! legitimately publish a fresh clock value on incarnation overflow —
//! a version with no matching commit but, by construction, no commit
//! between the last real writer and itself — so the write-through
//! backend is checked with inflation allowed.
//!
//! ## Opacity refinement
//!
//! Aborted transactions and read-only commits have no commit timestamp,
//! but opacity still requires each to have observed a consistent
//! snapshot: some instant `t` with, for every read, `v_resolved ≤ t <`
//! (first overwrite of that stripe). The intervals intersect iff
//! `max(v_resolved) < min(first overwrite)`; a violation is rendered as
//! a small cycle through the offending writers.

use crate::graph::DiGraph;
use crate::history::{History, Outcome, Txn, TxnId};
use std::collections::{BTreeSet, HashMap};

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckOpts {
    /// Accept observed versions with no exactly-matching commit by
    /// resolving to the latest earlier writer (required for
    /// write-through incarnation-overflow rollbacks). When `false`,
    /// such versions are reported as [`Violation::PhantomVersion`].
    pub allow_version_inflation: bool,
    /// Run the opacity refinement over aborted and read-only
    /// transactions (on by default; serializability of committed
    /// updates is always checked).
    pub opacity: bool,
}

impl Default for CheckOpts {
    fn default() -> CheckOpts {
        CheckOpts {
            allow_version_inflation: false,
            opacity: true,
        }
    }
}

/// A node in a witness: the synthetic initial state or a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Pre-history state (every stripe at version 0).
    Init,
    /// A recorded transaction.
    Txn(TxnId),
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeRef::Init => write!(f, "INIT"),
            NodeRef::Txn(id) => write!(f, "{id}"),
        }
    }
}

/// A dependency edge in a witness cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Reader observed `version` of `stripe` written by the source.
    Wr {
        /// Stripe read.
        stripe: u64,
        /// Version observed.
        version: u64,
    },
    /// Source's write to `stripe` was overwritten by the target.
    Ww {
        /// Stripe written by both.
        stripe: u64,
        /// Target's commit timestamp.
        to_version: u64,
    },
    /// Anti-dependency: source read `read_version` of `stripe`, target
    /// overwrote it at `overwrite_version`.
    Rw {
        /// Stripe involved.
        stripe: u64,
        /// Version the source observed.
        read_version: u64,
        /// Version the target installed.
        overwrite_version: u64,
    },
    /// Claimed serialization (commit-timestamp) order, possibly
    /// compressed over intermediate transactions.
    Co {
        /// Source commit timestamp (0 for `Init`).
        from_version: u64,
        /// Target commit timestamp.
        to_version: u64,
    },
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::Wr { stripe, version } => write!(f, "wr[stripe {stripe} @v{version}]"),
            EdgeKind::Ww { stripe, to_version } => {
                write!(f, "ww[stripe {stripe} → v{to_version}]")
            }
            EdgeKind::Rw {
                stripe,
                read_version,
                overwrite_version,
            } => write!(
                f,
                "rw[stripe {stripe}: read v{read_version}, overwritten v{overwrite_version}]"
            ),
            EdgeKind::Co {
                from_version,
                to_version,
            } => write!(f, "co[v{from_version} < v{to_version}]"),
        }
    }
}

/// A minimal dependency cycle: `edges[i]` connects `nodes[i]` to
/// `nodes[(i + 1) % nodes.len()]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWitness {
    /// The transactions (and possibly `Init`) on the cycle.
    pub nodes: Vec<NodeRef>,
    /// The dependency edges along the cycle.
    pub edges: Vec<EdgeKind>,
}

impl std::fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle({} txns): ", self.nodes.len())?;
        for (i, node) in self.nodes.iter().enumerate() {
            write!(f, "{node} --{}--> ", self.edges[i])?;
        }
        write!(f, "{}", self.nodes[0])
    }
}

/// One checker finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A session ran an attempt in an older epoch after an attempt in
    /// a newer one: impossible under the reconfigure fence (epochs are
    /// bumped inside a real-time barrier), so the cross-epoch
    /// commit-order edges contradict the recorded session order.
    CrossEpochOrder {
        /// Session whose program order contradicts the epoch order.
        session: usize,
        /// Index of the out-of-order (older-epoch) attempt.
        index: usize,
        /// Epoch of the preceding attempt.
        from_epoch: u64,
        /// Epoch of the out-of-order attempt (`< from_epoch`).
        to_epoch: u64,
    },
    /// Two committed update transactions share a commit timestamp (the
    /// global clock is broken).
    DuplicateCommitVersion {
        /// First transaction.
        a: TxnId,
        /// Second transaction.
        b: TxnId,
        /// The shared timestamp.
        version: u64,
    },
    /// A read observed a version no committed write produced (strict
    /// mode only; catches lost writes).
    PhantomVersion {
        /// The reading transaction.
        txn: TxnId,
        /// Stripe read.
        stripe: u64,
        /// The unmatched version.
        version: u64,
    },
    /// The committed update transactions are not serializable in (or
    /// consistently with) commit-timestamp order.
    SerializabilityCycle {
        /// The minimal dependency cycle found.
        cycle: CycleWitness,
        /// Human explanation of the decisive edge.
        summary: String,
    },
    /// An aborted or read-only transaction observed reads that fit no
    /// single snapshot (opacity violation).
    InconsistentSnapshot {
        /// The offending transaction.
        txn: TxnId,
        /// Whether it (read-only) committed or aborted.
        committed: bool,
        /// Pseudo-cycle through the writers that pin the two
        /// irreconcilable reads.
        cycle: CycleWitness,
        /// Human explanation.
        summary: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::CrossEpochOrder {
                session,
                index,
                from_epoch,
                to_epoch,
            } => write!(
                f,
                "session {session} txn {index} ran in epoch {to_epoch} after an attempt in \
                 epoch {from_epoch}: session order contradicts the reconfigure fence"
            ),
            Violation::DuplicateCommitVersion { a, b, version } => write!(
                f,
                "duplicate commit version v{version} shared by {a} and {b}"
            ),
            Violation::PhantomVersion {
                txn,
                stripe,
                version,
            } => write!(
                f,
                "{txn} read stripe {stripe} at v{version}, which no committed write produced"
            ),
            Violation::SerializabilityCycle { cycle, summary } => {
                write!(f, "serializability violation: {summary}\n  {cycle}")
            }
            Violation::InconsistentSnapshot {
                txn,
                committed,
                cycle,
                summary,
            } => write!(
                f,
                "opacity violation ({} {txn}): {summary}\n  {cycle}",
                if *committed {
                    "read-only commit"
                } else {
                    "aborted txn"
                }
            ),
        }
    }
}

/// The checker's result.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All findings, deterministic order.
    pub violations: Vec<Violation>,
    /// Distinct reconfigure epochs the history was segmented into.
    pub epochs: usize,
    /// Committed update transactions checked.
    pub committed_updates: usize,
    /// Read-only commits checked by the opacity refinement.
    pub readonly_commits: usize,
    /// Aborted attempts checked by the opacity refinement.
    pub aborted: usize,
    /// Total resolved reads.
    pub reads_checked: usize,
    /// Dependency edges in the version-order graph.
    pub graph_edges: usize,
}

impl CheckReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "checked {} committed update txn(s), {} read-only commit(s), {} aborted \
             attempt(s) across {} epoch(s); {} read(s) resolved, {} graph edge(s)",
            self.committed_updates,
            self.readonly_commits,
            self.aborted,
            self.epochs,
            self.reads_checked,
            self.graph_edges
        )?;
        if self.violations.is_empty() {
            write!(f, "no violations: history is serializable and opaque")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for (i, v) in self.violations.iter().enumerate() {
                writeln!(f, "[{i}] {v}")?;
            }
            Ok(())
        }
    }
}

/// Per-stripe list of committed writers, sorted by commit version.
struct StripeWriters {
    /// `(commit version, node index)`, ascending.
    by_version: Vec<(u64, usize)>,
}

impl StripeWriters {
    /// Greatest writer with version ≤ `v`, if any.
    fn latest_at_or_before(&self, v: u64) -> Option<(u64, usize)> {
        match self.by_version.partition_point(|&(wv, _)| wv <= v) {
            0 => None,
            i => Some(self.by_version[i - 1]),
        }
    }

    /// First writer with version > `v`, if any.
    fn first_after(&self, v: u64) -> Option<(u64, usize)> {
        let i = self.by_version.partition_point(|&(wv, _)| wv <= v);
        self.by_version.get(i).copied()
    }

    /// Whether some writer committed exactly version `v`.
    fn has_exact(&self, v: u64) -> bool {
        self.by_version
            .binary_search_by_key(&v, |&(wv, _)| wv)
            .is_ok()
    }
}

/// Check a recorded history. See the module docs for the model: the
/// history is segmented per reconfigure epoch, each epoch is checked
/// independently, and the cross-epoch commit-order edges are checked
/// against the recorded session order.
pub fn check_history(history: &History, opts: &CheckOpts) -> CheckReport {
    let mut report = CheckReport::default();

    // Cross-epoch commit order: within a session, epochs must be
    // non-decreasing (the fence is a real-time barrier).
    for (session, txns) in history.sessions.iter().enumerate() {
        for pair in txns.windows(2) {
            if pair[1].epoch < pair[0].epoch {
                report.violations.push(Violation::CrossEpochOrder {
                    session,
                    index: pair[1].id.index,
                    from_epoch: pair[0].epoch,
                    to_epoch: pair[1].epoch,
                });
            }
        }
    }

    // Segment per epoch (ascending: deterministic violation order) and
    // run the version-order analysis independently on each segment.
    let mut by_epoch: std::collections::BTreeMap<u64, Vec<&Txn>> =
        std::collections::BTreeMap::new();
    for t in history.txns() {
        by_epoch.entry(t.epoch).or_default().push(t);
    }
    report.epochs = by_epoch.len();
    for txns in by_epoch.values() {
        check_epoch(txns, opts, &mut report);
    }
    report
}

/// Check one epoch's transactions (stripe IDs and versions are
/// comparable only within an epoch), accumulating into `report`.
fn check_epoch(txns: &[&Txn], opts: &CheckOpts, report: &mut CheckReport) {
    // Node table: index 0 = Init, then committed update txns in commit-
    // version order.
    let mut committed: Vec<&Txn> = txns
        .iter()
        .copied()
        .filter(|t| t.commit_version().is_some())
        .collect();
    committed.sort_by_key(|t| t.commit_version().expect("filtered"));
    for w in committed.windows(2) {
        let (va, vb) = (
            w[0].commit_version().expect("filtered"),
            w[1].commit_version().expect("filtered"),
        );
        if va == vb {
            report.violations.push(Violation::DuplicateCommitVersion {
                a: w[0].id,
                b: w[1].id,
                version: va,
            });
        }
    }
    report.committed_updates += committed.len();

    let n_nodes = committed.len() + 1;
    let node_of: HashMap<TxnId, usize> = committed
        .iter()
        .enumerate()
        .map(|(i, t)| (t.id, i + 1))
        .collect();
    let node_ref = |idx: usize| -> NodeRef {
        if idx == 0 {
            NodeRef::Init
        } else {
            NodeRef::Txn(committed[idx - 1].id)
        }
    };
    let node_version = |idx: usize| -> u64 {
        if idx == 0 {
            0
        } else {
            committed[idx - 1].commit_version().expect("update txn")
        }
    };

    // Per-stripe committed writers (already version-sorted because the
    // node order is).
    let mut writers: HashMap<u64, StripeWriters> = HashMap::new();
    for (i, t) in committed.iter().enumerate() {
        let wv = t.commit_version().expect("filtered");
        for &s in &t.writes {
            writers
                .entry(s)
                .or_insert_with(|| StripeWriters {
                    by_version: Vec::new(),
                })
                .by_version
                .push((wv, i + 1));
        }
    }

    // Resolve one read; returns (resolved version, resolved node) and
    // reports phantoms in strict mode.
    let mut phantoms: BTreeSet<(TxnId, u64, u64)> = BTreeSet::new();
    let mut resolve = |txn: TxnId, stripe: u64, version: u64| -> (u64, usize) {
        let resolved = writers
            .get(&stripe)
            .and_then(|w| w.latest_at_or_before(version));
        if !opts.allow_version_inflation && version > 0 {
            let exact = writers.get(&stripe).is_some_and(|w| w.has_exact(version));
            if !exact {
                phantoms.insert((txn, stripe, version));
            }
        }
        match resolved {
            Some((wv, node)) => (wv, node),
            None => (0, 0),
        }
    };

    // Version-order graph over Init + committed update txns: the co
    // chain through commit-version order (Init first), then per-stripe
    // ww chains, then wr/rw edges from the reads.
    let mut graph: DiGraph<EdgeKind> = DiGraph::new(n_nodes);
    for i in 0..n_nodes - 1 {
        graph.add_edge(
            i,
            i + 1,
            EdgeKind::Co {
                from_version: node_version(i),
                to_version: node_version(i + 1),
            },
        );
    }
    for (&stripe, w) in &writers {
        let mut prev_node = 0usize;
        for &(wv, node) in &w.by_version {
            graph.add_edge(
                prev_node,
                node,
                EdgeKind::Ww {
                    stripe,
                    to_version: wv,
                },
            );
            prev_node = node;
        }
    }
    // wr + rw edges from every committed update txn's reads.
    for t in &committed {
        let me = node_of[&t.id];
        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        for &(stripe, version) in &t.reads {
            if !seen.insert((stripe, version)) {
                continue;
            }
            report.reads_checked += 1;
            let (v_res, w_node) = resolve(t.id, stripe, version);
            if w_node != me {
                graph.add_edge(
                    w_node,
                    me,
                    EdgeKind::Wr {
                        stripe,
                        version: v_res,
                    },
                );
            }
            if let Some((next_v, next_node)) =
                writers.get(&stripe).and_then(|w| w.first_after(v_res))
            {
                if next_node != me {
                    graph.add_edge(
                        me,
                        next_node,
                        EdgeKind::Rw {
                            stripe,
                            read_version: v_res,
                            overwrite_version: next_v,
                        },
                    );
                }
            }
        }
    }
    report.graph_edges += graph.edge_count();

    // Cycle detection.
    let core = graph.cyclic_core();
    if !core.is_empty() {
        let mut in_core = vec![false; graph.len()];
        for &v in &core {
            in_core[v] = true;
        }
        // Try a few starting points, keep the shortest cycle.
        let mut best: Option<(Vec<usize>, Vec<EdgeKind>)> = None;
        for &start in core.iter().take(8) {
            if let Some(found) = graph.shortest_cycle_through(start, &in_core) {
                if best.as_ref().is_none_or(|b| found.0.len() < b.0.len()) {
                    best = Some(found);
                }
            }
        }
        if let Some((nodes, edges)) = best {
            let cycle = compress_co_runs(&nodes, &edges, &node_ref, &node_version);
            let summary = cycle
                .edges
                .iter()
                .find_map(|e| match e {
                    EdgeKind::Rw {
                        stripe,
                        read_version,
                        overwrite_version,
                    } => Some(format!(
                        "a committed transaction read stripe {stripe} at v{read_version} \
                         although it was overwritten at v{overwrite_version} before the \
                         reader's commit"
                    )),
                    _ => None,
                })
                .unwrap_or_else(|| "dependency cycle among committed transactions".to_string());
            report
                .violations
                .push(Violation::SerializabilityCycle { cycle, summary });
        }
    }

    // Opacity refinement: aborted + read-only commits must each fit a
    // snapshot.
    if opts.opacity {
        for t in txns.iter().copied() {
            let committed_ro = matches!(t.outcome, Outcome::Committed { version: None });
            let aborted = matches!(t.outcome, Outcome::Aborted);
            if !committed_ro && !aborted {
                continue;
            }
            if committed_ro {
                report.readonly_commits += 1;
            } else {
                report.aborted += 1;
            }
            // max over resolved read versions, min over first-overwrite
            // versions; snapshot exists iff max < min.
            let mut max_read: Option<(u64, u64, usize)> = None; // (v_res, stripe, writer node)
            let mut min_next: Option<(u64, u64, u64, usize)> = None; // (next_v, stripe, v_res, next node)
            let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
            for &(stripe, version) in &t.reads {
                if !seen.insert((stripe, version)) {
                    continue;
                }
                report.reads_checked += 1;
                let (v_res, w_node) = resolve(t.id, stripe, version);
                if max_read.is_none_or(|(v, _, _)| v_res > v) {
                    max_read = Some((v_res, stripe, w_node));
                }
                if let Some((next_v, next_node)) =
                    writers.get(&stripe).and_then(|w| w.first_after(v_res))
                {
                    if min_next.is_none_or(|(v, _, _, _)| next_v < v) {
                        min_next = Some((next_v, stripe, v_res, next_node));
                    }
                }
            }
            if let (
                Some((max_v, max_stripe, max_writer)),
                Some((next_v, next_stripe, next_res, next_node)),
            ) = (max_read, min_next)
            {
                if max_v >= next_v {
                    // No instant satisfies both reads: stripe
                    // `next_stripe` was overwritten (at next_v) before
                    // the version max_v the txn later observed.
                    let me = NodeRef::Txn(t.id);
                    let mut nodes = vec![me, node_ref(next_node)];
                    let mut edges = vec![EdgeKind::Rw {
                        stripe: next_stripe,
                        read_version: next_res,
                        overwrite_version: next_v,
                    }];
                    if next_node == max_writer {
                        edges.push(EdgeKind::Wr {
                            stripe: max_stripe,
                            version: max_v,
                        });
                    } else {
                        nodes.push(node_ref(max_writer));
                        edges.push(EdgeKind::Co {
                            from_version: next_v,
                            to_version: max_v,
                        });
                        edges.push(EdgeKind::Wr {
                            stripe: max_stripe,
                            version: max_v,
                        });
                    }
                    let cycle = CycleWitness { nodes, edges };
                    let summary = format!(
                        "read stripe {next_stripe} at v{next_res} (overwritten at v{next_v}) \
                         and stripe {max_stripe} at v{max_v}: no snapshot instant contains both"
                    );
                    report.violations.push(Violation::InconsistentSnapshot {
                        txn: t.id,
                        committed: committed_ro,
                        cycle,
                        summary,
                    });
                }
            }
        }
    }

    for (txn, stripe, version) in phantoms {
        report.violations.push(Violation::PhantomVersion {
            txn,
            stripe,
            version,
        });
    }
}

/// Compress maximal runs of consecutive `co` edges in a raw cycle into
/// single summarized `co` hops so witnesses stay minimal and readable.
fn compress_co_runs(
    nodes: &[usize],
    edges: &[EdgeKind],
    node_ref: &dyn Fn(usize) -> NodeRef,
    node_version: &dyn Fn(usize) -> u64,
) -> CycleWitness {
    let n = nodes.len();
    let mut out_nodes = Vec::new();
    let mut out_edges = Vec::new();
    let mut i = 0;
    while i < n {
        out_nodes.push(node_ref(nodes[i]));
        if matches!(edges[i], EdgeKind::Co { .. }) {
            // Extend the run (edge j connects nodes[j] → nodes[(j+1)%n]).
            let start = i;
            while i < n && matches!(edges[i], EdgeKind::Co { .. }) {
                i += 1;
            }
            let to = if i == n { nodes[0] } else { nodes[i] };
            out_edges.push(EdgeKind::Co {
                from_version: node_version(nodes[start]),
                to_version: node_version(to),
            });
        } else {
            out_edges.push(edges[i]);
            i += 1;
        }
    }
    CycleWitness {
        nodes: out_nodes,
        edges: out_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    /// Build a history straight from per-session event vectors.
    fn hist(logs: Vec<Vec<Event>>) -> History {
        History::from_event_logs(logs).expect("well-formed test history")
    }

    fn begin(start: u64) -> Event {
        Event::Begin { start, epoch: 0 }
    }
    fn begin_at(start: u64, epoch: u64) -> Event {
        Event::Begin { start, epoch }
    }
    fn read(stripe: u64, version: u64) -> Event {
        Event::Read { stripe, version }
    }
    fn write(stripe: u64) -> Event {
        Event::Write { stripe }
    }
    fn commit(v: u64) -> Event {
        Event::Commit { version: Some(v) }
    }
    fn commit_ro() -> Event {
        Event::Commit { version: None }
    }

    #[test]
    fn clean_sequential_history_passes() {
        // s0: w(x)@1, w(y)@2; s1: reads both at their latest versions,
        // writes x@3; a read-only commit and a consistent abort ride
        // along.
        let h = hist(vec![
            vec![
                begin(0),
                write(0),
                commit(1),
                begin(1),
                read(0, 1),
                write(1),
                commit(2),
            ],
            vec![
                begin(2),
                read(0, 1),
                read(1, 2),
                write(0),
                commit(3),
                begin(3),
                read(0, 3),
                read(1, 2),
                commit_ro(),
                begin(3),
                read(1, 2),
                Event::Abort,
            ],
        ]);
        let report = check_history(&h, &CheckOpts::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.committed_updates, 3);
        assert_eq!(report.readonly_commits, 1);
        assert_eq!(report.aborted, 1);
    }

    #[test]
    fn stale_committed_read_yields_cycle() {
        // T_a reads x@1 and commits at 4, but x was overwritten at 2:
        // T_a's snapshot was stale at commit (skipped validation).
        let h = hist(vec![
            vec![begin(0), write(0), commit(1), begin(1), write(0), commit(2)],
            vec![begin(1), read(0, 1), write(1), commit(4)],
        ]);
        let report = check_history(&h, &CheckOpts::default());
        assert!(!report.is_clean());
        let cycle = report
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::SerializabilityCycle { cycle, .. } => Some(cycle),
                _ => None,
            })
            .expect("cycle violation");
        // Minimal witness: reader --rw--> overwriter --co--> reader.
        assert!(
            cycle.edges.iter().any(|e| matches!(
                e,
                EdgeKind::Rw {
                    stripe: 0,
                    read_version: 1,
                    overwrite_version: 2
                }
            )),
            "{cycle}"
        );
        assert!(cycle.nodes.contains(&NodeRef::Txn(TxnId {
            session: 1,
            index: 0
        })));
    }

    #[test]
    fn inconsistent_aborted_snapshot_is_opacity_violation() {
        // Aborted txn read x@1 (overwritten at 2) together with y@3:
        // no instant holds both.
        let h = hist(vec![
            vec![
                begin(0),
                write(0),
                commit(1),
                begin(1),
                write(0),
                commit(2),
                begin(2),
                write(1),
                commit(3),
            ],
            vec![begin(1), read(0, 1), read(1, 3), Event::Abort],
        ]);
        let report = check_history(&h, &CheckOpts::default());
        let v = report
            .violations
            .iter()
            .find(|v| matches!(v, Violation::InconsistentSnapshot { .. }))
            .expect("snapshot violation");
        let text = v.to_string();
        assert!(text.contains("opacity violation"), "{text}");
        assert!(text.contains("cycle"), "{text}");
    }

    #[test]
    fn opacity_refinement_can_be_disabled() {
        let h = hist(vec![
            vec![
                begin(0),
                write(0),
                commit(1),
                begin(1),
                write(0),
                commit(2),
                begin(2),
                write(1),
                commit(3),
            ],
            vec![begin(1), read(0, 1), read(1, 3), Event::Abort],
        ]);
        let opts = CheckOpts {
            opacity: false,
            ..CheckOpts::default()
        };
        assert!(check_history(&h, &opts).is_clean());
    }

    #[test]
    fn lost_write_is_a_phantom_in_strict_mode() {
        // A read observes v=2 on stripe 0 but no committed write
        // produced it (the writer's event was lost / never recorded).
        let h = hist(vec![
            vec![begin(0), write(0), commit(1)],
            vec![begin(2), read(0, 2), write(1), commit(3)],
        ]);
        let strict = check_history(&h, &CheckOpts::default());
        assert!(strict.violations.iter().any(|v| matches!(
            v,
            Violation::PhantomVersion {
                stripe: 0,
                version: 2,
                ..
            }
        )));
        // Inflation-tolerant mode resolves it to the v=1 writer instead.
        let lax = check_history(
            &h,
            &CheckOpts {
                allow_version_inflation: true,
                ..CheckOpts::default()
            },
        );
        assert!(lax.is_clean(), "{lax}");
    }

    #[test]
    fn duplicate_commit_versions_are_reported() {
        let h = hist(vec![
            vec![begin(0), write(0), commit(2)],
            vec![begin(0), write(1), commit(2)],
        ]);
        let report = check_history(&h, &CheckOpts::default());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateCommitVersion { version: 2, .. })));
    }

    #[test]
    fn version_inflation_tolerated_only_when_between_commits_is_empty() {
        // Write-through style: read observes v=5 (inflated) while the
        // latest commit on the stripe is 1 and nothing committed in
        // (1, 5]: clean under inflation. A second txn reading the same
        // stripe inflated AND a fresher stripe stays clean too (the
        // resolved version is what matters).
        let h = hist(vec![
            vec![begin(0), write(0), commit(1), begin(1), write(1), commit(2)],
            vec![begin(5), read(0, 5), read(1, 2), write(2), commit(6)],
        ]);
        let opts = CheckOpts {
            allow_version_inflation: true,
            ..CheckOpts::default()
        };
        assert!(check_history(&h, &opts).is_clean());
    }

    #[test]
    fn aliased_stripes_across_epochs_are_not_conflated() {
        // Epoch 0 and epoch 1 both use stripe 0 and commit version 1
        // (the clock resets at the reconfigure). Conflated, this is a
        // duplicate commit version and a tangle of bogus edges;
        // segmented, each epoch is trivially serializable.
        let h = hist(vec![vec![
            begin_at(0, 0),
            write(0),
            commit(1),
            begin_at(0, 1),
            write(0),
            commit(1),
            begin_at(1, 1),
            read(0, 1),
            commit_ro(),
        ]]);
        let report = check_history(&h, &CheckOpts::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.epochs, 2);
        assert_eq!(report.committed_updates, 2);

        // The pre-fix behaviour (no segmentation) provably mischecks
        // the same run: squash everything into one epoch and the
        // checker reports the duplicate commit version.
        let conflated = hist(vec![vec![
            begin_at(0, 0),
            write(0),
            commit(1),
            begin_at(0, 0),
            write(0),
            commit(1),
            begin_at(1, 0),
            read(0, 1),
            commit_ro(),
        ]]);
        let report = check_history(&conflated, &CheckOpts::default());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateCommitVersion { version: 1, .. })),
            "conflated epochs must mischeck: {report}"
        );
    }

    #[test]
    fn epoch_segmentation_scopes_version_resolution() {
        // Epoch 1's reader observes stripe 0 at v0 (fresh lock array).
        // Conflated with epoch 0 (where stripe 0 was written at v1 and
        // overwritten at v2), the same read would look stale; segmented
        // it resolves to epoch 1's Init and the history is clean.
        let logs = |e1: u64| {
            vec![vec![
                begin_at(0, 0),
                write(0),
                commit(1),
                begin_at(1, 0),
                write(0),
                commit(2),
                begin_at(0, e1),
                read(0, 0),
                write(1),
                commit(1),
            ]]
        };
        let segmented = check_history(&hist(logs(1)), &CheckOpts::default());
        assert!(segmented.is_clean(), "{segmented}");
        let conflated = check_history(&hist(logs(0)), &CheckOpts::default());
        assert!(
            !conflated.is_clean(),
            "conflated epochs must flag the aliased read"
        );
    }

    #[test]
    fn cross_epoch_order_violation_is_caught() {
        // A session that runs an epoch-0 attempt after an epoch-1
        // attempt contradicts the reconfigure fence.
        let h = hist(vec![vec![
            begin_at(0, 1),
            write(0),
            commit(1),
            begin_at(5, 0),
            read(0, 0),
            commit_ro(),
        ]]);
        let report = check_history(&h, &CheckOpts::default());
        let v = report
            .violations
            .iter()
            .find(|v| matches!(v, Violation::CrossEpochOrder { .. }))
            .expect("cross-epoch order violation");
        let text = v.to_string();
        assert!(text.contains("epoch 0"), "{text}");
        assert!(text.contains("reconfigure fence"), "{text}");
        match v {
            Violation::CrossEpochOrder {
                session,
                index,
                from_epoch,
                to_epoch,
            } => {
                assert_eq!((*session, *index), (0, 1));
                assert_eq!((*from_epoch, *to_epoch), (1, 0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn report_display_renders_witness() {
        let h = hist(vec![
            vec![begin(0), write(0), commit(1), begin(1), write(0), commit(2)],
            vec![begin(1), read(0, 1), write(1), commit(4)],
        ]);
        let report = check_history(&h, &CheckOpts::default());
        let text = report.to_string();
        assert!(text.contains("serializability violation"), "{text}");
        assert!(text.contains("--rw[stripe 0"), "{text}");
    }
}
