//! The raw event schema and the recording substrate the backends write
//! through when their `record` cargo feature is enabled.
//!
//! Recording must not perturb the system it observes, so the hot path is
//! wait-free: each recording thread owns one [`SessionLog`] — a plain
//! `Vec` push, no atomics beyond the per-attempt activation flag, no
//! locks — and the shared [`TraceSink`] is only locked when a thread
//! registers its log (once per thread) and when the logs are drained
//! after the run. One `SessionLog` is exactly one *session* in the dbcop
//! sense: the sequence of transaction attempts one thread performed, in
//! program order.
//!
//! ## Safe draining
//!
//! Draining used to be an `unsafe fn` whose contract ("no worker may
//! still be recording") every caller had to re-prove. It is now a safe
//! handshake: [`TraceSink::drain_history`] *closes* the sink and then
//! waits for every session's activation flag to clear. The activation
//! flag and the closed flag form a store-buffering (Dekker) pair — a
//! recording thread publishes `active = true` (SeqCst) and then checks
//! `closed` (SeqCst), while the drainer stores `closed = true` (SeqCst)
//! and then polls `active` (SeqCst) — so for any attempt either the
//! drainer observes it and waits for its complete bracket, or the
//! thread observes the closed sink and records nothing for that
//! attempt. Once a session is observed inactive after close it can
//! never push again, which makes taking its events sound.
//!
//! ## Epochs and clock roll-over
//!
//! A reconfiguration renumbers stripes and resets the clock, which
//! would silently alias stripe IDs and commit timestamps across the
//! boundary. The backends therefore stamp every `Begin` with the
//! instance's *reconfigure epoch* (bumped inside the quiesce fence);
//! the checker segments the history per epoch. Clock roll-over also
//! renumbers versions but carries no epoch boundary, so a roll-over
//! during recording *poisons* the sink ([`TraceSink::mark_rollover`])
//! and draining fails loudly with [`RecordingError::ClockRollover`]
//! instead of producing an unsound history.

use crate::history::{History, HistoryError};
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded transactional event.
///
/// Stripe indices are the backend's lock-array indices (the unit of
/// conflict detection); versions are global-clock timestamps as stored
/// in the lock words. Stripe indices and versions are only meaningful
/// *within* one reconfigure epoch (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A transaction attempt started with the given snapshot time.
    Begin {
        /// Clock value sampled at begin (LSA `start`, TL2 `rv`).
        start: u64,
        /// Reconfigure epoch the attempt ran in (bumped by the backend
        /// inside each reconfiguration's quiesce fence).
        epoch: u64,
    },
    /// A transactional read returned a value to the caller.
    Read {
        /// Lock-array index covering the address.
        stripe: u64,
        /// Version observed in the (unowned) lock word.
        version: u64,
    },
    /// A transactional write was buffered or performed in place.
    Write {
        /// Lock-array index covering the address.
        stripe: u64,
    },
    /// The attempt committed.
    Commit {
        /// Commit timestamp for update transactions; `None` for the
        /// read-only fast path (no clock increment, no writes).
        version: Option<u64>,
    },
    /// The attempt aborted (all of its writes were undone/discarded).
    Abort,
}

/// Why a recorded window could not be drained into a usable history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordingError {
    /// The clock rolled over during the recorded window: every version
    /// observed after the roll-over aliases pre-roll-over timestamps,
    /// so the history is unsound and is discarded rather than checked.
    ClockRollover {
        /// Roll-overs that hit the sink while recording.
        rollovers: u64,
    },
    /// A session was still inside a transaction attempt when the drain
    /// deadline expired (a live worker is still recording — join the
    /// workers, or stop the workload, before draining).
    SessionStillRecording {
        /// Index of the session that never went inactive.
        session: usize,
    },
    /// The event stream itself was structurally malformed (a recording
    /// bug, not a consistency violation).
    Malformed(HistoryError),
}

impl std::fmt::Display for RecordingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordingError::ClockRollover { rollovers } => write!(
                f,
                "clock rolled over {rollovers} time(s) during the recorded window: \
                 observed versions alias across the roll-over, history discarded"
            ),
            RecordingError::SessionStillRecording { session } => write!(
                f,
                "session {session} still inside an attempt at the drain deadline \
                 (drain after the workers have joined)"
            ),
            RecordingError::Malformed(e) => write!(f, "malformed event log: {e}"),
        }
    }
}

impl std::error::Error for RecordingError {}

/// The event log of one recording thread (= one session).
///
/// Only the owning thread may push, bracketed by
/// [`SessionLog::try_activate`] / [`SessionLog::deactivate`]; draining
/// goes through the sink's safe close-and-wait handshake.
#[derive(Debug, Default)]
pub struct SessionLog {
    events: UnsafeCell<Vec<Event>>,
    /// Set while the owning thread is inside a recorded attempt. Half
    /// of the Dekker pair with [`TraceSink`]'s `closed` flag.
    active: AtomicBool,
    /// Events pushed so far, readable by any thread (Relaxed). Only a
    /// bound check — the events themselves stay behind the handshake.
    count: AtomicU64,
}

// SAFETY: the `UnsafeCell` is only written by the owning thread (push,
// between try_activate/deactivate) or by the drainer after the
// close-and-wait handshake proved no further pushes can happen. The
// registry needs to hold `Arc<SessionLog>` across threads, hence the
// manual impls.
unsafe impl Send for SessionLog {}
unsafe impl Sync for SessionLog {}

impl SessionLog {
    /// Mark the owning thread as inside a recorded attempt. Returns
    /// `false` (and leaves the log inactive) when `sink` has been
    /// closed for draining, or when this session has reached the sink's
    /// event cap — in either case the caller must not record this
    /// attempt. Cap refusals skip *whole* attempts, so a bounded sink's
    /// history is always well-formed (never a truncated bracket); the
    /// refusals are tallied on the sink
    /// ([`TraceSink::skipped_attempts`]), never silent.
    ///
    /// The SeqCst store/load pair is the recording half of the Dekker
    /// handshake with [`TraceSink::drain_history`] (module docs).
    #[inline]
    pub fn try_activate(&self, sink: &TraceSink) -> bool {
        self.active.store(true, Ordering::SeqCst);
        if sink.is_closed() {
            self.active.store(false, Ordering::Release);
            return false;
        }
        if self.count.load(Ordering::Relaxed) >= sink.event_cap {
            self.active.store(false, Ordering::Release);
            sink.skipped_attempts.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Mark the attempt finished (after its final event was pushed).
    /// The Release store publishes every push to the drainer's poll.
    #[inline]
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Whether the owning thread is currently inside a recorded attempt.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// Append one event.
    ///
    /// # Safety
    /// Must only be called by the thread that registered this log,
    /// between [`SessionLog::try_activate`] and
    /// [`SessionLog::deactivate`] (or in a context where no concurrent
    /// drain can run, e.g. single-threaded tests).
    #[inline]
    pub unsafe fn push(&self, event: Event) {
        (*self.events.get()).push(event);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Take the recorded events, leaving the log empty.
    ///
    /// # Safety
    /// No thread may be pushing concurrently: call only after the
    /// close-and-wait handshake (or after every worker that could run
    /// transactions has finished).
    pub(crate) unsafe fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.get())
    }

    /// Number of events recorded so far.
    ///
    /// # Safety
    /// Same contract as [`SessionLog::take`]: no concurrent pushes.
    pub unsafe fn len(&self) -> usize {
        (*self.events.get()).len()
    }

    /// True when nothing has been recorded.
    ///
    /// # Safety
    /// Same contract as [`SessionLog::take`]: no concurrent pushes.
    pub unsafe fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII bracket for one recorded attempt: deactivates the session on
/// drop, including a panic unwinding out of the transaction body (the
/// harness tolerates panicking workers; a session left active would
/// make every later drain time out).
#[derive(Debug)]
pub struct AttemptGuard<'a> {
    log: &'a SessionLog,
}

impl<'a> AttemptGuard<'a> {
    /// Guard an already-activated session for the current attempt.
    pub fn new(log: &'a SessionLog) -> AttemptGuard<'a> {
        AttemptGuard { log }
    }
}

impl Drop for AttemptGuard<'_> {
    fn drop(&mut self) {
        self.log.deactivate();
    }
}

/// How long [`TraceSink::drain_history`] waits for in-flight attempts
/// to finish before giving up.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Registry of per-thread logs for one recorded run.
///
/// Created by the harness, attached to a backend (which registers one
/// [`SessionLog`] per recording thread), and drained into a [`History`]
/// once the workload's threads have joined. A sink is one-shot: close
/// it by draining, then create a fresh sink for the next window.
#[derive(Debug)]
pub struct TraceSink {
    sessions: Mutex<Vec<Arc<SessionLog>>>,
    /// Set once draining starts; recording threads observe it at their
    /// next attempt (Dekker pair with the session activation flags).
    closed: AtomicBool,
    /// Clock roll-overs that hit this sink while recording (poison).
    rollovers: AtomicU64,
    /// Per-session event bound (`u64::MAX` = unbounded). Checked at
    /// attempt activation, so a session may overshoot by at most one
    /// attempt's events; total sink memory is bounded by
    /// `cap × sessions` (± that slack).
    event_cap: u64,
    /// Attempts refused because their session hit the event cap.
    skipped_attempts: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink {
            sessions: Mutex::default(),
            closed: AtomicBool::new(false),
            rollovers: AtomicU64::new(0),
            event_cap: u64::MAX,
            skipped_attempts: AtomicU64::new(0),
        }
    }
}

impl TraceSink {
    /// A fresh, empty, unbounded sink.
    pub fn new() -> Arc<TraceSink> {
        Arc::new(TraceSink::default())
    }

    /// A fresh sink whose sessions each stop recording after roughly
    /// `event_cap` events (whole attempts are skipped once a session
    /// reaches the cap; see [`SessionLog::try_activate`]). This is what
    /// makes sampled recording windows safe on production-length runs:
    /// a window's memory is bounded no matter how hot the workload.
    pub fn with_event_cap(event_cap: u64) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            event_cap: event_cap.max(1),
            ..TraceSink::default()
        })
    }

    /// The per-session event bound (`u64::MAX` = unbounded).
    pub fn event_cap(&self) -> u64 {
        self.event_cap
    }

    /// Attempts refused at activation because their session had reached
    /// the event cap. Non-zero means the drained history is a *prefix
    /// sample* of the window, not the whole window.
    pub fn skipped_attempts(&self) -> u64 {
        self.skipped_attempts.load(Ordering::Relaxed)
    }

    /// Register a new session (called once per recording thread by the
    /// backend's begin path).
    pub fn register_session(&self) -> Arc<SessionLog> {
        let log = Arc::new(SessionLog::default());
        self.sessions
            .lock()
            .expect("sink poisoned")
            .push(Arc::clone(&log));
        log
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("sink poisoned").len()
    }

    /// Whether the sink has been closed for draining.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Record that the backend's clock rolled over while this sink was
    /// attached (called inside the roll-over quiesce fence). Poisons
    /// the sink: draining reports [`RecordingError::ClockRollover`].
    pub fn mark_rollover(&self) {
        self.rollovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Close the sink and drain every session's events into a
    /// [`History`]. Safe: closes the sink first (threads stop recording
    /// at their next attempt) and waits for in-flight attempts to
    /// finish, so no push can race the drain — see the module docs for
    /// the handshake. Sessions that recorded no events are dropped.
    pub fn drain_history(&self) -> Result<History, RecordingError> {
        self.drain_history_with_deadline(DRAIN_DEADLINE)
    }

    /// [`TraceSink::drain_history`] with an explicit wait budget for
    /// in-flight attempts (tests; the default budget is generous).
    pub fn drain_history_with_deadline(
        &self,
        deadline: Duration,
    ) -> Result<History, RecordingError> {
        self.closed.store(true, Ordering::SeqCst);
        let sessions: Vec<Arc<SessionLog>> = self.sessions.lock().expect("sink poisoned").clone();
        let give_up = Instant::now() + deadline;
        for (i, session) in sessions.iter().enumerate() {
            // SeqCst poll: the drainer half of the Dekker handshake.
            while session.active.load(Ordering::SeqCst) {
                if Instant::now() >= give_up {
                    return Err(RecordingError::SessionStillRecording { session: i });
                }
                std::thread::yield_now();
            }
        }
        let rollovers = self.rollovers.load(Ordering::Relaxed);
        if rollovers > 0 {
            return Err(RecordingError::ClockRollover { rollovers });
        }
        // SAFETY: the sink is closed and every session was observed
        // inactive after the close, so no further push can happen (a
        // thread either saw the close and recorded nothing, or its
        // in-flight attempt finished before the poll above).
        unsafe { self.drain_history_unchecked() }.map_err(RecordingError::Malformed)
    }

    /// Drain without the close-and-wait handshake.
    ///
    /// # Safety
    /// No thread may still be recording: every worker that ran
    /// transactions under this sink must have finished (joined) first.
    pub(crate) unsafe fn drain_history_unchecked(&self) -> Result<History, HistoryError> {
        let sessions = self.sessions.lock().expect("sink poisoned");
        let logs: Vec<Vec<Event>> = sessions
            .iter()
            .map(|s| s.take())
            .filter(|events| !events.is_empty())
            .collect();
        History::from_event_logs(logs)
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Begin { start, epoch } => write!(f, "begin start={start} epoch={epoch}"),
            Event::Read { stripe, version } => write!(f, "read stripe={stripe} v={version}"),
            Event::Write { stripe } => write!(f, "write stripe={stripe}"),
            Event::Commit { version: Some(v) } => write!(f, "commit wv={v}"),
            Event::Commit { version: None } => write!(f, "commit ro"),
            Event::Abort => write!(f, "abort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(start: u64) -> Event {
        Event::Begin { start, epoch: 0 }
    }

    #[test]
    fn log_push_take_roundtrip() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        // SAFETY: single-threaded test.
        unsafe {
            log.push(begin(3));
            log.push(Event::Read {
                stripe: 7,
                version: 2,
            });
            log.push(Event::Commit { version: None });
            assert_eq!(log.len(), 3);
            let events = log.take();
            assert_eq!(events.len(), 3);
            assert_eq!(
                events[1],
                Event::Read {
                    stripe: 7,
                    version: 2
                }
            );
            assert_eq!(log.len(), 0);
        }
        assert_eq!(sink.session_count(), 1);
    }

    #[test]
    fn drain_skips_empty_sessions() {
        let sink = TraceSink::new();
        let a = sink.register_session();
        let _empty = sink.register_session();
        // SAFETY: single-threaded test.
        unsafe {
            a.push(begin(0));
            a.push(Event::Commit { version: None });
        }
        let h = sink.drain_history().unwrap();
        assert_eq!(h.sessions.len(), 1);
    }

    #[test]
    fn closed_sink_rejects_new_activations() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        assert!(log.try_activate(&sink), "open sink must activate");
        log.deactivate();
        let _ = sink.drain_history().unwrap();
        assert!(sink.is_closed());
        assert!(!log.try_activate(&sink), "closed sink must refuse");
        assert!(!log.is_active(), "refused activation must not stick");
    }

    #[test]
    fn drain_times_out_on_live_session() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        assert!(log.try_activate(&sink));
        let err = sink
            .drain_history_with_deadline(Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, RecordingError::SessionStillRecording { session: 0 });
        // Once the attempt finishes, draining succeeds.
        log.deactivate();
        assert!(sink.drain_history().is_ok());
    }

    #[test]
    fn rollover_poisons_the_drain() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        // SAFETY: single-threaded test.
        unsafe {
            log.push(begin(0));
            log.push(Event::Commit { version: None });
        }
        sink.mark_rollover();
        sink.mark_rollover();
        let err = sink.drain_history().unwrap_err();
        assert_eq!(err, RecordingError::ClockRollover { rollovers: 2 });
        assert!(err.to_string().contains("rolled over 2"), "{err}");
    }

    #[test]
    fn attempt_guard_deactivates_on_drop_and_unwind() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        assert!(log.try_activate(&sink));
        {
            let _guard = AttemptGuard::new(&log);
            assert!(log.is_active());
        }
        assert!(!log.is_active());

        assert!(log.try_activate(&sink));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = AttemptGuard::new(&log);
            panic!("intentional test panic: recorded attempt body");
        }));
        assert!(caught.is_err());
        assert!(!log.is_active(), "guard must deactivate on unwind");
    }

    #[test]
    fn capped_sink_skips_whole_attempts_and_counts_them() {
        let sink = TraceSink::with_event_cap(3);
        assert_eq!(sink.event_cap(), 3);
        let log = sink.register_session();
        // First attempt activates (count 0 < 3) and records 4 events —
        // overshoot within one attempt is allowed.
        assert!(log.try_activate(&sink));
        // SAFETY: single-threaded test.
        unsafe {
            log.push(begin(0));
            log.push(Event::Read {
                stripe: 1,
                version: 0,
            });
            log.push(Event::Write { stripe: 1 });
            log.push(Event::Commit { version: Some(1) });
        }
        log.deactivate();
        // Next attempt is refused at the cap, as a whole.
        assert!(!log.try_activate(&sink), "cap must refuse activation");
        assert!(!log.is_active());
        assert_eq!(sink.skipped_attempts(), 1);
        // The drained history is still well-formed: one complete attempt.
        let h = sink.drain_history().unwrap();
        assert_eq!(h.sessions.len(), 1);
        assert_eq!(h.sessions[0].len(), 1);
    }

    #[test]
    fn fresh_windows_never_share_events() {
        // The sampler contract: a drained (closed) window's sink can
        // never receive an attempt recorded after the boundary, so no
        // event is attributed to two windows.
        let window_a = TraceSink::with_event_cap(1024);
        let log_a = window_a.register_session();
        assert!(log_a.try_activate(&window_a));
        // SAFETY: single-threaded test.
        unsafe {
            log_a.push(begin(0));
            log_a.push(Event::Commit { version: None });
        }
        log_a.deactivate();
        let ha = window_a.drain_history().unwrap();
        assert_eq!(ha.sessions.len(), 1);

        // Between windows: the old sink refuses, so the attempt that
        // runs before the next window attaches goes unrecorded.
        assert!(!log_a.try_activate(&window_a));

        // The next window gets a fresh sink and fresh sessions.
        let window_b = TraceSink::with_event_cap(1024);
        let log_b = window_b.register_session();
        assert!(log_b.try_activate(&window_b));
        // SAFETY: single-threaded test.
        unsafe {
            log_b.push(begin(5));
            log_b.push(Event::Commit { version: None });
        }
        log_b.deactivate();
        let hb = window_b.drain_history().unwrap();
        assert_eq!(hb.sessions.len(), 1);
        // Window A's history was taken before B recorded: draining A
        // again yields nothing (its events moved, not copied).
        // SAFETY: nothing records into window_a anymore.
        let again = unsafe { window_a.drain_history_unchecked() }.unwrap();
        assert_eq!(again.sessions.len(), 0);
    }

    #[test]
    fn event_display_is_stable() {
        assert_eq!(
            Event::Read {
                stripe: 4,
                version: 9
            }
            .to_string(),
            "read stripe=4 v=9"
        );
        assert_eq!(
            Event::Commit { version: Some(5) }.to_string(),
            "commit wv=5"
        );
        assert_eq!(Event::Commit { version: None }.to_string(), "commit ro");
        assert_eq!(
            Event::Begin { start: 2, epoch: 1 }.to_string(),
            "begin start=2 epoch=1"
        );
    }
}
