//! The raw event schema and the recording substrate the backends write
//! through when their `record` cargo feature is enabled.
//!
//! Recording must not perturb the system it observes, so the hot path is
//! wait-free: each recording thread owns one [`SessionLog`] — a plain
//! `Vec` push, no atomics, no locks — and the shared [`TraceSink`] is
//! only locked when a thread registers its log (once per thread) and
//! when the logs are drained after the run. One `SessionLog` is exactly
//! one *session* in the dbcop sense: the sequence of transaction
//! attempts one thread performed, in program order.

use crate::history::{History, HistoryError};
use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex};

/// One recorded transactional event.
///
/// Stripe indices are the backend's lock-array indices (the unit of
/// conflict detection); versions are global-clock timestamps as stored
/// in the lock words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A transaction attempt started with the given snapshot time.
    Begin {
        /// Clock value sampled at begin (LSA `start`, TL2 `rv`).
        start: u64,
    },
    /// A transactional read returned a value to the caller.
    Read {
        /// Lock-array index covering the address.
        stripe: u64,
        /// Version observed in the (unowned) lock word.
        version: u64,
    },
    /// A transactional write was buffered or performed in place.
    Write {
        /// Lock-array index covering the address.
        stripe: u64,
    },
    /// The attempt committed.
    Commit {
        /// Commit timestamp for update transactions; `None` for the
        /// read-only fast path (no clock increment, no writes).
        version: Option<u64>,
    },
    /// The attempt aborted (all of its writes were undone/discarded).
    Abort,
}

/// The event log of one recording thread (= one session).
///
/// Only the owning thread may push; draining requires that no thread can
/// still be inside a transaction. Both operations are `unsafe fn`s so
/// the call sites carry that contract explicitly.
#[derive(Debug, Default)]
pub struct SessionLog {
    events: UnsafeCell<Vec<Event>>,
}

// SAFETY: the `UnsafeCell` is only written by the owning thread (push)
// or after all recording threads have quiesced (take) — the contracts on
// the two unsafe fns below. The registry needs to hold `Arc<SessionLog>`
// across threads, hence the manual impls.
unsafe impl Send for SessionLog {}
unsafe impl Sync for SessionLog {}

impl SessionLog {
    /// Append one event.
    ///
    /// # Safety
    /// Must only be called by the thread that registered this log, and
    /// never concurrently with [`SessionLog::take`].
    #[inline]
    pub unsafe fn push(&self, event: Event) {
        (*self.events.get()).push(event);
    }

    /// Take the recorded events, leaving the log empty.
    ///
    /// # Safety
    /// No thread may be pushing concurrently: call only after every
    /// worker that could run transactions has finished (joined) or the
    /// trace has been detached and all threads have observed that.
    pub unsafe fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.get())
    }

    /// Number of events recorded so far.
    ///
    /// # Safety
    /// Same contract as [`SessionLog::take`]: no concurrent pushes.
    pub unsafe fn len(&self) -> usize {
        (*self.events.get()).len()
    }

    /// True when nothing has been recorded.
    ///
    /// # Safety
    /// Same contract as [`SessionLog::take`]: no concurrent pushes.
    pub unsafe fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registry of per-thread logs for one recorded run.
///
/// Created by the harness, attached to a backend (which registers one
/// [`SessionLog`] per recording thread), and drained into a [`History`]
/// once the workload's threads have joined.
#[derive(Debug, Default)]
pub struct TraceSink {
    sessions: Mutex<Vec<Arc<SessionLog>>>,
}

impl TraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Arc<TraceSink> {
        Arc::new(TraceSink::default())
    }

    /// Register a new session (called once per recording thread by the
    /// backend's begin path).
    pub fn register_session(&self) -> Arc<SessionLog> {
        let log = Arc::new(SessionLog::default());
        self.sessions
            .lock()
            .expect("sink poisoned")
            .push(Arc::clone(&log));
        log
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().expect("sink poisoned").len()
    }

    /// Drain every session's events and assemble the [`History`].
    ///
    /// Sessions that recorded no events (e.g. a registered thread that
    /// never ran a transaction) are dropped.
    ///
    /// # Safety
    /// No thread may still be recording: every worker that ran
    /// transactions under this sink must have finished (joined) first.
    pub unsafe fn drain_history(&self) -> Result<History, HistoryError> {
        let sessions = self.sessions.lock().expect("sink poisoned");
        let logs: Vec<Vec<Event>> = sessions
            .iter()
            .map(|s| s.take())
            .filter(|events| !events.is_empty())
            .collect();
        History::from_event_logs(logs)
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Begin { start } => write!(f, "begin start={start}"),
            Event::Read { stripe, version } => write!(f, "read stripe={stripe} v={version}"),
            Event::Write { stripe } => write!(f, "write stripe={stripe}"),
            Event::Commit { version: Some(v) } => write!(f, "commit wv={v}"),
            Event::Commit { version: None } => write!(f, "commit ro"),
            Event::Abort => write!(f, "abort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_push_take_roundtrip() {
        let sink = TraceSink::new();
        let log = sink.register_session();
        // SAFETY: single-threaded test.
        unsafe {
            log.push(Event::Begin { start: 3 });
            log.push(Event::Read {
                stripe: 7,
                version: 2,
            });
            log.push(Event::Commit { version: None });
            assert_eq!(log.len(), 3);
            let events = log.take();
            assert_eq!(events.len(), 3);
            assert_eq!(
                events[1],
                Event::Read {
                    stripe: 7,
                    version: 2
                }
            );
            assert_eq!(log.len(), 0);
        }
        assert_eq!(sink.session_count(), 1);
    }

    #[test]
    fn drain_skips_empty_sessions() {
        let sink = TraceSink::new();
        let a = sink.register_session();
        let _empty = sink.register_session();
        // SAFETY: single-threaded test.
        unsafe {
            a.push(Event::Begin { start: 0 });
            a.push(Event::Commit { version: None });
            let h = sink.drain_history().unwrap();
            assert_eq!(h.sessions.len(), 1);
        }
    }

    #[test]
    fn event_display_is_stable() {
        assert_eq!(
            Event::Read {
                stripe: 4,
                version: 9
            }
            .to_string(),
            "read stripe=4 v=9"
        );
        assert_eq!(
            Event::Commit { version: Some(5) }.to_string(),
            "commit wv=5"
        );
        assert_eq!(Event::Commit { version: None }.to_string(), "commit ro");
    }
}
