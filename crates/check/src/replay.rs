//! WAL ⟷ recorded-history equivalence: the replay oracle of the
//! durable engine.
//!
//! The durable layer publishes one WAL record per committed update
//! transaction, stamped with the instance's durability epoch and the
//! transaction's commit timestamp — the same `(epoch, version)`
//! identity a recorded history gives committed update transactions.
//! This module cross-checks the two artifacts:
//!
//! * **No phantom writes (M1.5)** — every WAL commit must correspond to
//!   a committed update transaction in the history. A WAL record with
//!   no matching transaction means the log invented a commit.
//! * **Uniqueness** — a committed transaction appears in the WAL at
//!   most once (replaying a log must be idempotent per commit).
//! * **No missing writes (M1.6)** — when the WAL is *complete* (clean
//!   shutdown, no crash truncation), every committed update transaction
//!   must appear in it. After a crash the WAL is a prefix, so this
//!   check only applies when the caller vouches for completeness.
//!
//! The durability epoch and the recording epoch advance together on
//! reconfigure but diverge on clock roll-over (which poisons the
//! recording sink — there is no sound history to compare against), so
//! the cross-check is meaningful exactly where recording is: in
//! roll-over-free windows. This module deliberately depends only on
//! [`crate::history`] — the WAL commit identity is three integers, not
//! a `stm-wal` type, so `stm-check` stays backend- and format-neutral.

use crate::history::History;

/// The identity a WAL record gives one committed update transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalCommit {
    /// Durability epoch the record was published under.
    pub epoch: u64,
    /// Commit timestamp of the transaction.
    pub commit_ts: u64,
}

/// One divergence between a WAL and the recorded history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayViolation {
    /// A WAL commit with no matching committed update transaction.
    PhantomCommit(WalCommit),
    /// The same commit identity appeared in the WAL more than once.
    DuplicateCommit(WalCommit),
    /// A committed update transaction absent from a complete WAL.
    MissingCommit(WalCommit),
}

impl std::fmt::Display for ReplayViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayViolation::PhantomCommit(c) => write!(
                f,
                "WAL record (epoch {}, ts {}) matches no committed update transaction",
                c.epoch, c.commit_ts
            ),
            ReplayViolation::DuplicateCommit(c) => write!(
                f,
                "WAL records commit (epoch {}, ts {}) more than once",
                c.epoch, c.commit_ts
            ),
            ReplayViolation::MissingCommit(c) => write!(
                f,
                "committed update transaction (epoch {}, ts {}) missing from a complete WAL",
                c.epoch, c.commit_ts
            ),
        }
    }
}

/// Cross-check `commits` (one entry per WAL record, log order) against
/// the committed update transactions of `history`. With `complete`,
/// also require every committed update transaction to appear (clean
/// shutdown); without it the WAL may be any prefix (crash).
///
/// Returns every violation found; an empty vector certifies the pair.
pub fn check_wal_commits(
    history: &History,
    commits: &[WalCommit],
    complete: bool,
) -> Vec<ReplayViolation> {
    use std::collections::HashMap;

    // Committed update transactions by identity. Commit timestamps are
    // unique per epoch (the global clock hands them out), so a count
    // above one here would itself be a recording bug the history
    // checker reports; the map keeps the last.
    let mut committed: HashMap<WalCommit, bool> = HashMap::new();
    for t in history.txns() {
        if let Some(version) = t.commit_version() {
            committed.insert(
                WalCommit {
                    epoch: t.epoch,
                    commit_ts: version,
                },
                false,
            );
        }
    }

    let mut violations = Vec::new();
    for &c in commits {
        match committed.get_mut(&c) {
            None => violations.push(ReplayViolation::PhantomCommit(c)),
            Some(seen @ false) => *seen = true,
            Some(_) => violations.push(ReplayViolation::DuplicateCommit(c)),
        }
    }
    if complete {
        let mut missing: Vec<WalCommit> = committed
            .iter()
            .filter(|&(_, &seen)| !seen)
            .map(|(&c, _)| c)
            .collect();
        missing.sort_unstable_by_key(|c| (c.epoch, c.commit_ts));
        violations.extend(missing.into_iter().map(ReplayViolation::MissingCommit));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{Outcome, Txn, TxnId};

    fn committed(epoch: u64, version: u64) -> Txn {
        Txn {
            id: TxnId {
                session: 0,
                index: 0,
            },
            start: 0,
            epoch,
            reads: Vec::new(),
            writes: Vec::new(),
            outcome: Outcome::Committed {
                version: Some(version),
            },
        }
    }

    fn history_of(txns: Vec<Txn>) -> History {
        History {
            sessions: vec![txns],
        }
    }

    #[test]
    fn matching_prefix_is_clean_without_completeness() {
        let h = history_of(vec![committed(0, 1), committed(0, 2), committed(0, 3)]);
        let wal = [
            WalCommit {
                epoch: 0,
                commit_ts: 1,
            },
            WalCommit {
                epoch: 0,
                commit_ts: 2,
            },
        ];
        assert!(check_wal_commits(&h, &wal, false).is_empty());
        // The same prefix fails the complete check: ts 3 is missing.
        let v = check_wal_commits(&h, &wal, true);
        assert_eq!(
            v,
            vec![ReplayViolation::MissingCommit(WalCommit {
                epoch: 0,
                commit_ts: 3
            })]
        );
    }

    #[test]
    fn phantom_and_duplicate_are_flagged() {
        let h = history_of(vec![committed(0, 1)]);
        let wal = [
            WalCommit {
                epoch: 0,
                commit_ts: 1,
            },
            WalCommit {
                epoch: 0,
                commit_ts: 1,
            },
            WalCommit {
                epoch: 0,
                commit_ts: 9,
            },
        ];
        let v = check_wal_commits(&h, &wal, false);
        assert!(v.contains(&ReplayViolation::DuplicateCommit(WalCommit {
            epoch: 0,
            commit_ts: 1
        })));
        assert!(v.contains(&ReplayViolation::PhantomCommit(WalCommit {
            epoch: 0,
            commit_ts: 9
        })));
    }

    #[test]
    fn epochs_partition_identities() {
        // Same commit_ts in different epochs are different commits.
        let h = history_of(vec![committed(0, 1), committed(1, 1)]);
        let wal = [
            WalCommit {
                epoch: 0,
                commit_ts: 1,
            },
            WalCommit {
                epoch: 1,
                commit_ts: 1,
            },
        ];
        assert!(check_wal_commits(&h, &wal, true).is_empty());
    }
}
