//! The validated history model: sessions → transactions → accesses.
//!
//! Raw event logs are flat streams of `Begin … Commit/Abort` brackets;
//! [`History::from_event_logs`] checks the bracket structure (every
//! attempt begins once and terminates exactly once, commit timestamps
//! are present exactly when the attempt wrote) and folds each attempt
//! into a [`Txn`] with its read set (stripe → observed version) and
//! write set. Malformed logs are recording bugs, not consistency
//! violations, and are reported as [`HistoryError`]s.

use crate::events::Event;

/// Identifies a transaction attempt: session index (thread) and its
/// position within the session, both 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Which session (recording thread) the attempt belongs to.
    pub session: usize,
    /// Position of the attempt within its session.
    pub index: usize,
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}t{}", self.session, self.index)
    }
}

/// How a transaction attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Committed. Update transactions carry their unique commit
    /// timestamp; the read-only fast path commits without one.
    Committed {
        /// Global-clock commit timestamp (`None` for read-only commits).
        version: Option<u64>,
    },
    /// Aborted; none of its writes became visible.
    Aborted,
}

/// One transaction attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Identity within the history.
    pub id: TxnId,
    /// Snapshot time sampled at begin.
    pub start: u64,
    /// Reconfigure epoch the attempt ran in. Stripe IDs and versions
    /// are only comparable within one epoch (the checker segments on
    /// this field).
    pub epoch: u64,
    /// Reads that returned a value: `(stripe, observed version)`, in
    /// program order (a stripe may repeat).
    pub reads: Vec<(u64, u64)>,
    /// Stripes written (deduplicated, sorted).
    pub writes: Vec<u64>,
    /// How the attempt ended.
    pub outcome: Outcome,
}

impl Txn {
    /// Commit timestamp, if this is a committed update transaction.
    pub fn commit_version(&self) -> Option<u64> {
        match self.outcome {
            Outcome::Committed { version } => version,
            Outcome::Aborted => None,
        }
    }

    /// True for any committed outcome (update or read-only).
    pub fn is_committed(&self) -> bool {
        matches!(self.outcome, Outcome::Committed { .. })
    }
}

/// A full recorded run: one `Vec<Txn>` per session, program order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Sessions (threads), each a sequence of transaction attempts.
    pub sessions: Vec<Vec<Txn>>,
}

/// A structurally malformed event log (a recording bug).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryError {
    /// Session the malformed event belongs to.
    pub session: usize,
    /// Event offset within the session log.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "session {} event {}: {}",
            self.session, self.offset, self.message
        )
    }
}

impl std::error::Error for HistoryError {}

impl History {
    /// Fold raw per-session event streams into the validated model.
    pub fn from_event_logs(logs: Vec<Vec<Event>>) -> Result<History, HistoryError> {
        let mut sessions = Vec::with_capacity(logs.len());
        for (session, log) in logs.into_iter().enumerate() {
            let err = |offset: usize, message: String| HistoryError {
                session,
                offset,
                message,
            };
            let mut txns: Vec<Txn> = Vec::new();
            // In-flight attempt: (start, epoch, reads, writes).
            type OpenAttempt = (u64, u64, Vec<(u64, u64)>, Vec<u64>);
            let mut open: Option<OpenAttempt> = None;
            for (offset, event) in log.iter().enumerate() {
                match *event {
                    Event::Begin { start, epoch } => {
                        if open.is_some() {
                            return Err(err(offset, "begin inside an open attempt".into()));
                        }
                        open = Some((start, epoch, Vec::new(), Vec::new()));
                    }
                    Event::Read { stripe, version } => match open.as_mut() {
                        Some((_, _, reads, _)) => reads.push((stripe, version)),
                        None => return Err(err(offset, "read outside an attempt".into())),
                    },
                    Event::Write { stripe } => match open.as_mut() {
                        Some((_, _, _, writes)) => writes.push(stripe),
                        None => return Err(err(offset, "write outside an attempt".into())),
                    },
                    Event::Commit { version } => {
                        let Some((start, epoch, reads, mut writes)) = open.take() else {
                            return Err(err(offset, "commit outside an attempt".into()));
                        };
                        writes.sort_unstable();
                        writes.dedup();
                        match version {
                            None if !writes.is_empty() => {
                                return Err(err(
                                    offset,
                                    "read-only commit recorded for an attempt with writes".into(),
                                ));
                            }
                            Some(_) if writes.is_empty() => {
                                return Err(err(
                                    offset,
                                    "commit timestamp recorded for an attempt without writes"
                                        .into(),
                                ));
                            }
                            _ => {}
                        }
                        txns.push(Txn {
                            id: TxnId {
                                session,
                                index: txns.len(),
                            },
                            start,
                            epoch,
                            reads,
                            writes,
                            outcome: Outcome::Committed { version },
                        });
                    }
                    Event::Abort => {
                        let Some((start, epoch, reads, mut writes)) = open.take() else {
                            return Err(err(offset, "abort outside an attempt".into()));
                        };
                        writes.sort_unstable();
                        writes.dedup();
                        txns.push(Txn {
                            id: TxnId {
                                session,
                                index: txns.len(),
                            },
                            start,
                            epoch,
                            reads,
                            writes,
                            outcome: Outcome::Aborted,
                        });
                    }
                }
            }
            if open.is_some() {
                return Err(err(log.len(), "session ends inside an open attempt".into()));
            }
            sessions.push(txns);
        }
        Ok(History { sessions })
    }

    /// Iterate over every transaction, all sessions.
    pub fn txns(&self) -> impl Iterator<Item = &Txn> {
        self.sessions.iter().flatten()
    }

    /// Look up a transaction by id.
    pub fn txn(&self, id: TxnId) -> Option<&Txn> {
        self.sessions.get(id.session)?.get(id.index)
    }

    /// Distinct reconfigure epochs present, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.txns().map(|t| t.epoch).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Drop every transaction recorded before `min_epoch` and re-index
    /// the survivors. Used when recording was attached mid-run: the
    /// partial epoch between attach and the next reconfiguration reads
    /// versions whose writers were never recorded, so only the epochs
    /// that start at a reconfiguration boundary are checkable.
    pub fn retain_epochs_from(&mut self, min_epoch: u64) {
        for (session, txns) in self.sessions.iter_mut().enumerate() {
            txns.retain(|t| t.epoch >= min_epoch);
            for (index, t) in txns.iter_mut().enumerate() {
                t.id = TxnId { session, index };
            }
        }
    }

    /// Totals: `(committed updates, read-only commits, aborts, reads,
    /// writes)`.
    pub fn totals(&self) -> (usize, usize, usize, usize, usize) {
        let (mut cu, mut ro, mut ab, mut r, mut w) = (0, 0, 0, 0, 0);
        for t in self.txns() {
            match t.outcome {
                Outcome::Committed { version: Some(_) } => cu += 1,
                Outcome::Committed { version: None } => ro += 1,
                Outcome::Aborted => ab += 1,
            }
            r += t.reads.len();
            w += t.writes.len();
        }
        (cu, ro, ab, r, w)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let (cu, ro, ab, r, w) = self.totals();
        format!(
            "{} session(s), {} committed update txn(s), {} read-only commit(s), \
             {} abort(s), {} read(s), {} write(s)",
            self.sessions.len(),
            cu,
            ro,
            ab,
            r,
            w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(start: u64) -> Event {
        Event::Begin { start, epoch: 0 }
    }

    fn ok_log() -> Vec<Event> {
        vec![
            begin(0),
            Event::Read {
                stripe: 1,
                version: 0,
            },
            Event::Write { stripe: 1 },
            Event::Write { stripe: 1 },
            Event::Commit { version: Some(1) },
            begin(1),
            Event::Read {
                stripe: 1,
                version: 1,
            },
            Event::Commit { version: None },
            begin(1),
            Event::Read {
                stripe: 2,
                version: 0,
            },
            Event::Abort,
        ]
    }

    #[test]
    fn folds_brackets_into_txns() {
        let h = History::from_event_logs(vec![ok_log()]).unwrap();
        assert_eq!(h.sessions.len(), 1);
        let s = &h.sessions[0];
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].writes, vec![1], "writes deduplicated");
        assert_eq!(s[0].commit_version(), Some(1));
        assert!(s[1].is_committed());
        assert_eq!(s[1].commit_version(), None);
        assert_eq!(s[2].outcome, Outcome::Aborted);
        assert_eq!(
            s[2].id,
            TxnId {
                session: 0,
                index: 2
            }
        );
        assert_eq!(h.totals(), (1, 1, 1, 3, 1));
    }

    #[test]
    fn rejects_unbalanced_brackets() {
        let bad = vec![begin(0), begin(1)];
        let e = History::from_event_logs(vec![bad]).unwrap_err();
        assert!(e.message.contains("begin inside"), "{e}");

        let bad = vec![Event::Read {
            stripe: 0,
            version: 0,
        }];
        assert!(History::from_event_logs(vec![bad]).is_err());

        let bad = vec![begin(0)];
        let e = History::from_event_logs(vec![bad]).unwrap_err();
        assert!(e.message.contains("ends inside"), "{e}");
    }

    #[test]
    fn rejects_commit_version_mismatch() {
        let bad = vec![
            begin(0),
            Event::Write { stripe: 3 },
            Event::Commit { version: None },
        ];
        let e = History::from_event_logs(vec![bad]).unwrap_err();
        assert!(e.message.contains("read-only commit"), "{e}");

        let bad = vec![begin(0), Event::Commit { version: Some(4) }];
        let e = History::from_event_logs(vec![bad]).unwrap_err();
        assert!(e.message.contains("without writes"), "{e}");
    }

    #[test]
    fn epochs_fold_and_retain() {
        let logs = vec![vec![
            begin(0),
            Event::Write { stripe: 1 },
            Event::Commit { version: Some(1) },
            Event::Begin { start: 0, epoch: 1 },
            Event::Write { stripe: 1 },
            Event::Commit { version: Some(1) },
            Event::Begin { start: 1, epoch: 1 },
            Event::Read {
                stripe: 1,
                version: 1,
            },
            Event::Commit { version: None },
        ]];
        let mut h = History::from_event_logs(logs).unwrap();
        assert_eq!(h.epochs(), vec![0, 1]);
        assert_eq!(h.sessions[0][0].epoch, 0);
        assert_eq!(h.sessions[0][1].epoch, 1);
        h.retain_epochs_from(1);
        assert_eq!(h.epochs(), vec![1]);
        assert_eq!(h.sessions[0].len(), 2);
        // Survivors are re-indexed from 0.
        assert_eq!(
            h.sessions[0][0].id,
            TxnId {
                session: 0,
                index: 0
            }
        );
    }

    #[test]
    fn summary_mentions_counts() {
        let h = History::from_event_logs(vec![ok_log()]).unwrap();
        let s = h.summary();
        assert!(s.contains("1 committed update"), "{s}");
        assert!(s.contains("1 abort"), "{s}");
    }
}
