//! Property tests for the oracle: randomly generated serializable
//! histories must pass, and deterministic corruptions of them (stale
//! reads, lost writes, duplicated commit timestamps) must fail.
//!
//! Histories are produced by simulating an *atomic* (one transaction at
//! a time) execution over a small stripe space with a global version
//! clock — serializable and opaque by construction. Every history
//! starts with a fixed scaffold (two writers and a reader of stripe 0)
//! so each corruption has a guaranteed target regardless of the random
//! tail.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_check::{check_history, CheckOpts, Event, History, Violation};

const STRIPES: u64 = 8;

/// Simulated run: returns per-session event logs plus the scaffold's
/// landmark versions `(v1, v2, final_clock)`.
fn simulate(seed: u64, sessions: usize, txns: usize) -> (Vec<Vec<Event>>, u64, u64, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut logs: Vec<Vec<Event>> = vec![Vec::new(); sessions.max(1)];
    let mut clock = 0u64;
    let mut stripe_version = [0u64; STRIPES as usize];

    // Scaffold on session 0: T0 writes stripes {0, 7} (v1); T1 reads
    // stripe 0 at v1 and writes stripe 3 (v2); T2 overwrites stripe 0.
    clock += 1;
    let v1 = clock;
    logs[0].extend([
        Event::Begin { start: 0, epoch: 0 },
        Event::Write { stripe: 0 },
        Event::Write { stripe: 7 },
        Event::Commit { version: Some(v1) },
    ]);
    stripe_version[0] = v1;
    stripe_version[7] = v1;
    clock += 1;
    let v2 = clock;
    logs[0].extend([
        Event::Begin {
            start: v1,
            epoch: 0,
        },
        Event::Read {
            stripe: 0,
            version: v1,
        },
        Event::Write { stripe: 3 },
        Event::Commit { version: Some(v2) },
    ]);
    stripe_version[3] = v2;
    clock += 1;
    logs[0].extend([
        Event::Begin {
            start: v2,
            epoch: 0,
        },
        Event::Write { stripe: 0 },
        Event::Commit {
            version: Some(clock),
        },
    ]);
    stripe_version[0] = clock;

    // Random atomic tail across sessions.
    for _ in 0..txns {
        let s = rng.gen_range(0..logs.len() as u64) as usize;
        let log = &mut logs[s];
        log.push(Event::Begin {
            start: clock,
            epoch: 0,
        });
        let n_reads = rng.gen_range(0..4u32);
        for _ in 0..n_reads {
            let stripe = rng.gen_range(0..STRIPES);
            log.push(Event::Read {
                stripe,
                version: stripe_version[stripe as usize],
            });
        }
        let n_writes = rng.gen_range(0..3u32);
        let mut written = Vec::new();
        for _ in 0..n_writes {
            let stripe = rng.gen_range(0..STRIPES);
            log.push(Event::Write { stripe });
            written.push(stripe);
        }
        let abort = rng.gen_range(0..10u32) == 0;
        if abort {
            log.push(Event::Abort);
        } else if written.is_empty() {
            log.push(Event::Commit { version: None });
        } else {
            clock += 1;
            for &stripe in &written {
                stripe_version[stripe as usize] = clock;
            }
            log.push(Event::Commit {
                version: Some(clock),
            });
        }
    }
    (logs, v1, v2, clock)
}

fn build(logs: Vec<Vec<Event>>) -> History {
    History::from_event_logs(logs).expect("simulated logs are well-formed")
}

proptest! {
    #[test]
    fn random_serializable_histories_pass(seed in 0u64..200, sessions in 1usize..5, txns in 0usize..60) {
        let (logs, _, _, _) = simulate(seed, sessions, txns);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stale_read_corruption_fails(seed in 0u64..100, sessions in 1usize..5, txns in 0usize..40) {
        // Append a committed update transaction that reads stripe 0 at
        // the long-overwritten v1: stale at its commit point.
        let (mut logs, v1, _, clock) = simulate(seed, sessions, txns);
        logs[0].extend([
            Event::Begin { start: clock, epoch: 0 },
            Event::Read { stripe: 0, version: v1 },
            Event::Write { stripe: 5 },
            Event::Commit { version: Some(clock + 1) },
        ]);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(!report.is_clean(), "stale read not caught");
        prop_assert!(
            report.violations.iter().any(|v| matches!(v, Violation::SerializabilityCycle { .. })),
            "no cycle witness: {report}"
        );
    }

    #[test]
    fn lost_write_corruption_fails(seed in 0u64..100, sessions in 1usize..5, txns in 0usize..40) {
        // Drop the scaffold writer's `Write {stripe 0}` event: the
        // scaffold reader's observation of v1 now matches no commit.
        let (mut logs, v1, _, _) = simulate(seed, sessions, txns);
        let pos = logs[0]
            .iter()
            .position(|e| *e == Event::Write { stripe: 0 })
            .expect("scaffold write present");
        logs[0].remove(pos);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(!report.is_clean(), "lost write not caught");
        prop_assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::PhantomVersion { stripe: 0, version, .. } if *version == v1
            )),
            "no phantom for the lost write: {report}"
        );
    }

    #[test]
    fn duplicated_commit_version_fails(seed in 0u64..100, sessions in 1usize..5, txns in 0usize..40) {
        // Append an update commit reusing the scaffold's v1 timestamp.
        let (mut logs, v1, _, clock) = simulate(seed, sessions, txns);
        logs[0].extend([
            Event::Begin { start: clock, epoch: 0 },
            Event::Write { stripe: 6 },
            Event::Commit { version: Some(v1) },
        ]);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(!report.is_clean(), "duplicate commit version not caught");
        prop_assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::DuplicateCommitVersion { version, .. } if *version == v1
            )),
            "{report}"
        );
    }
}
