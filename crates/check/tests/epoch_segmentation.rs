//! Regression + property tests for the tentpole: histories that span a
//! `reconfigure` boundary carry per-attempt epoch tags, and the checker
//! must segment on them — deliberately aliased stripe IDs and commit
//! timestamps across epochs must *not* be conflated — while a corrupted
//! cross-epoch commit-order edge (session order contradicting the
//! epoch order) must be caught.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_check::{check_history, CheckOpts, Event, History, Violation};

const STRIPES: u64 = 6;

/// Simulate one *epoch*: an atomic (one txn at a time) execution over a
/// fresh stripe space with a clock starting at 0 — serializable and
/// opaque by construction, and deliberately reusing the same stripe IDs
/// and low version numbers as every other epoch. Events are appended to
/// `logs` with the given epoch tag.
fn simulate_epoch(logs: &mut [Vec<Event>], epoch: u64, seed: u64, txns: usize) {
    let mut rng = SmallRng::seed_from_u64(seed ^ (epoch << 32));
    let mut clock = 0u64;
    let mut stripe_version = [0u64; STRIPES as usize];

    // Scaffold: a writer of stripe 0 at v1 and a reader of it — both
    // exist in *every* epoch, so stripe 0/v1 alias across all epochs.
    clock += 1;
    logs[0].extend([
        Event::Begin { start: 0, epoch },
        Event::Write { stripe: 0 },
        Event::Commit {
            version: Some(clock),
        },
    ]);
    stripe_version[0] = clock;
    logs[0].extend([
        Event::Begin {
            start: clock,
            epoch,
        },
        Event::Read {
            stripe: 0,
            version: clock,
        },
        Event::Commit { version: None },
    ]);

    for _ in 0..txns {
        let s = rng.gen_range(0..logs.len() as u64) as usize;
        let log = &mut logs[s];
        log.push(Event::Begin {
            start: clock,
            epoch,
        });
        for _ in 0..rng.gen_range(0..3u32) {
            let stripe = rng.gen_range(0..STRIPES);
            log.push(Event::Read {
                stripe,
                version: stripe_version[stripe as usize],
            });
        }
        let mut written = Vec::new();
        for _ in 0..rng.gen_range(0..3u32) {
            let stripe = rng.gen_range(0..STRIPES);
            log.push(Event::Write { stripe });
            written.push(stripe);
        }
        if rng.gen_range(0..10u32) == 0 {
            log.push(Event::Abort);
        } else if written.is_empty() {
            log.push(Event::Commit { version: None });
        } else {
            clock += 1;
            for &stripe in &written {
                stripe_version[stripe as usize] = clock;
            }
            log.push(Event::Commit {
                version: Some(clock),
            });
        }
    }
}

fn build(logs: Vec<Vec<Event>>) -> History {
    History::from_event_logs(logs).expect("simulated logs are well-formed")
}

/// Rewrite every `Begin` to epoch 0 — the pre-fix view of the run.
fn conflate(logs: &mut [Vec<Event>]) {
    for log in logs.iter_mut() {
        for e in log.iter_mut() {
            if let Event::Begin { epoch, .. } = e {
                *epoch = 0;
            }
        }
    }
}

proptest! {
    /// Per-epoch histories with aliased stripe IDs and commit versions
    /// across a reconfigure are clean when segmented...
    #[test]
    fn aliased_epochs_are_not_conflated(
        seed in 0u64..150,
        sessions in 1usize..4,
        epochs in 2u64..5,
        txns in 0usize..30,
    ) {
        let mut logs: Vec<Vec<Event>> = vec![Vec::new(); sessions];
        for e in 0..epochs {
            simulate_epoch(&mut logs, e, seed, txns);
        }
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(report.is_clean(), "{report}");
        prop_assert_eq!(report.epochs, epochs as usize);
    }

    /// ...while the conflated (pre-fix) view of the same run provably
    /// mischecks: every epoch re-commits stripe 0 at version 1, so
    /// squashing the epochs yields duplicate commit timestamps.
    #[test]
    fn conflated_epochs_provably_mischeck(
        seed in 0u64..150,
        sessions in 1usize..4,
        txns in 0usize..30,
    ) {
        let mut logs: Vec<Vec<Event>> = vec![Vec::new(); sessions];
        simulate_epoch(&mut logs, 0, seed, txns);
        simulate_epoch(&mut logs, 1, seed.wrapping_add(1), txns);
        conflate(&mut logs);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(
            !report.is_clean(),
            "conflating two epochs must surface the stripe/version aliasing"
        );
    }

    /// Mutation: corrupt a cross-epoch commit-order edge by moving an
    /// epoch-0 attempt after the epoch-1 tail of its session.
    #[test]
    fn corrupted_cross_epoch_order_is_caught(
        seed in 0u64..150,
        sessions in 1usize..4,
        txns in 0usize..30,
    ) {
        let mut logs: Vec<Vec<Event>> = vec![Vec::new(); sessions];
        simulate_epoch(&mut logs, 0, seed, txns);
        simulate_epoch(&mut logs, 1, seed.wrapping_add(1), txns);
        // Session 0 always holds both epochs (the scaffold); append an
        // attempt tagged with the *older* epoch.
        logs[0].extend([
            Event::Begin { start: 0, epoch: 0 },
            Event::Commit { version: None },
        ]);
        let report = check_history(&build(logs), &CheckOpts::default());
        prop_assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(
                    v,
                    Violation::CrossEpochOrder { from_epoch: 1, to_epoch: 0, .. }
                )),
            "out-of-order epoch not caught: {report}"
        );
    }
}
