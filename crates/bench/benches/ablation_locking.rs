//! Ablation: encounter-time vs commit-time locking.
//!
//! Section 3 argues encounter-time locking wins when conflicts are
//! frequent because doomed transactions stop early instead of completing
//! useless traversals. This bench isolates that choice on the linked
//! list (the structure where traversals are long) by sweeping the update
//! rate and comparing TinySTM-WB (encounter-time) against TL2
//! (commit-time) at 4 threads.
//!
//! Expected shape: the two are comparable at low update rates; the
//! encounter-time design pulls ahead as the update rate grows.

use stm_bench::{default_opts, run_cell, Backend, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "ablation-locking",
        "encounter-time (tinystm-wb) vs commit-time (tl2), list 256, 4 threads",
    );
    out.columns(&[
        "backend",
        "update_pct",
        "txs_per_s",
        "aborts_per_s",
        "abort_ratio",
    ]);
    for &updates in &[0u32, 10, 20, 40, 60, 80, 100] {
        for backend in [Backend::TinyWb, Backend::Tl2] {
            let m = run_cell(
                backend,
                Structure::List,
                IntSetWorkload::new(256, updates),
                default_opts(4),
            );
            out.row(&[
                s(backend.label()),
                i(updates as u64),
                f1(m.throughput),
                f1(m.abort_rate),
                f1(m.abort_ratio * 100.0),
            ]);
        }
    }
}
