//! Ablation: encounter-time vs commit-time locking.
//!
//! Section 3 argues encounter-time locking wins when conflicts are
//! frequent because doomed transactions stop early instead of completing
//! useless traversals. This bench isolates that choice on the linked
//! list (the structure where traversals are long) by sweeping the update
//! rate and comparing TinySTM-WB (encounter-time) against TL2
//! (commit-time) at 4 threads. Emitted as perf records
//! (`target/perf/ablation-locking.jsonl`); diagnostic only — no
//! baseline gates these series.
//!
//! Expected shape: the two are comparable at low update rates; the
//! encounter-time design pulls ahead as the update rate grows.

use stm_bench::{bench_record, default_opts, perf_emitter, run_cell, Backend, Structure};
use stm_harness::IntSetWorkload;

const EXPERIMENT: &str = "ablation-locking";

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "encounter-time (tinystm-wb) vs commit-time (tl2), list 256, 4 threads",
    );
    for &updates in &[0u32, 10, 20, 40, 60, 80, 100] {
        for backend in [Backend::TinyWb, Backend::Tl2] {
            let workload = IntSetWorkload::new(256, updates);
            let m = run_cell(backend, Structure::List, workload, default_opts(4));
            out.record(bench_record(
                EXPERIMENT,
                "update-sweep",
                Structure::List.label(),
                backend.label(),
                workload,
                &m,
            ));
        }
    }
    out.finish();
}
