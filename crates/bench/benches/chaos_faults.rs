//! Chaos-mode fault counters through the perf pipeline.
//!
//! Runs the chaos harness (deterministic seeded fault injection with a
//! supervising rejoin loop, see `stm_harness::chaos`) once per backend
//! and emits the engine's fault counters — `wal_retries`, `wal_faults`,
//! `degraded_rejects`, `rejoins` — plus the harness-side outcome split
//! (`acked`/`rejected`/`wal_failed`/`quarantined_shards`) as JSONL
//! `extras` (`target/perf/chaos-faults.jsonl`).
//!
//! Diagnostic only: none of these extras end in `_ns`, so perf-diff
//! never gates them, and no baseline exists for this experiment (it is
//! not in the perf job's wired list). A verification failure — an
//! acked commit lost, an unexpected replay — still panics the bench:
//! counters from a broken run must not land in the artifacts.
//!
//! Gated behind the `durable` feature (`cargo bench -p stm-bench
//! --features durable --bench chaos_faults`) so the default bench
//! build is untouched.

use std::time::Instant;
use stm_bench::perf_emitter;
use stm_harness::{ChaosOpts, DurBackend, IntSetWorkload};
use stm_perf::BenchRecord;

const EXPERIMENT: &str = "chaos-faults";

/// Fixed seed: the point is comparable counters across runs, not
/// schedule coverage (the proptest suite owns the search).
const SEED: u64 = 0xC4A0_5EED;

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "chaos harness fault counters per backend (fixed seed, diagnostic)",
    );
    for backend in [
        DurBackend::WriteBack,
        DurBackend::WriteThrough,
        DurBackend::Tl2,
    ] {
        let opts = ChaosOpts {
            backend,
            seed: SEED,
            ..ChaosOpts::default()
        };
        let start = Instant::now();
        let report = stm_harness::run_chaos(&opts)
            .unwrap_or_else(|e| panic!("chaos run ({}) failed to start: {e}", backend.label()));
        let elapsed = start.elapsed();
        assert!(
            report.failures.is_empty(),
            "chaos contract violated on {} (seed {:#x}): {:?}",
            backend.label(),
            report.seed,
            report.failures
        );

        // The chaos workload is a KV stream, not an intset; the
        // workload columns echo its shape (4 of 5 ops are puts).
        let workload = IntSetWorkload {
            initial_size: opts.keys as u64,
            key_range: opts.keys as u64,
            update_pct: 80,
        };
        let secs = elapsed.as_secs_f64().max(1e-9);
        let mut rec = BenchRecord {
            experiment: EXPERIMENT.to_string(),
            panel: format!("faults-{}", opts.faults_per_shard),
            structure: "kv".to_string(),
            backend: backend.label().to_string(),
            threads: opts.threads,
            initial_size: workload.initial_size,
            key_range: workload.key_range,
            update_pct: workload.update_pct,
            ops_per_sec: report.acked as f64 / secs,
            aborts_per_sec: 0.0,
            abort_ratio: 0.0,
            commits: report.acked,
            aborts: 0,
            elapsed_ms: secs * 1000.0,
            aborts_by_reason: Default::default(),
            worker_panics: 0,
            extras: Default::default(),
        };
        let fs = &report.fault_stats;
        for (key, value) in [
            ("wal_retries", fs.wal_retries as f64),
            ("wal_faults", fs.wal_faults as f64),
            ("degraded_rejects", fs.degraded_rejects as f64),
            ("rejoins", fs.rejoins as f64),
            ("acked", report.acked as f64),
            ("rejected", report.rejected as f64),
            ("wal_failed", report.wal_failed as f64),
            ("quarantined_shards", report.quarantined as f64),
        ] {
            rec.extras.insert(key.to_string(), value);
        }
        out.record(rec);
    }
    out.finish();
}
