//! `service_scaling`: the multi-tenant service target — acked
//! throughput and submit→ack latency percentiles against the shard
//! count × the group-commit batch bound.
//!
//! Each cell boots a [`StmService`] over a file-backed
//! [`DurableEngine`] in group-commit mode (real appends and fsyncs in
//! a scratch directory — the cost the batching exists to amortize)
//! and drives it closed-loop from `CLIENTS` client threads, one
//! tenant each. Two panels per shard count:
//!
//! * `batch1/s{1,2,4}`  — `max_records = 1`: the group path degenerates
//!   to one flush per commit (the PR-7 per-commit cost, measured
//!   through the same code path);
//! * `batch64/s{1,2,4}` — `max_records = 64` with a 200µs leader
//!   accumulation window: concurrent committers share flushes.
//!
//! The `mean_batch` extra carries the records-per-flush ratio (the
//! acceptance knob: > 1 on the batch64 panels means the amortization
//! is real, not vestigial) and `ack_p50_ns`/p95/max ride in the
//! extras under the usual `_ns` convention — `perf-diff` gates only
//! the p50; p95 up is volatile on a shared host. Results go to stdout
//! (CSV) and `target/perf/service_scaling.jsonl` for the `perf-diff`
//! regression gate (baseline: `baselines/`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stm_bench::{bench_record, perf_emitter, point_ms, tiny_config};
use stm_engine::{DurableEngine, ServiceConfig, StmService};
use stm_harness::{IntSetWorkload, Measurement};
use stm_perf::PerfEmitter;
use stm_wal::{FileStore, GroupCommitConfig, WalStore};
use tinystm::{AccessStrategy, Stm};

/// Shard counts swept by both panels.
const SHARDS: [usize; 3] = [1, 2, 4];
/// Client threads (one tenant each).
const CLIENTS: usize = 4;
/// Keys per tenant.
const KEYS_PER_TENANT: usize = 64;

/// One cell: boot service, hammer it closed-loop for the point window,
/// report acked throughput + ack percentiles + the batch amortization.
fn cell(out: &mut PerfEmitter, panel: &str, shards: usize, group: GroupCommitConfig) {
    let root = std::env::temp_dir().join(format!(
        "stm-service-scaling-{}-{}",
        std::process::id(),
        panel.replace('/', "-")
    ));
    let _ = std::fs::remove_dir_all(&root);
    let stores: Vec<Arc<dyn WalStore>> = (0..shards)
        .map(|i| {
            FileStore::open(root.join(format!("shard-{i}"))).expect("scratch dir writable")
                as Arc<dyn WalStore>
        })
        .collect();
    let engine = Arc::new(
        DurableEngine::<Stm>::new_grouped(
            shards,
            CLIENTS * KEYS_PER_TENANT,
            &tiny_config(AccessStrategy::WriteBack),
            stores,
            group,
        )
        .expect("bench config valid"),
    );
    let svc = Arc::new(StmService::start(
        Arc::clone(&engine),
        ServiceConfig::default()
            .with_tenants(CLIENTS)
            .with_keys_per_tenant(KEYS_PER_TENANT),
    ));

    let window = Duration::from_millis(point_ms());
    let before = engine.engine().stats();
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let acked: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut acked = 0u64;
                    let mut v = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = v % KEYS_PER_TENANT as u64;
                        v += 1;
                        if svc.put(t, key, v).is_ok() {
                            acked += 1;
                        }
                    }
                    acked
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = started.elapsed();
    let delta = engine.engine().stats().since(&before);
    let hist = svc.ack_latency();
    let mean_batch = engine.group_mean_batch().unwrap_or(0.0);
    svc.stop();
    drop(svc);
    drop(engine);
    let _ = std::fs::remove_dir_all(&root);

    let secs = elapsed.as_secs_f64().max(1e-9);
    let m = Measurement {
        elapsed,
        commits: acked,
        aborts: delta.aborts,
        aborts_by_reason: delta.aborts_by_reason,
        throughput: acked as f64 / secs,
        abort_rate: delta.aborts as f64 / secs,
        abort_ratio: delta.abort_ratio(),
        threads: CLIENTS,
        clock_conflicts: delta.clock_conflicts,
        worker_panics: 0,
    };
    let workload = IntSetWorkload {
        initial_size: 0,
        key_range: (CLIENTS * KEYS_PER_TENANT) as u64,
        update_pct: 100,
    };
    let mut rec = bench_record(
        "service_scaling",
        panel,
        "kv-service",
        "tinystm-wb",
        workload,
        &m,
    );
    rec.extras
        .insert("p50_ns".to_string(), hist.value_at_percentile(50.0) as f64);
    rec.extras
        .insert("p95_ns".to_string(), hist.value_at_percentile(95.0) as f64);
    rec.extras.insert("max_ns".to_string(), hist.max as f64);
    // Diagnostic (not `_ns`-suffixed): perf-diff never gates it, but
    // > 1 on the batch64 panels is the amortization acceptance knob.
    rec.extras.insert("mean_batch".to_string(), mean_batch);
    out.record(rec);
}

fn main() {
    let mut out = perf_emitter(
        "service_scaling",
        "multi-tenant service: acked ops/s + submit-to-ack latency vs shards x batch bound \
         (file-backed WAL, group commit)",
    );
    for shards in SHARDS {
        cell(
            &mut out,
            &format!("batch1/s{shards}"),
            shards,
            GroupCommitConfig::default().with_max_records(1),
        );
    }
    out.gap();
    for shards in SHARDS {
        cell(
            &mut out,
            &format!("batch64/s{shards}"),
            shards,
            GroupCommitConfig::default()
                .with_max_records(64)
                .with_max_wait(Duration::from_micros(200)),
        );
    }
    out.finish();
}
