//! Figure 5: throughput as a function of structure size and update rate
//! (8 threads) for the red-black tree and the linked list.
//!
//! Paper shape: throughput falls with update rate everywhere; the
//! influence of size is ≈ logarithmic for the tree and ≈ linear
//! (inverse) for the list; all designs produce the same general surface.

use stm_bench::{default_opts, full_mode, run_cell, Backend, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig05",
        "throughput vs structure size x update rate, 8 threads",
    );
    out.columns(&["structure", "backend", "size", "update_pct", "txs_per_s"]);
    let sizes: Vec<u64> = if full_mode() {
        vec![256, 512, 1024, 2048, 4096]
    } else {
        vec![256, 1024, 4096]
    };
    let updates: Vec<u32> = if full_mode() {
        vec![0, 20, 40, 60, 80, 100]
    } else {
        vec![0, 20, 60, 100]
    };
    for structure in [Structure::Rbtree, Structure::List] {
        for backend in Backend::ALL {
            for &size in &sizes {
                for &u in &updates {
                    let m = run_cell(
                        backend,
                        structure,
                        IntSetWorkload::new(size, u),
                        default_opts(8),
                    );
                    out.row(&[
                        s(structure.label()),
                        s(backend.label()),
                        i(size),
                        i(u as u64),
                        f1(m.throughput),
                    ]);
                }
            }
        }
        out.gap();
    }
}
