//! Figure 5: throughput as a function of structure size and update rate
//! (8 threads) for the red-black tree and the linked list.
//!
//! Paper shape: throughput falls with update rate everywhere; the
//! influence of size is ≈ logarithmic for the tree and ≈ linear
//! (inverse) for the list; all designs produce the same general surface.
//!
//! Results go to stdout (CSV) and `target/perf/fig05.jsonl` (size and
//! update rate live in each record's config key; no baseline is gated
//! yet).

use stm_bench::{
    bench_record, default_opts, full_mode, perf_emitter, run_cell, Backend, Structure,
};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = perf_emitter(
        "fig05",
        "throughput vs structure size x update rate, 8 threads",
    );
    let sizes: Vec<u64> = if full_mode() {
        vec![256, 512, 1024, 2048, 4096]
    } else {
        vec![256, 1024, 4096]
    };
    let updates: Vec<u32> = if full_mode() {
        vec![0, 20, 40, 60, 80, 100]
    } else {
        vec![0, 20, 60, 100]
    };
    for structure in [Structure::Rbtree, Structure::List] {
        for backend in Backend::ALL {
            for &size in &sizes {
                for &u in &updates {
                    let workload = IntSetWorkload::new(size, u);
                    let m = run_cell(backend, structure, workload, default_opts(8));
                    out.record(bench_record(
                        "fig05",
                        "surface",
                        structure.label(),
                        backend.label(),
                        workload,
                        &m,
                    ));
                }
            }
        }
        out.gap();
    }
    out.finish();
}
