//! Ablation: conflict-detection timing under contention.
//!
//! Four sections, all emitted as perf records
//! (`target/perf/ablation-contention.jsonl`):
//!
//! 1. **forced-overlap** — early vs late conflict detection under
//!    *forced* overlap. The paper's 8-core testbed overlaps
//!    transactions in time; this host may have a single core, so short
//!    transactions almost never conflict and the encounter-time
//!    advantage (Section 3: "transactions do not perform useless work")
//!    is invisible in Figures 2–4. This section restores the overlap
//!    synthetically (substitution per DESIGN.md §2): every transaction
//!    (a) writes one word of a small hot region — the conflict point —
//!    then (b) performs a long stretch of transactional read work, then
//!    commits. Preemption inside (b) guarantees that concurrent
//!    transactions overlap the held lock. TinySTM (encounter-time)
//!    aborts the loser at step (a); TL2 (commit-time) buffers the write
//!    and the loser performs all of (b) before aborting. The
//!    `wasted_reads_per_abort` extra shows the mechanism directly.
//!    Note the throughput column inverts on a single-core host: an
//!    encounter-time lock held across a preemption convoys every other
//!    thread, so read goodput favours TL2 here — see EXPERIMENTS.md.
//!
//! 2. **small-range** — the whole key space fits in a cache line's
//!    worth of structure: 64 elements, 128 keys, 50% updates. Every
//!    update collides with high probability.
//!
//! 3. **write-heavy** — 90% update mix on a 256-element tree: the
//!    paper's "high update rate" axis pushed to the end stop.
//!
//! 4. **overwrite-loop** — Figure 4's overwrite transactions at 20%
//!    (4× the figure's rate): each one writes every node it traverses,
//!    so write sets span the structure and write-write conflicts
//!    dominate. Write-through vs write-back abort taxonomies diverge
//!    here the way Section 3.1 predicts (encounter-time writes abort on
//!    locked words; write-back aborts at validation) — the divergence
//!    shape check in `perf-diff --shape` reads these records.

use std::sync::Arc;
use stm_api::mem::WordBlock;
use stm_api::{TmHandle, TmTx, TxKind};
use stm_bench::{
    bench_record, default_opts, make_tiny, make_tl2, perf_emitter, run_cell, run_overwrite_cell,
    Backend, Structure,
};
use stm_harness::{IntSetWorkload, Measurement};
use tinystm::{AccessStrategy, StatsSnapshot};

/// Hot region: every forced-overlap transaction writes one of these.
const HOT_WORDS: usize = 4;
/// Cold region: read-work array.
const COLD_WORDS: usize = 4096;

const EXPERIMENT: &str = "ablation-contention";

/// Thread counts for the contention sections (fixed, not `STM_THREADS`:
/// the ablation is about overlap, not the scaling sweep).
const CONTENTION_THREADS: [usize; 2] = [2, 4];

fn run_forced_overlap<H: TmHandle>(
    tm: H,
    reads: usize,
    threads: usize,
    rich: impl Fn() -> StatsSnapshot,
) -> (Measurement, StatsSnapshot) {
    let hot = Arc::new(WordBlock::new(HOT_WORDS));
    let cold = Arc::new(WordBlock::new(COLD_WORDS));
    let opts = default_opts(threads);
    let stats = {
        let tm = tm.clone();
        move || tm.stats_snapshot()
    };
    let rich_before = rich();
    let m = stm_harness::drive(opts, &stats, |t| {
        let tm = tm.clone();
        let hot = Arc::clone(&hot);
        let cold = Arc::clone(&cold);
        let mut n = t as u64;
        move |_rng: &mut rand::rngs::SmallRng| {
            n = n.wrapping_mul(6364136223846793005).wrapping_add(1);
            let hot_idx = (n >> 33) as usize % HOT_WORDS;
            let start = (n >> 13) as usize % COLD_WORDS;
            tm.run(TxKind::ReadWrite, |tx| {
                // (a) conflict point, acquired at encounter time by
                // TinySTM, buffered by TL2.
                let v = unsafe { tx.load_word(hot.as_ptr().add(hot_idx)) }?;
                unsafe { tx.store_word(hot.as_ptr().add(hot_idx), v + 1) }?;
                // (b) long transactional read work.
                let mut acc = 0usize;
                for k in 0..reads {
                    let idx = (start + k * 7) % COLD_WORDS;
                    acc ^= unsafe { tx.load_word(cold.as_ptr().add(idx)) }?;
                }
                Ok(acc)
            });
        }
    });
    (m, rich().since(&rich_before))
}

fn overlap_record(
    backend: &str,
    reads: usize,
    m: &Measurement,
    d: &StatsSnapshot,
) -> stm_perf::BenchRecord {
    // Reads performed by attempts that aborted, per abort: the "useless
    // work" metric. Encounter-time conflicts abort early (few wasted
    // reads); commit-time conflicts abort after the full read phase.
    let wasted_per_abort = if d.aborts > 0 {
        d.wasted_reads as f64 / d.aborts as f64
    } else {
        0.0
    };
    let workload = IntSetWorkload {
        initial_size: HOT_WORDS as u64,
        key_range: COLD_WORDS as u64,
        update_pct: 100,
    };
    let mut rec = bench_record(
        EXPERIMENT,
        &format!("forced-overlap-reads-{reads}"),
        "hot-cold",
        backend,
        workload,
        m,
    );
    rec.extras
        .insert("wasted_reads_per_abort".to_string(), wasted_per_abort);
    rec
}

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "contention ablation: forced overlap, small key range, write-heavy, overwrite loop",
    );

    // §1 forced overlap: hot write + N reads, 8 threads.
    for &reads in &[64usize, 256, 1024, 4096] {
        for strategy in [AccessStrategy::WriteBack, AccessStrategy::WriteThrough] {
            let tiny = make_tiny(strategy, 16, 0, 0);
            let rich = {
                let tiny = tiny.clone();
                move || tiny.stats().totals
            };
            let label = if strategy == AccessStrategy::WriteBack {
                "tinystm-wb"
            } else {
                "tinystm-wt"
            };
            let (m, d) = run_forced_overlap(tiny, reads, 8, rich);
            out.record(overlap_record(label, reads, &m, &d));
        }
        let tl2 = make_tl2(20, 0);
        let rich = {
            let tl2 = tl2.clone();
            move || tl2.stats().totals
        };
        let (m, d) = run_forced_overlap(tl2, reads, 8, rich);
        out.record(overlap_record("tl2", reads, &m, &d));
    }
    out.gap();

    // §2 small key range + §3 write-heavy mix: ordinary intset cells at
    // deliberately hostile workload points.
    for (panel, structure, size, updates) in [
        ("small-range", Structure::List, 64u64, 50u32),
        ("small-range", Structure::Rbtree, 64, 50),
        ("write-heavy", Structure::Rbtree, 256, 90),
    ] {
        let workload = IntSetWorkload::new(size, updates);
        for backend in Backend::ALL {
            for &threads in &CONTENTION_THREADS {
                let m = run_cell(backend, structure, workload, default_opts(threads));
                out.record(bench_record(
                    EXPERIMENT,
                    panel,
                    structure.label(),
                    backend.label(),
                    workload,
                    &m,
                ));
            }
        }
        out.gap();
    }

    // §4 overwrite loop: 20% overwrite transactions on a 128-element
    // list — large write sets, write-write conflicts dominate.
    let workload = IntSetWorkload::new(128, 20);
    for backend in Backend::ALL {
        for &threads in &CONTENTION_THREADS {
            let m = run_overwrite_cell(backend, workload, default_opts(threads));
            out.record(bench_record(
                EXPERIMENT,
                "overwrite-loop",
                "list-overwrite",
                backend.label(),
                workload,
                &m,
            ));
        }
    }
    out.finish();
}
