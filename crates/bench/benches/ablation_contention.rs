//! Ablation: early vs late conflict detection under *forced* overlap.
//!
//! The paper's 8-core testbed overlaps transactions in time; this host
//! has a single core, so short transactions almost never conflict and
//! the encounter-time advantage (Section 3: "transactions do not
//! perform useless work") is invisible in Figures 2–4. This bench
//! restores the overlap synthetically (substitution per DESIGN.md §2):
//! every transaction (a) writes one word of a small hot region — the
//! conflict point — then (b) performs a long stretch of transactional
//! read work, then commits. Preemption inside (b) guarantees that
//! concurrent transactions overlap the held lock.
//!
//! * TinySTM (encounter-time): the loser aborts at step (a), before
//!   wasting the read work.
//! * TL2 (commit-time): the write is buffered; the loser performs all of
//!   (b) and aborts at commit.
//!
//! Expected shape: the *wasted-work* column shows the paper's mechanism
//! directly — TinySTM wastes ≈ 1 read per abort (the conflict is caught
//! at the first access) while TL2 wastes the entire read phase (≈
//! `reads_per_tx` reads per abort). Note the throughput column inverts
//! on a single-core host: an encounter-time lock held across a
//! preemption convoys every other thread (the paper's testbed keeps the
//! holder running on its own core), so read goodput favours TL2 here —
//! see EXPERIMENTS.md for the discussion.

use std::sync::Arc;
use stm_api::mem::WordBlock;
use stm_api::{TmHandle, TmTx, TxKind};
use stm_bench::{default_opts, make_tiny, make_tl2};
use stm_harness::table::{f1, i, s, SeriesWriter};
use tinystm::{AccessStrategy, StatsSnapshot};

/// Hot region: every transaction writes one of these words.
const HOT_WORDS: usize = 4;
/// Cold region: read-work array.
const COLD_WORDS: usize = 4096;

fn run_backend<H: TmHandle>(
    tm: H,
    reads: usize,
    threads: usize,
    rich: impl Fn() -> StatsSnapshot,
) -> (f64, f64, f64) {
    let hot = Arc::new(WordBlock::new(HOT_WORDS));
    let cold = Arc::new(WordBlock::new(COLD_WORDS));
    let opts = default_opts(threads);
    let stats = {
        let tm = tm.clone();
        move || tm.stats_snapshot()
    };
    let rich_before = rich();
    let m = stm_harness::drive(opts, &stats, |t| {
        let tm = tm.clone();
        let hot = Arc::clone(&hot);
        let cold = Arc::clone(&cold);
        let mut n = t as u64;
        move |_rng: &mut rand::rngs::SmallRng| {
            n = n.wrapping_mul(6364136223846793005).wrapping_add(1);
            let hot_idx = (n >> 33) as usize % HOT_WORDS;
            let start = (n >> 13) as usize % COLD_WORDS;
            tm.run(TxKind::ReadWrite, |tx| {
                // (a) conflict point, acquired at encounter time by
                // TinySTM, buffered by TL2.
                let v = unsafe { tx.load_word(hot.as_ptr().add(hot_idx)) }?;
                unsafe { tx.store_word(hot.as_ptr().add(hot_idx), v + 1) }?;
                // (b) long transactional read work.
                let mut acc = 0usize;
                for k in 0..reads {
                    let idx = (start + k * 7) % COLD_WORDS;
                    acc ^= unsafe { tx.load_word(cold.as_ptr().add(idx)) }?;
                }
                Ok(acc)
            });
        }
    });
    let d = rich().since(&rich_before);
    // Reads performed by attempts that aborted, per abort: the "useless
    // work" metric. Encounter-time conflicts abort early (few wasted
    // reads); commit-time conflicts abort after the full read phase.
    let wasted_per_abort = if d.aborts > 0 {
        d.wasted_reads as f64 / d.aborts as f64
    } else {
        0.0
    };
    (m.throughput, m.abort_ratio * 100.0, wasted_per_abort)
}

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "ablation-contention",
        "encounter vs commit-time locking with forced overlap (hot write + N reads, 8 thr)",
    );
    out.columns(&[
        "backend",
        "reads_per_tx",
        "txs_per_s",
        "abort_ratio_pct",
        "wasted_reads_per_abort",
    ]);
    for &reads in &[64usize, 256, 1024, 4096] {
        let tiny = make_tiny(AccessStrategy::WriteBack, 16, 0, 0);
        let rich = {
            let tiny = tiny.clone();
            move || tiny.stats().totals
        };
        let (t, a, w) = run_backend(tiny, reads, 8, rich);
        out.row(&[s("tinystm-wb"), i(reads as u64), f1(t), f1(a), f1(w)]);
        let tl2 = make_tl2(20, 0);
        let rich = {
            let tl2 = tl2.clone();
            move || tl2.stats().totals
        };
        let (t, a, w) = run_backend(tl2, reads, 8, rich);
        out.row(&[s("tl2"), i(reads as u64), f1(t), f1(a), f1(w)]);
    }
}
