//! `shard_scaling`: the sharded-engine target — throughput and open-loop
//! latency percentiles against the shard count, for all three backends.
//!
//! Four panels per backend, shard count encoded in the panel string:
//!
//! * `bare`        — the backend driven directly (no engine layer); the
//!   reference the 1-shard engine must match (`vs_bare_ratio` extra on
//!   `closed/s1` makes the comparison explicit in the JSONL).
//! * `closed/s{1,2,4}` — closed-loop intset over per-shard linked lists
//!   routed by the engine (2 worker threads, fixed — the panel sweeps
//!   shards, not threads, so `STM_THREADS` does not apply here).
//! * `open/s{1,2,4}`   — the open-loop driver at a fixed arrival rate;
//!   per-request latency (scheduled-arrival to completion, queueing
//!   included) lands in a [`stm_perf::LatencyHist`] and the p50/p95/
//!   p99/p999/mean/max percentiles ride in the record extras (`_ns`
//!   keys). `perf-diff` gates only the median (p50) under the latency
//!   tolerance band; everything from p95 up is reported only — with
//!   queueing counted, one scheduler preemption backs up >5% of a
//!   quick-mode window's arrivals on a shared host.
//! * `contend/s{1,2,4}` — forced commit-clock contention: 4 threads,
//!   each committing update transactions whose window is held open
//!   across a scheduler yield, so every commit observes the foreign
//!   commit timestamps that landed on *its shard's* clock meanwhile.
//!   The `clock_conflicts` extra is the paper's global-clock bottleneck
//!   made visible; spreading the threads' keys across shards must
//!   shrink it as the shard count grows — even on one core, where raw
//!   throughput cannot.
//!
//! Results go to stdout (CSV) and `target/perf/shard_scaling.jsonl` for
//! the `perf-diff` regression gate (baseline: `baselines/`).

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::Rng;
use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxKind};
use stm_bench::{bench_cm, bench_record, default_opts, perf_emitter, point_ms, tiny_config};
use stm_engine::{ShardBackend, ShardedEngine};
use stm_harness::{
    drive, populate, run_intset, run_open_loop, IntSetWorkload, Measurement, OpenLoopOpts,
};
use stm_perf::{LatencyHist, PerfEmitter};
use stm_structures::{LinkedList, TxSet};
use stm_tl2::{Tl2, Tl2Config};
use tinystm::{AccessStrategy, Stm};

/// Shard counts swept by every engine panel.
const SHARDS: [usize; 3] = [1, 2, 4];
/// Worker threads for the closed-loop cells (fixed; see module docs).
const CLOSED_THREADS: usize = 2;
/// Worker threads for the forced-contention cells.
const CONTEND_THREADS: usize = 4;
/// Open-loop arrival rate (requests per second).
const OPEN_RATE: f64 = 20_000.0;

/// An intset that routes every key through the engine to a per-shard
/// linked list — the closed/open cells' unit of work. Identical op
/// stream to the `bare` cell; only the routing layer differs.
struct RoutedSet<B: ShardBackend> {
    engine: ShardedEngine<B>,
    lists: Vec<LinkedList<B>>,
}

impl<B: ShardBackend> RoutedSet<B> {
    fn new(engine: ShardedEngine<B>) -> RoutedSet<B> {
        let lists = (0..engine.shards())
            .map(|i| LinkedList::new(engine.shard(i).clone()))
            .collect();
        RoutedSet { engine, lists }
    }

    fn list_for(&self, key: u64) -> &LinkedList<B> {
        &self.lists[self.engine.route(key)]
    }
}

impl<B: ShardBackend> TxSet for RoutedSet<B> {
    fn add(&self, key: u64) -> bool {
        self.list_for(key).add(key)
    }

    fn remove(&self, key: u64) -> bool {
        self.list_for(key).remove(key)
    }

    fn contains(&self, key: u64) -> bool {
        self.list_for(key).contains(key)
    }

    fn snapshot_len(&self) -> usize {
        self.lists.iter().map(|l| l.snapshot_len()).sum()
    }

    fn structure_name(&self) -> &'static str {
        "sharded-list"
    }
}

/// Forced commit-clock contention: each worker owns a private word and
/// key (no data conflicts, no aborts) but holds its transaction window
/// open across a scheduler yield, so the commit-time clock distance
/// counts exactly the foreign commits that hit the *same shard's* clock
/// meanwhile. Worker keys are chosen to spread round-robin over the
/// shards: with one shard every foreign commit lands on your clock;
/// with four, only your shard-mates' do.
fn contend_cell<B: ShardBackend>(engine: &ShardedEngine<B>) -> Measurement {
    let shards = engine.shards();
    let blocks: Vec<WordBlock> = (0..shards)
        .map(|_| WordBlock::new(CONTEND_THREADS))
        .collect();
    let keys: Vec<u64> = (0..CONTEND_THREADS)
        .map(|t| {
            let want = t % shards;
            (0u64..)
                .find(|&k| engine.route(k) == want)
                .expect("router is total")
        })
        .collect();
    let stats = {
        let engine = engine.clone();
        move || engine.stats()
    };
    drive(default_opts(CONTEND_THREADS), &stats, |t| {
        let engine = engine.clone();
        let blocks = &blocks;
        let key = keys[t];
        move |_rng: &mut SmallRng| {
            let shard = engine.route(key);
            let base = blocks[shard].as_ptr();
            engine.run_on(key, TxKind::ReadWrite, |tx| unsafe {
                let p = base.add(t);
                let v = tx.load_word(p)?;
                // Keep the snapshot-to-commit window open long enough
                // for the other workers to commit into it.
                std::thread::yield_now();
                tx.store_word(p, v.wrapping_add(1))
            });
        }
    })
}

/// One open-loop cell: fixed arrival rate, one worker, latency measured
/// from *scheduled* arrival to completion (queueing counted — no
/// coordinated omission).
fn open_cell<B: ShardBackend>(
    engine: &ShardedEngine<B>,
    workload: IntSetWorkload,
) -> (Measurement, LatencyHist, bool) {
    let set = RoutedSet::new(engine.clone());
    populate(&set, &workload, 0x5CA1_AB1E);
    let opts = OpenLoopOpts::default()
        .with_rate(OPEN_RATE)
        .with_workers(1)
        .with_warmup(Duration::from_millis(point_ms() / 4))
        .with_duration(Duration::from_millis(point_ms() * 4));
    let before = engine.stats();
    let (result, hists) = run_open_loop(opts, |_w| {
        let set = &set;
        (LatencyHist::new(), move |rng: &mut SmallRng| {
            let key = rng.gen_range(1..=workload.key_range);
            if rng.gen_range(0..100) < workload.update_pct {
                if rng.gen_bool(0.5) {
                    set.add(key);
                } else {
                    set.remove(key);
                }
            } else {
                set.contains(key);
            }
        })
    });
    let delta = engine.stats().since(&before);
    let mut hist = LatencyHist::new();
    for h in &hists {
        hist.merge(h);
    }
    // The open-loop result is the source of truth for rate/elapsed; the
    // engine stats supply the transactional counters underneath it.
    let secs = result.elapsed.as_secs_f64().max(1e-9);
    let m = Measurement {
        elapsed: result.elapsed,
        commits: result.completed,
        aborts: delta.aborts,
        aborts_by_reason: delta.aborts_by_reason,
        throughput: result.throughput,
        abort_rate: delta.aborts as f64 / secs,
        abort_ratio: delta.abort_ratio(),
        threads: 1,
        clock_conflicts: delta.clock_conflicts,
        worker_panics: 0,
    };
    (m, hist, result.on_schedule)
}

/// All four panels for one backend.
fn bench_backend<B: ShardBackend>(out: &mut PerfEmitter, label: &str, config: &B::Config) {
    let workload = IntSetWorkload::new(1024, 20);
    let open_workload = IntSetWorkload::new(256, 20);

    // Panel `bare`: the backend without the engine layer on top.
    let tm = B::build(config).expect("bench config valid");
    let list = LinkedList::new(tm.clone());
    let stats = move || tm.stats_snapshot();
    let bare = run_intset(&list, workload, default_opts(CLOSED_THREADS), &stats);
    out.record(bench_record(
        "shard_scaling",
        "bare",
        "list",
        label,
        workload,
        &bare,
    ));

    // Panel `closed/s{n}`: same closed-loop workload through the engine.
    for shards in SHARDS {
        let engine = ShardedEngine::<B>::new(shards, config).expect("bench config valid");
        let set = RoutedSet::new(engine.clone());
        let stats = {
            let engine = engine.clone();
            move || engine.stats()
        };
        let m = run_intset(&set, workload, default_opts(CLOSED_THREADS), &stats);
        let mut rec = bench_record(
            "shard_scaling",
            &format!("closed/s{shards}"),
            "list",
            label,
            workload,
            &m,
        );
        if shards == 1 {
            // The acceptance knob: 1 shard must cost ≈ nothing over bare.
            rec.extras.insert(
                "vs_bare_ratio".to_string(),
                m.throughput / bare.throughput.max(1e-9),
            );
        }
        out.record(rec);
    }
    out.gap();

    // Panel `open/s{n}`: fixed-rate arrivals, latency percentiles.
    for shards in SHARDS {
        let engine = ShardedEngine::<B>::new(shards, config).expect("bench config valid");
        let (m, hist, on_schedule) = open_cell(&engine, open_workload);
        let mut rec = bench_record(
            "shard_scaling",
            &format!("open/s{shards}"),
            "list",
            label,
            open_workload,
            &m,
        );
        rec.extras.extend(hist.extras());
        rec.extras.insert(
            "on_schedule".to_string(),
            if on_schedule { 1.0 } else { 0.0 },
        );
        out.record(rec);
    }
    out.gap();

    // Panel `contend/s{n}`: the clock-contention probe.
    for shards in SHARDS {
        let engine = ShardedEngine::<B>::new(shards, config).expect("bench config valid");
        let m = contend_cell(&engine);
        let contend_workload = IntSetWorkload {
            initial_size: 0,
            key_range: CONTEND_THREADS as u64,
            update_pct: 100,
        };
        let mut rec = bench_record(
            "shard_scaling",
            &format!("contend/s{shards}"),
            "words",
            label,
            contend_workload,
            &m,
        );
        rec.extras.insert(
            "clock_conflicts_per_1k_commits".to_string(),
            1000.0 * m.clock_conflicts as f64 / (m.commits.max(1)) as f64,
        );
        out.record(rec);
    }
    out.gap();
}

fn main() {
    let mut out = perf_emitter(
        "shard_scaling",
        "sharded engine: ops/s + open-loop latency percentiles vs shard count (fixed threads)",
    );
    bench_backend::<Stm>(
        &mut out,
        "tinystm-wb",
        &tiny_config(AccessStrategy::WriteBack).with_locks_log2(16),
    );
    bench_backend::<Stm>(
        &mut out,
        "tinystm-wt",
        &tiny_config(AccessStrategy::WriteThrough).with_locks_log2(16),
    );
    bench_backend::<Tl2>(
        &mut out,
        "tl2",
        &Tl2Config::default().with_locks_log2(20).with_cm(bench_cm()),
    );
    out.finish();
}
