//! Figure 9: throughput improvement (percent over the worst point of
//! each curve) as a function of each tuning parameter in isolation
//! (size 4096, 20% updates, 8 threads).
//!
//! Left: vs `#locks` (h ∈ {4, 64}, structure-specific shifts).
//! Middle: vs `#shifts` (#locks = 2^22, h ∈ {4, 64}).
//! Right: vs `h` (#locks = 2^22, shifts ∈ {2, 3}).
//!
//! Paper shape: more locks help then flatten (with steps); a few shifts
//! help then hurt; h rises then falls, with the list gaining much more
//! from large h than the tree.

use stm_bench::{default_opts, full_mode, make_tiny, run_structure_on, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

fn measure(structure: Structure, locks: u32, shifts: u32, hier_log2: u32) -> f64 {
    let stm = make_tiny(AccessStrategy::WriteBack, locks, shifts, hier_log2);
    let stats_handle = stm.clone();
    run_structure_on(
        stm,
        structure,
        IntSetWorkload::new(4096, 20),
        default_opts(8),
        &move || stm_api::TmHandle::stats_snapshot(&stats_handle),
    )
    .throughput
}

fn improvements(points: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let min = points
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    points
        .iter()
        .map(|&(x, t)| (x, (t / min - 1.0) * 100.0))
        .collect()
}

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig09",
        "throughput improvement % vs #locks / #shifts / h (size=4096, 20% upd, 8 thr)",
    );
    out.columns(&["panel", "series", "x", "improvement_pct"]);

    // Left: vs #locks. Paper pairs rbtree with shift=3, list with shift=2.
    let locks: Vec<u32> = if full_mode() {
        vec![8, 10, 12, 14, 16, 18, 20, 22, 24]
    } else {
        vec![8, 12, 16, 20, 24]
    };
    for (structure, shift) in [(Structure::Rbtree, 3u32), (Structure::List, 2)] {
        for h in [2u32, 6] {
            let pts: Vec<(u64, f64)> = locks
                .iter()
                .map(|&l| (l as u64, measure(structure, l, shift, h)))
                .collect();
            for (x, imp) in improvements(&pts) {
                out.row(&[
                    s("locks"),
                    s(format!("{}-h{}-s{}", structure.label(), 1 << h, shift)),
                    i(x),
                    f1(imp),
                ]);
            }
        }
    }
    out.gap();

    // Middle: vs #shifts at 2^22 locks.
    let shifts: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6];
    for structure in [Structure::Rbtree, Structure::List] {
        for h in [2u32, 6] {
            let pts: Vec<(u64, f64)> = shifts
                .iter()
                .map(|&sh| (sh as u64, measure(structure, 22, sh, h)))
                .collect();
            for (x, imp) in improvements(&pts) {
                out.row(&[
                    s("shifts"),
                    s(format!("{}-h{}", structure.label(), 1 << h)),
                    i(x),
                    f1(imp),
                ]);
            }
        }
    }
    out.gap();

    // Right: vs h at 2^22 locks (h = 4, 16, 64, 256).
    for (structure, shift) in [
        (Structure::Rbtree, 3u32),
        (Structure::List, 3),
        (Structure::Rbtree, 2),
        (Structure::List, 2),
    ] {
        let pts: Vec<(u64, f64)> = [2u32, 4, 6, 8]
            .iter()
            .map(|&h| (1u64 << h, measure(structure, 22, shift, h)))
            .collect();
        for (x, imp) in improvements(&pts) {
            out.row(&[
                s("hier"),
                s(format!("{}-s{}", structure.label(), shift)),
                i(x),
                f1(imp),
            ]);
        }
    }
}
