//! Figure 9: throughput improvement (percent over the worst point of
//! each curve) as a function of each tuning parameter in isolation
//! (size 4096, 20% updates, 8 threads).
//!
//! Left: vs `#locks` (h ∈ {4, 64}, structure-specific shifts).
//! Middle: vs `#shifts` (#locks = 2^22, h ∈ {4, 64}).
//! Right: vs `h` (#locks = 2^22, shifts ∈ {2, 3}).
//!
//! Paper shape: more locks help then flatten (with steps); a few shifts
//! help then hurt; h rises then falls, with the list gaining much more
//! from large h than the tree.
//!
//! Results go to stdout (CSV) and `target/perf/fig09.jsonl` via the
//! shared perf pipeline: raw throughput as `ops_per_sec`, the paper's
//! normalized `improvement_pct` in the extras. The JSONL is diagnostic
//! only — fig09 has no baseline snapshot, so `perf-diff` does not
//! gate it.

use stm_bench::{
    bench_record, default_opts, full_mode, make_tiny, perf_emitter, run_structure_on, Structure,
};
use stm_harness::{IntSetWorkload, Measurement};
use stm_perf::PerfEmitter;
use tinystm::AccessStrategy;

fn workload() -> IntSetWorkload {
    IntSetWorkload::new(4096, 20)
}

fn measure(structure: Structure, locks: u32, shifts: u32, hier_log2: u32) -> Measurement {
    let stm = make_tiny(AccessStrategy::WriteBack, locks, shifts, hier_log2);
    let stats_handle = stm.clone();
    run_structure_on(stm, structure, workload(), default_opts(8), &move || {
        stm_api::TmHandle::stats_snapshot(&stats_handle)
    })
}

/// Improvement over the worst point of the curve, in percent.
fn improvements(points: &[(u64, Measurement)]) -> Vec<f64> {
    let min = points
        .iter()
        .map(|(_, m)| m.throughput)
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    points
        .iter()
        .map(|(_, m)| (m.throughput / min - 1.0) * 100.0)
        .collect()
}

/// Emit one curve: raw throughput per point plus the normalized
/// improvement in the extras. The panel encodes sweep, series, and the
/// x value, so every point keys uniquely in the JSONL.
fn emit_curve(
    out: &mut PerfEmitter,
    sweep: &str,
    series: &str,
    structure: Structure,
    points: &[(u64, Measurement)],
) {
    let imps = improvements(points);
    for ((x, m), imp) in points.iter().zip(imps) {
        let mut rec = bench_record(
            "fig09",
            &format!("{sweep}/{series}/x{x}"),
            structure.label(),
            "tinystm-wb",
            workload(),
            m,
        );
        rec.extras.insert("x".to_string(), *x as f64);
        rec.extras.insert("improvement_pct".to_string(), imp);
        out.record(rec);
    }
    out.gap();
}

fn main() {
    let mut out = perf_emitter(
        "fig09",
        "throughput improvement % vs #locks / #shifts / h (size=4096, 20% upd, 8 thr)",
    );

    // Left: vs #locks. Paper pairs rbtree with shift=3, list with shift=2.
    let locks: Vec<u32> = if full_mode() {
        vec![8, 10, 12, 14, 16, 18, 20, 22, 24]
    } else {
        vec![8, 12, 16, 20, 24]
    };
    for (structure, shift) in [(Structure::Rbtree, 3u32), (Structure::List, 2)] {
        for h in [2u32, 6] {
            let pts: Vec<(u64, Measurement)> = locks
                .iter()
                .map(|&l| (l as u64, measure(structure, l, shift, h)))
                .collect();
            let series = format!("{}-h{}-s{}", structure.label(), 1 << h, shift);
            emit_curve(&mut out, "locks", &series, structure, &pts);
        }
    }

    // Middle: vs #shifts at 2^22 locks.
    let shifts: Vec<u32> = vec![0, 1, 2, 3, 4, 5, 6];
    for structure in [Structure::Rbtree, Structure::List] {
        for h in [2u32, 6] {
            let pts: Vec<(u64, Measurement)> = shifts
                .iter()
                .map(|&sh| (sh as u64, measure(structure, 22, sh, h)))
                .collect();
            let series = format!("{}-h{}", structure.label(), 1 << h);
            emit_curve(&mut out, "shifts", &series, structure, &pts);
        }
    }

    // Right: vs h at 2^22 locks (h = 4, 16, 64, 256).
    for (structure, shift) in [
        (Structure::Rbtree, 3u32),
        (Structure::List, 3),
        (Structure::Rbtree, 2),
        (Structure::List, 2),
    ] {
        let pts: Vec<(u64, Measurement)> = [2u32, 4, 6, 8]
            .iter()
            .map(|&h| (1u64 << h, measure(structure, 22, shift, h)))
            .collect();
        let series = format!("{}-s{}", structure.label(), shift);
        emit_curve(&mut out, "hier", &series, structure, &pts);
    }
    out.finish();
}
