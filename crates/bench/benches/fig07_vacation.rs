//! Figure 7: influence of `#locks` and `#shifts` on the Vacation
//! workload (h = 4, 8 threads).
//!
//! The paper compiles STAMP's vacation through the TANGER compiler; this
//! repo substitutes a native reservation workload with the same
//! transactional shape (see DESIGN.md §2).
//!
//! Paper shape: same general surface as Figure 6 but with the sweet spot
//! at different parameter values — reinforcing that tuning is
//! workload-dependent.

use stm_bench::{default_opts, full_mode, make_tiny};
use stm_harness::table::{f1, i, SeriesWriter};
use stm_harness::VacationWorkload;
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig07",
        "vacation throughput vs #locks x #shifts (tinystm-wb, h=4, 8 thr)",
    );
    out.columns(&["locks_log2", "shifts", "txs_per_s"]);
    let locks: Vec<u32> = if full_mode() {
        vec![16, 18, 20, 22, 24]
    } else {
        vec![16, 20, 24]
    };
    let shifts: Vec<u32> = if full_mode() {
        vec![0, 2, 4, 6, 8]
    } else {
        vec![0, 4, 8]
    };
    let workload = VacationWorkload::default();
    for &l in &locks {
        for &sh in &shifts {
            let stm = make_tiny(AccessStrategy::WriteBack, l, sh, 2);
            let m = stm_harness::run_vacation(stm, workload, default_opts(8));
            out.row(&[i(l as u64), i(sh as u64), f1(m.throughput)]);
        }
    }
}
