//! Figure 7: influence of `#locks` and `#shifts` on the Vacation
//! workload (h = 4, 8 threads).
//!
//! The paper compiles STAMP's vacation through the TANGER compiler; this
//! repo substitutes a native reservation workload with the same
//! transactional shape (see DESIGN.md §2).
//!
//! Paper shape: same general surface as Figure 6 but with the sweet spot
//! at different parameter values — reinforcing that tuning is
//! workload-dependent.
//!
//! Results go to stdout (CSV) and `target/perf/fig07.jsonl` via the
//! shared perf pipeline. The JSONL is diagnostic only — fig07 has no
//! baseline snapshot, so `perf-diff` does not gate it.

use stm_bench::{bench_record, default_opts, full_mode, make_tiny, perf_emitter};
use stm_harness::{IntSetWorkload, VacationWorkload};
use tinystm::AccessStrategy;

fn main() {
    let mut out = perf_emitter(
        "fig07",
        "vacation throughput vs #locks x #shifts (tinystm-wb, h=4, 8 thr)",
    );
    let locks: Vec<u32> = if full_mode() {
        vec![16, 18, 20, 22, 24]
    } else {
        vec![16, 20, 24]
    };
    let shifts: Vec<u32> = if full_mode() {
        vec![0, 2, 4, 6, 8]
    } else {
        vec![0, 4, 8]
    };
    let workload = VacationWorkload::default();
    // The record schema speaks intset: map the reservation tables onto
    // its size fields (resources ≈ working set, customers ≈ key range);
    // the reservation mix is all-update.
    let record_workload = IntSetWorkload {
        initial_size: workload.n_resources,
        key_range: workload.n_customers,
        update_pct: 100,
    };
    for &l in &locks {
        for &sh in &shifts {
            let stm = make_tiny(AccessStrategy::WriteBack, l, sh, 2);
            let m = stm_harness::run_vacation(stm, workload, default_opts(8));
            let mut rec = bench_record(
                "fig07",
                &format!("l{l}/s{sh}"),
                "vacation",
                "tinystm-wb",
                record_workload,
                &m,
            );
            rec.extras.insert("locks_log2".to_string(), l as f64);
            rec.extras.insert("shifts".to_string(), sh as f64);
            out.record(rec);
        }
        out.gap();
    }
    out.finish();
}
