//! Figure 2: throughput of the red-black tree.
//!
//! Three panels — (256 elements, 20% updates), (4096, 20%), (4096, 60%)
//! — with throughput (txs/s) against thread count for TinySTM-WB,
//! TinySTM-WT, and TL2.
//!
//! Paper shape: all designs scale with cores, 64-bit TinySTM above TL2,
//! larger trees slightly *faster* at high thread counts (less
//! contention), higher update rates moderately slower.
//!
//! Results go to stdout (CSV) and `target/perf/fig02.jsonl` for the
//! `perf-diff` regression gate.

use stm_bench::{
    bench_record, default_opts, perf_emitter, run_cell, thread_list, Backend, Structure,
};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = perf_emitter(
        "fig02",
        "red-black tree throughput vs threads (panels: size/update%)",
    );
    for (size, updates) in [(256u64, 20u32), (4096, 20), (4096, 60)] {
        let workload = IntSetWorkload::new(size, updates);
        let panel = format!("{size}/{updates}%");
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, Structure::Rbtree, workload, default_opts(threads));
                out.record(bench_record(
                    "fig02",
                    &panel,
                    Structure::Rbtree.label(),
                    backend.label(),
                    workload,
                    &m,
                ));
            }
        }
        out.gap();
    }
    out.finish();
}
