//! Figure 2: throughput of the red-black tree.
//!
//! Three panels — (256 elements, 20% updates), (4096, 20%), (4096, 60%)
//! — with throughput (txs/s) against thread count for TinySTM-WB,
//! TinySTM-WT, and TL2.
//!
//! Paper shape: all designs scale with cores, 64-bit TinySTM above TL2,
//! larger trees slightly *faster* at high thread counts (less
//! contention), higher update rates moderately slower.

use stm_bench::{default_opts, run_cell, thread_list, Backend, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig02",
        "red-black tree throughput vs threads (panels: size/update%)",
    );
    out.columns(&["panel", "backend", "threads", "txs_per_s", "aborts_per_s"]);
    for (size, updates) in [(256u64, 20u32), (4096, 20), (4096, 60)] {
        let workload = IntSetWorkload::new(size, updates);
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, Structure::Rbtree, workload, default_opts(threads));
                out.row(&[
                    s(format!("{size}/{updates}%")),
                    s(backend.label()),
                    i(threads as u64),
                    f1(m.throughput),
                    f1(m.abort_rate),
                ]);
            }
        }
        out.gap();
    }
}
