//! Ablation: write-back vs write-through.
//!
//! Section 3.1: write-through has cheaper commits and O(1)
//! read-after-write but more expensive aborts (undo) and needs
//! incarnation numbers; write-back is the reverse. The paper found the
//! difference small enough to drop the strategy from the tuning knobs
//! (footnote 7). This bench measures both on a low-conflict workload
//! (commit cost dominates) and a high-conflict one (abort cost
//! dominates). Emitted as perf records
//! (`target/perf/ablation-strategy.jsonl`); diagnostic only — no
//! baseline gates these series.

use stm_bench::{bench_record, default_opts, make_tiny, perf_emitter, run_structure_on, Structure};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

const EXPERIMENT: &str = "ablation-strategy";

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "write-back vs write-through under low and high conflict (rbtree, 4 thr)",
    );
    let cases = [
        ("low-conflict", IntSetWorkload::new(4096, 20)),
        ("high-conflict", IntSetWorkload::new(64, 100)),
    ];
    for (strategy, label) in [
        (AccessStrategy::WriteBack, "tinystm-wb"),
        (AccessStrategy::WriteThrough, "tinystm-wt"),
    ] {
        for (panel, workload) in cases {
            let stm = make_tiny(strategy, 16, 0, 0);
            let stats_handle = stm.clone();
            let m = run_structure_on(
                stm,
                Structure::Rbtree,
                workload,
                default_opts(4),
                &move || stm_api::TmHandle::stats_snapshot(&stats_handle),
            );
            out.record(bench_record(
                EXPERIMENT,
                panel,
                Structure::Rbtree.label(),
                label,
                workload,
                &m,
            ));
        }
        out.gap();
    }
    out.finish();
}
