//! Ablation: write-back vs write-through.
//!
//! Section 3.1: write-through has cheaper commits and O(1)
//! read-after-write but more expensive aborts (undo) and needs
//! incarnation numbers; write-back is the reverse. The paper found the
//! difference small enough to drop the strategy from the tuning knobs
//! (footnote 7). This bench measures both on a low-conflict workload
//! (commit cost dominates) and a high-conflict one (abort cost
//! dominates).

use stm_bench::{default_opts, make_tiny, run_structure_on, Structure};
use stm_harness::table::{f1, s, SeriesWriter};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "ablation-strategy",
        "write-back vs write-through under low and high conflict (rbtree, 4 thr)",
    );
    out.columns(&["strategy", "workload", "txs_per_s", "aborts_per_s"]);
    let cases = [
        ("low-conflict-4096/20%", IntSetWorkload::new(4096, 20)),
        ("high-conflict-64/100%", IntSetWorkload::new(64, 100)),
    ];
    for strategy in [AccessStrategy::WriteBack, AccessStrategy::WriteThrough] {
        for (label, workload) in cases {
            let stm = make_tiny(strategy, 16, 0, 0);
            let stats_handle = stm.clone();
            let m = run_structure_on(
                stm,
                Structure::Rbtree,
                workload,
                default_opts(4),
                &move || stm_api::TmHandle::stats_snapshot(&stats_handle),
            );
            out.row(&[
                s(strategy.short_name()),
                s(label),
                f1(m.throughput),
                f1(m.abort_rate),
            ]);
        }
    }
}
