//! Ablation: STM vs a coarse-grained lock.
//!
//! The TinySTM paper defers lock-based comparisons to the TL2 paper;
//! this bench supplies the missing series: a single `Mutex<BTreeSet>`
//! against TinySTM-WB on the red-black tree across thread counts and
//! update rates. Emitted as perf records
//! (`target/perf/ablation-baseline.jsonl`); diagnostic only — no
//! baseline gates these series.
//!
//! Expected shape: the coarse lock wins at 1 thread (no instrumentation
//! overhead) and loses scalability as threads and update rates grow —
//! on a multicore host. On a single-core host the lock stays ahead;
//! the series still quantifies the STM's instrumentation overhead.

use stm_bench::{bench_record, default_opts, make_tiny, perf_emitter, thread_list};
use stm_harness::IntSetWorkload;
use stm_structures::{CoarseLockSet, RbTree};
use tinystm::AccessStrategy;

const EXPERIMENT: &str = "ablation-baseline";

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "tinystm-wb vs coarse lock, rbtree 1024 elements",
    );
    for &updates in &[0u32, 20, 60] {
        let workload = IntSetWorkload::new(1024, updates);
        for &threads in &thread_list() {
            let opts = default_opts(threads);

            let stm = make_tiny(AccessStrategy::WriteBack, 16, 0, 0);
            let set = RbTree::new(stm.clone());
            let stats = {
                let stm = stm.clone();
                move || stm_api::TmHandle::stats_snapshot(&stm)
            };
            let m = stm_harness::run_intset(&set, workload, opts, &stats);
            out.record(bench_record(
                EXPERIMENT,
                "lock-vs-stm",
                "rbtree",
                "tinystm-wb",
                workload,
                &m,
            ));

            // The coarse lock has no TM stats; count ops via a counter
            // stood up as BasicStats.
            use core::sync::atomic::{AtomicU64, Ordering};
            use std::sync::Arc;
            let ops = Arc::new(AtomicU64::new(0));
            let lockset = CoarseLockSet::new();
            stm_harness::populate(&lockset, &workload, opts.seed ^ 0xD1D1);
            let stats = {
                let ops = Arc::clone(&ops);
                move || stm_api::stats::BasicStats {
                    commits: ops.load(Ordering::Relaxed),
                    ..stm_api::stats::BasicStats::ZERO
                }
            };
            let m = stm_harness::drive(opts, &stats, |_t| {
                let mut op = stm_harness::IntSetOp::new(&lockset, workload);
                let ops = Arc::clone(&ops);
                move |rng: &mut rand::rngs::SmallRng| {
                    op.step(rng);
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
            out.record(bench_record(
                EXPERIMENT,
                "lock-vs-stm",
                "rbtree",
                "coarse-lock",
                workload,
                &m,
            ));
        }
        out.gap();
    }
    out.finish();
}
