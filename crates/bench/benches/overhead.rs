//! `overhead`: the fast-path cost microbench behind the memory-ordering
//! tentpole (ISSUE 3).
//!
//! The paper's core claim (§3.1) is that the per-access fast path is
//! cheap; this bench measures exactly that, with no data-structure
//! logic in the way:
//!
//! * **`ro-read-64`** (1 thread) — read-only transactions performing 64
//!   loads over a private word block: the R1/R3/F1/R4 read path plus
//!   the read-only commit fast path.
//! * **`upd-write-16`** (1 thread) — update transactions writing 16
//!   distinct stripes: encounter-time CAS acquisition (W1), data
//!   publication (W2/W3) and commit release (W4).
//! * **`commit-rw-1`** (1 thread) — one read + one write per
//!   transaction: begin/extend/commit bookkeeping dominates.
//! * **`disjoint-2thr`** (2 threads) — each thread updates its *own*
//!   block (no logical conflicts, distinct stripes): what remains
//!   shared is the global clock and the lock-array/hierarchy cache
//!   lines, so this panel isolates clock traffic and false sharing —
//!   the contention-aware-layout half of the tentpole. On a single-core
//!   host it degenerates to a scheduling benchmark, which is why the
//!   gate tolerance stays wide; on a multi-core runner it is the panel
//!   that moves when someone re-introduces a shared hot line.
//!
//! All three backends run every panel, so the TinySTM-vs-TL2 overhead
//! comparison stays apples-to-apples. Results go to stdout (CSV) and
//! `target/perf/overhead.jsonl` for the `perf-diff` regression gate.

use rand::rngs::SmallRng;
use std::hint::black_box;
use stm_api::mem::WordBlock;
use stm_api::{TmHandle, TmTx, TxKind};
use stm_bench::{default_opts, perf_emitter, Backend};
use stm_harness::Measurement;
use stm_perf::BenchRecord;

/// Private block size per worker thread.
const BLOCK_WORDS: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Panel {
    /// 64 loads per read-only transaction.
    RoRead64,
    /// 16 stores (distinct words) per update transaction.
    UpdWrite16,
    /// One load + one store per transaction.
    CommitRw1,
    /// `UpdWrite16` on two threads with disjoint blocks.
    Disjoint2Thr,
}

impl Panel {
    const ALL: [Panel; 4] = [
        Panel::RoRead64,
        Panel::UpdWrite16,
        Panel::CommitRw1,
        Panel::Disjoint2Thr,
    ];

    fn label(self) -> &'static str {
        match self {
            Panel::RoRead64 => "ro-read-64",
            Panel::UpdWrite16 => "upd-write-16",
            Panel::CommitRw1 => "commit-rw-1",
            Panel::Disjoint2Thr => "disjoint-2thr",
        }
    }

    fn threads(self) -> usize {
        match self {
            Panel::Disjoint2Thr => 2,
            _ => 1,
        }
    }

    /// Transactional word accesses per transaction (reported in extras
    /// so per-access cost can be derived from the gated tx rate).
    fn accesses_per_tx(self) -> u32 {
        match self {
            Panel::RoRead64 => 64,
            Panel::UpdWrite16 | Panel::Disjoint2Thr => 16,
            Panel::CommitRw1 => 2,
        }
    }

    fn update_pct(self) -> u32 {
        match self {
            Panel::RoRead64 => 0,
            _ => 100,
        }
    }
}

/// Run one panel on one backend handle. Every worker thread works on a
/// private region, so cross-thread traffic is exactly the STM's own
/// shared state.
fn measure<H>(tm: &H, panel: Panel) -> Measurement
where
    H: TmHandle + Clone + Sync,
{
    let stats = {
        let h = tm.clone();
        move || h.stats_snapshot()
    };
    let threads = panel.threads();
    // One contiguous allocation, carved into per-thread regions:
    // adjacent regions occupy *consecutive* stripes, so they can never
    // alias each other's locks — with independent allocations the
    // "disjoint" premise would hinge on allocator placement (stripes
    // repeat every `n_locks * 8` bytes of address space).
    let block = WordBlock::new(BLOCK_WORDS * threads);
    for i in 0..block.words() {
        block.write(i, i);
    }
    let block = &block;
    stm_harness::drive(default_opts(threads), &stats, |t| {
        let tm = tm.clone();
        // Address as usize so the closure stays Send.
        let region = unsafe { block.as_ptr().add(t * BLOCK_WORDS) } as usize;
        let mut tick = 0usize;
        move |_rng: &mut SmallRng| {
            let base = region as *mut usize;
            match panel {
                Panel::RoRead64 => {
                    let acc = tm.run(TxKind::ReadOnly, |tx| {
                        let mut acc = 0usize;
                        for i in 0..64 {
                            acc = acc.wrapping_add(unsafe { tx.load_word(base.add(i)) }?);
                        }
                        Ok(acc)
                    });
                    black_box(acc);
                }
                Panel::UpdWrite16 | Panel::Disjoint2Thr => {
                    tick = tick.wrapping_add(1);
                    let v = tick;
                    tm.run(TxKind::ReadWrite, |tx| {
                        for i in 0..16 {
                            unsafe { tx.store_word(base.add(i), v + i) }?;
                        }
                        Ok(())
                    });
                }
                Panel::CommitRw1 => {
                    tm.run(TxKind::ReadWrite, |tx| {
                        let v = unsafe { tx.load_word(base) }?;
                        unsafe { tx.store_word(base, v.wrapping_add(1)) }
                    });
                }
            }
        }
    })
}

fn record(panel: Panel, backend: Backend, m: &Measurement) -> BenchRecord {
    let mut extras = std::collections::BTreeMap::new();
    extras.insert(
        "accesses_per_tx".to_string(),
        f64::from(panel.accesses_per_tx()),
    );
    extras.insert(
        "accesses_per_sec".to_string(),
        m.throughput * f64::from(panel.accesses_per_tx()),
    );
    BenchRecord {
        experiment: "overhead".to_string(),
        panel: panel.label().to_string(),
        structure: "private-words".to_string(),
        backend: backend.label().to_string(),
        threads: m.threads,
        initial_size: BLOCK_WORDS as u64,
        key_range: BLOCK_WORDS as u64,
        update_pct: panel.update_pct(),
        ops_per_sec: m.throughput,
        aborts_per_sec: m.abort_rate,
        abort_ratio: m.abort_ratio,
        commits: m.commits,
        aborts: m.aborts,
        elapsed_ms: m.elapsed.as_secs_f64() * 1000.0,
        aborts_by_reason: BenchRecord::taxonomy_from_array(&m.aborts_by_reason),
        worker_panics: m.worker_panics,
        extras,
    }
}

fn main() {
    let mut out = perf_emitter(
        "overhead",
        "fast-path cost: per-access/commit overhead + 2-thread disjoint stripes",
    );
    for panel in Panel::ALL {
        for backend in Backend::ALL {
            let m = match backend {
                Backend::TinyWb => {
                    let stm = stm_bench::make_tiny(tinystm::AccessStrategy::WriteBack, 16, 0, 0);
                    measure(&stm, panel)
                }
                Backend::TinyWt => {
                    let stm = stm_bench::make_tiny(tinystm::AccessStrategy::WriteThrough, 16, 0, 0);
                    measure(&stm, panel)
                }
                Backend::Tl2 => {
                    let tl2 = stm_bench::make_tl2(20, 0);
                    measure(&tl2, panel)
                }
            };
            out.record(record(panel, backend, &m));
        }
        out.gap();
    }
    out.finish();
}
