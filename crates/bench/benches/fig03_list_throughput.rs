//! Figure 3: throughput of the sorted linked list.
//!
//! Panels: (256 elements, 0% updates), (256, 20%), (4096, 20%).
//!
//! Paper shape: read-only scales perfectly and all designs coincide;
//! with updates, throughput and scalability collapse (every transaction
//! traverses the same nodes); TL2 trails TinySTM because commit-time
//! locking wastes full traversals on doomed transactions.
//!
//! Results go to stdout (CSV) and `target/perf/fig03.jsonl` for the
//! `perf-diff` regression gate.

use stm_bench::{
    bench_record, default_opts, perf_emitter, run_cell, thread_list, Backend, Structure,
};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = perf_emitter(
        "fig03",
        "sorted linked list throughput vs threads (panels: size/update%)",
    );
    for (size, updates) in [(256u64, 0u32), (256, 20), (4096, 20)] {
        let workload = IntSetWorkload::new(size, updates);
        let panel = format!("{size}/{updates}%");
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, Structure::List, workload, default_opts(threads));
                out.record(bench_record(
                    "fig03",
                    &panel,
                    Structure::List.label(),
                    backend.label(),
                    workload,
                    &m,
                ));
            }
        }
        out.gap();
    }
    out.finish();
}
