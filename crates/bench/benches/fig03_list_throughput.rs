//! Figure 3: throughput of the sorted linked list.
//!
//! Panels: (256 elements, 0% updates), (256, 20%), (4096, 20%).
//!
//! Paper shape: read-only scales perfectly and all designs coincide;
//! with updates, throughput and scalability collapse (every transaction
//! traverses the same nodes); TL2 trails TinySTM because commit-time
//! locking wastes full traversals on doomed transactions.

use stm_bench::{default_opts, run_cell, thread_list, Backend, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig03",
        "sorted linked list throughput vs threads (panels: size/update%)",
    );
    out.columns(&["panel", "backend", "threads", "txs_per_s", "aborts_per_s"]);
    for (size, updates) in [(256u64, 0u32), (256, 20), (4096, 20)] {
        let workload = IntSetWorkload::new(size, updates);
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, Structure::List, workload, default_opts(threads));
                out.row(&[
                    s(format!("{size}/{updates}%")),
                    s(backend.label()),
                    i(threads as u64),
                    f1(m.throughput),
                    f1(m.abort_rate),
                ]);
            }
        }
        out.gap();
    }
}
