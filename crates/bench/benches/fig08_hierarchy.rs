//! Figure 8: influence of the hierarchical-array size `h` on the
//! locks × shifts surface (size 4096, 20% updates, 8 threads).
//!
//! Paper shape: the red-black tree performs best with a *small*
//! hierarchical array (4/16 better than 64 — small read sets, counter
//! increments dominate) while the linked list prefers a *large* one
//! (64 over 4/16 — validation savings dominate).
//!
//! Results go to stdout (CSV) and `target/perf/fig08.jsonl` for the
//! `perf-diff` regression gate; the grid point is encoded in the panel
//! (`h<H>/l<locks_log2>/s<shifts>`) so every cell has a stable config
//! key. This is the bench that would catch a regression in the
//! hierarchy-counter changes (padding, Release/Acquire protocol).

use stm_bench::{
    bench_record, default_opts, full_mode, make_tiny, perf_emitter, run_structure_on, Structure,
};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

fn main() {
    let mut out = perf_emitter(
        "fig08",
        "throughput vs h over the locks x shifts grid (size=4096, 20% upd, 8 thr)",
    );
    let hs: Vec<u32> = vec![2, 4, 6]; // h = 4, 16, 64 as in the paper
    let locks: Vec<u32> = if full_mode() {
        vec![8, 12, 16, 20, 24]
    } else {
        vec![8, 16, 24]
    };
    let shifts: Vec<u32> = if full_mode() {
        vec![0, 2, 4, 6]
    } else {
        vec![0, 3, 6]
    };
    let workload = IntSetWorkload::new(4096, 20);
    for structure in [Structure::Rbtree, Structure::List] {
        for &h in &hs {
            for &l in &locks {
                for &sh in &shifts {
                    let stm = make_tiny(AccessStrategy::WriteBack, l, sh, h);
                    let stats_handle = stm.clone();
                    let m =
                        run_structure_on(stm, structure, workload, default_opts(8), &move || {
                            stm_api::TmHandle::stats_snapshot(&stats_handle)
                        });
                    out.record(bench_record(
                        "fig08",
                        &format!("h{}/l{}/s{}", 1u64 << h, l, sh),
                        structure.label(),
                        "tinystm-wb",
                        workload,
                        &m,
                    ));
                }
            }
        }
        out.gap();
    }
    out.finish();
}
