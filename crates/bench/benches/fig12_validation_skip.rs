//! Figure 12: read-set locks processed vs skipped during validation
//! across an auto-tuning session on the linked list.
//!
//! Paper shape: as the tuner grows the hierarchical array, the number of
//! locks that must be processed during validation drops and the skipped
//! fraction rises — the hierarchy's whole purpose.

use std::time::Duration;
use stm_bench::{build_set_on_stm, full_mode, make_tiny, point_ms, Structure};
use stm_harness::table::{f1, i, SeriesWriter};
use stm_harness::{IntSetOp, IntSetWorkload, MeasureOpts};
use stm_tuning::{autotune, AutoTuneOpts, TuningPoint};
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig12",
        "validation locks processed vs skipped during list auto-tuning (4096, 8 thr)",
    );
    out.columns(&["config_idx", "h", "processed_per_s", "skipped_per_s"]);

    let stm = make_tiny(AccessStrategy::WriteBack, 8, 0, 0);
    let set = build_set_on_stm(&stm, Structure::List);
    let workload = IntSetWorkload::new(4096, 20);
    stm_harness::populate(&*set, &workload, 0xF161_2000u64);

    let tune_opts = AutoTuneOpts {
        period: Duration::from_millis(point_ms() / 2),
        samples_per_config: 3,
        max_configs: if full_mode() { 40 } else { 16 },
        seed: 1212,
    };
    let template = stm.config();
    let records = stm_harness::drive_with_coordinator(
        MeasureOpts::default().with_threads(8),
        |_t| {
            let mut op = IntSetOp::new(&*set, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || autotune(&stm, template, TuningPoint::experiment_start(), tune_opts),
    );
    for r in &records {
        out.row(&[
            i(r.index as u64),
            i(1u64 << r.point.hier_log2),
            f1(r.val_processed_per_s),
            f1(r.val_skipped_per_s),
        ]);
    }
}
