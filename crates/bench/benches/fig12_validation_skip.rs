//! Figure 12: read-set locks processed vs skipped during validation
//! across an auto-tuning session on the linked list.
//!
//! Paper shape: as the tuner grows the hierarchical array, the number of
//! locks that must be processed during validation drops and the skipped
//! fraction rises — the hierarchy's whole purpose.
//!
//! Results go to stdout (CSV) and `target/perf/fig12.jsonl`. Each
//! tuner step becomes one record (`panel = step<idx>`) carrying the
//! sampled throughput as the headline metric and the validation
//! processed/skipped rates plus the step's `h` in `extras`. Note the
//! hill climber's trajectory is throughput-driven, so step-for-step
//! config keys are only comparable between runs on the same host —
//! this experiment is wired for observability, not for the default CI
//! gate.

use std::collections::BTreeMap;
use std::time::Duration;
use stm_bench::{build_set_on_stm, full_mode, make_tiny, perf_emitter, point_ms, Structure};
use stm_harness::{IntSetOp, IntSetWorkload, MeasureOpts};
use stm_perf::BenchRecord;
use stm_tuning::{autotune, AutoTuneOpts, TuningPoint};
use tinystm::AccessStrategy;

fn main() {
    let mut out = perf_emitter(
        "fig12",
        "validation locks processed vs skipped during list auto-tuning (4096, 8 thr)",
    );

    let stm = make_tiny(AccessStrategy::WriteBack, 8, 0, 0);
    let set = build_set_on_stm(&stm, Structure::List);
    let workload = IntSetWorkload::new(4096, 20);
    stm_harness::populate(&*set, &workload, 0xF161_2000u64);

    let period = Duration::from_millis(point_ms() / 2);
    let tune_opts = AutoTuneOpts {
        period,
        samples_per_config: 3,
        max_configs: if full_mode() { 40 } else { 16 },
        seed: 1212,
    };
    let template = stm.config();
    let outcome = stm_harness::drive_with_coordinator(
        MeasureOpts::default().with_threads(8),
        |_t| {
            let mut op = IntSetOp::new(&*set, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || autotune(&stm, template, TuningPoint::experiment_start(), tune_opts),
    );
    if let Some(e) = &outcome.error {
        eprintln!("fig12: tuning stopped early: {e}");
    }
    for r in &outcome.records {
        let mut extras = BTreeMap::new();
        extras.insert("h".to_string(), (1u64 << r.point.hier_log2) as f64);
        extras.insert("val_processed_per_s".to_string(), r.val_processed_per_s);
        extras.insert("val_skipped_per_s".to_string(), r.val_skipped_per_s);
        out.record(BenchRecord {
            experiment: "fig12".to_string(),
            panel: format!("step{:02}", r.index),
            structure: Structure::List.label().to_string(),
            backend: "tinystm-wb".to_string(),
            threads: 8,
            initial_size: workload.initial_size,
            key_range: workload.key_range,
            update_pct: workload.update_pct,
            ops_per_sec: r.throughput,
            aborts_per_sec: 0.0,
            abort_ratio: 0.0,
            commits: 0,
            aborts: 0,
            elapsed_ms: period.as_secs_f64() * 1000.0 * 3.0,
            aborts_by_reason: BTreeMap::new(),
            worker_panics: 0,
            extras,
        });
    }
    out.finish();
}
