//! Figure 6: influence of `#locks` and `#shifts` on TinySTM throughput
//! (h = 4, size 4096, 20% updates, 8 threads) for the red-black tree
//! and the linked list.
//!
//! Paper shape: throughput rises with the lock count until it flattens;
//! a small number of shifts helps (spatial locality) before hurting; the
//! surfaces differ per workload — the motivation for dynamic tuning.

use stm_bench::{default_opts, full_mode, make_tiny, run_structure_on, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig06",
        "throughput vs #locks x #shifts (tinystm-wb, h=4, size=4096, 20% upd, 8 thr)",
    );
    out.columns(&["structure", "locks_log2", "shifts", "txs_per_s"]);
    let locks: Vec<u32> = if full_mode() {
        vec![8, 10, 12, 14, 16, 18, 20, 22, 24]
    } else {
        vec![8, 12, 16, 20, 24]
    };
    let shifts: Vec<u32> = if full_mode() {
        vec![0, 1, 2, 3, 4, 5, 6]
    } else {
        vec![0, 2, 4, 6]
    };
    let workload = IntSetWorkload::new(4096, 20);
    for structure in [Structure::Rbtree, Structure::List] {
        for &l in &locks {
            for &sh in &shifts {
                let stm = make_tiny(AccessStrategy::WriteBack, l, sh, 2);
                let stats_handle = stm.clone();
                let m = run_structure_on(stm, structure, workload, default_opts(8), &move || {
                    stm_api::TmHandle::stats_snapshot(&stats_handle)
                });
                out.row(&[
                    s(structure.label()),
                    i(l as u64),
                    i(sh as u64),
                    f1(m.throughput),
                ]);
            }
        }
        out.gap();
    }
}
