//! Figure 6: influence of `#locks` and `#shifts` on TinySTM throughput
//! (h = 4, size 4096, 20% updates, 8 threads) for the red-black tree
//! and the linked list.
//!
//! Paper shape: throughput rises with the lock count until it flattens;
//! a small number of shifts helps (spatial locality) before hurting; the
//! surfaces differ per workload — the motivation for dynamic tuning.
//!
//! Results go to stdout (CSV) and `target/perf/fig06.jsonl`: the lock
//! and shift parameters are encoded in the record's panel (`l<n>/s<n>`)
//! and duplicated as extras (no baseline is gated yet).

use stm_bench::{
    bench_record, default_opts, full_mode, make_tiny, perf_emitter, run_structure_on, Structure,
};
use stm_harness::IntSetWorkload;
use tinystm::AccessStrategy;

fn main() {
    let mut out = perf_emitter(
        "fig06",
        "throughput vs #locks x #shifts (tinystm-wb, h=4, size=4096, 20% upd, 8 thr)",
    );
    let locks: Vec<u32> = if full_mode() {
        vec![8, 10, 12, 14, 16, 18, 20, 22, 24]
    } else {
        vec![8, 12, 16, 20, 24]
    };
    let shifts: Vec<u32> = if full_mode() {
        vec![0, 1, 2, 3, 4, 5, 6]
    } else {
        vec![0, 2, 4, 6]
    };
    let workload = IntSetWorkload::new(4096, 20);
    for structure in [Structure::Rbtree, Structure::List] {
        for &l in &locks {
            for &sh in &shifts {
                let stm = make_tiny(AccessStrategy::WriteBack, l, sh, 2);
                let stats_handle = stm.clone();
                let m = run_structure_on(stm, structure, workload, default_opts(8), &move || {
                    stm_api::TmHandle::stats_snapshot(&stats_handle)
                });
                let mut rec = bench_record(
                    "fig06",
                    &format!("l{l}/s{sh}"),
                    structure.label(),
                    "tinystm-wb",
                    workload,
                    &m,
                );
                rec.extras.insert("locks_log2".to_string(), f64::from(l));
                rec.extras.insert("shifts".to_string(), f64::from(sh));
                out.record(rec);
            }
        }
        out.gap();
    }
    out.finish();
}
