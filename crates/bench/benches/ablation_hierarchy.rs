//! Ablation: hierarchical locking on/off.
//!
//! Isolates Section 3.2's mechanism on the workload it was built for
//! (linked list, large read sets): h = 1 (disabled) vs growing
//! hierarchies, reporting throughput and the validation fast-path
//! counters that Figure 12 plots. Emitted as perf records
//! (`target/perf/ablation-hierarchy.jsonl`) — the hierarchy size rides
//! in the panel (`h-N`) because it is not a config-key field; the
//! validation counters are diagnostic `extras` (never gated).

use stm_bench::{bench_record, default_opts, make_tiny, perf_emitter, Structure};
use stm_harness::{IntSetOp, IntSetWorkload};
use tinystm::AccessStrategy;

const EXPERIMENT: &str = "ablation-hierarchy";

fn main() {
    let mut out = perf_emitter(
        EXPERIMENT,
        "hierarchy size sweep on the list (4096, 20% upd, 4 thr): validation savings",
    );
    let workload = IntSetWorkload::new(4096, 20);
    for hier_log2 in [0u32, 2, 4, 6, 8] {
        let stm = make_tiny(AccessStrategy::WriteBack, 16, 0, hier_log2);
        let set = stm_bench::build_set_on_stm(&stm, Structure::List);
        stm_harness::populate(&*set, &workload, 0xAB1A);
        let opts = default_opts(4);
        let before = stm.stats().totals;
        let m = stm_harness::drive(
            opts,
            &{
                let stm = stm.clone();
                move || stm_api::TmHandle::stats_snapshot(&stm)
            },
            |_t| {
                let mut op = IntSetOp::new(&*set, workload);
                move |rng: &mut rand::rngs::SmallRng| op.step(rng)
            },
        );
        let delta = stm.stats().totals.since(&before);
        let secs = m.elapsed.as_secs_f64().max(1e-9);
        let processed = delta.val_locks_processed as f64 / secs;
        let skipped = delta.val_locks_skipped as f64 / secs;
        let frac = if processed + skipped > 0.0 {
            skipped / (processed + skipped) * 100.0
        } else {
            0.0
        };
        let mut rec = bench_record(
            EXPERIMENT,
            &format!("h-{}", 1u64 << hier_log2),
            "list",
            "tinystm-wb",
            workload,
            &m,
        );
        rec.extras
            .insert("val_processed_per_s".to_string(), processed);
        rec.extras.insert("val_skipped_per_s".to_string(), skipped);
        rec.extras.insert("skip_fraction_pct".to_string(), frac);
        out.record(rec);
    }
    out.finish();
}
