//! Ablation: hierarchical locking on/off.
//!
//! Isolates Section 3.2's mechanism on the workload it was built for
//! (linked list, large read sets): h = 1 (disabled) vs growing
//! hierarchies, reporting throughput and the validation fast-path
//! counters that Figure 12 plots.

use stm_bench::{default_opts, make_tiny, Structure};
use stm_harness::table::{f1, i, SeriesWriter};
use stm_harness::{IntSetOp, IntSetWorkload};
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "ablation-hierarchy",
        "hierarchy size sweep on the list (4096, 20% upd, 4 thr): validation savings",
    );
    out.columns(&[
        "h",
        "txs_per_s",
        "val_processed_per_s",
        "val_skipped_per_s",
        "skip_fraction_pct",
    ]);
    let workload = IntSetWorkload::new(4096, 20);
    for hier_log2 in [0u32, 2, 4, 6, 8] {
        let stm = make_tiny(AccessStrategy::WriteBack, 16, 0, hier_log2);
        let set = stm_bench::build_set_on_stm(&stm, Structure::List);
        stm_harness::populate(&*set, &workload, 0xAB1A);
        let opts = default_opts(4);
        let before = stm.stats().totals;
        let m = stm_harness::drive(
            opts,
            &{
                let stm = stm.clone();
                move || stm_api::TmHandle::stats_snapshot(&stm)
            },
            |_t| {
                let mut op = IntSetOp::new(&*set, workload);
                move |rng: &mut rand::rngs::SmallRng| op.step(rng)
            },
        );
        let delta = stm.stats().totals.since(&before);
        let secs = m.elapsed.as_secs_f64().max(1e-9);
        let processed = delta.val_locks_processed as f64 / secs;
        let skipped = delta.val_locks_skipped as f64 / secs;
        let frac = if processed + skipped > 0.0 {
            skipped / (processed + skipped) * 100.0
        } else {
            0.0
        };
        out.row(&[
            i(1u64 << hier_log2),
            f1(m.throughput),
            f1(processed),
            f1(skipped),
            f1(frac),
        ]);
    }
}
