//! Figure 10: the dynamic tuning strategy on the red-black tree
//! (size 4096, 8 threads), starting from the deliberately poor
//! configuration (2^8 locks, shift 0, hierarchy disabled).
//!
//! Prints the path through the configuration space (left panel) and the
//! per-period throughput with move labels (right panel; `-x` = reverse
//! then move x).
//!
//! Paper shape: throughput climbs from the start configuration and
//! converges to a configuration at least as good as the best found by
//! static exploration.

use std::time::Duration;
use stm_bench::{
    build_set_on_stm, emit_tuning, full_mode, make_tiny, point_ms, Structure, TuneEmit,
};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::{IntSetOp, IntSetWorkload, MeasureOpts};
use stm_tuning::{autotune, AutoTuneOpts, TuningPoint};

use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig10",
        "auto-tuning path and throughput, red-black tree (4096, 8 thr)",
    );
    out.columns(&[
        "config_idx",
        "locks_log2",
        "shifts",
        "h",
        "txs_per_s",
        "move",
    ]);

    let stm = make_tiny(AccessStrategy::WriteBack, 8, 0, 0);
    let set = build_set_on_stm(&stm, Structure::Rbtree);
    let workload = IntSetWorkload::new(4096, 20);
    stm_harness::populate(&*set, &workload, 0xF161_0000u64);

    let tune_opts = AutoTuneOpts {
        period: Duration::from_millis(point_ms() / 2),
        samples_per_config: 3,
        max_configs: if full_mode() { 20 } else { 12 },
        seed: 1010,
    };
    let template = stm.config();
    let outcome = stm_harness::drive_with_coordinator(
        MeasureOpts::default().with_threads(8),
        |_t| {
            let mut op = IntSetOp::new(&*set, workload);
            move |rng: &mut rand::rngs::SmallRng| op.step(rng)
        },
        || autotune(&stm, template, TuningPoint::experiment_start(), tune_opts),
    );
    if let Some(e) = &outcome.error {
        eprintln!("fig10: tuning stopped early: {e}");
    }
    let records = &outcome.records;
    for r in records {
        out.row(&[
            i(r.index as u64),
            i(r.point.locks_log2 as u64),
            i(r.point.shifts as u64),
            i(1u64 << r.point.hier_log2),
            f1(r.throughput),
            s(r.label.clone()),
        ]);
    }
    emit_tuning(
        &TuneEmit {
            experiment: "fig10",
            description: "auto-tuning path and throughput, red-black tree (4096, 8 thr)",
            structure: "rbtree",
            threads: 8,
            workload,
            point_ms: tune_opts.period.as_millis() as u64 * tune_opts.samples_per_config as u64,
        },
        &outcome,
    );
    let best = outcome.best().expect("records non-empty");
    out.gap();
    out.experiment(
        "fig10-summary",
        &format!(
            "best config {} at {:.0} txs/s (start {:.0} txs/s)",
            best.point.label(),
            best.throughput,
            records[0].throughput
        ),
    );
}
