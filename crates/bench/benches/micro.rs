//! Criterion micro-benchmarks of the transactional primitives: the
//! per-access costs the paper's design discussion reasons about
//! (encounter-time acquisition, read validation, commit, Bloom filter,
//! lock-word codec).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxKind};
use stm_tl2::{Bloom, Tl2, Tl2Config};
use tinystm::{lockword, AccessStrategy, Stm, StmConfig};

fn stm(strategy: AccessStrategy, hier_log2: u32) -> Stm {
    Stm::new(
        StmConfig::default()
            .with_strategy(strategy)
            .with_hier_log2(hier_log2),
    )
    .unwrap()
}

fn bench_tx_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(100));

    let block = WordBlock::new(64);
    let addr = block.as_ptr();

    for (name, handle) in [
        ("wb", stm(AccessStrategy::WriteBack, 0)),
        ("wt", stm(AccessStrategy::WriteThrough, 0)),
        ("wb-h16", stm(AccessStrategy::WriteBack, 4)),
    ] {
        g.bench_function(format!("{name}/empty-update"), |b| {
            b.iter(|| handle.run(TxKind::ReadWrite, |_tx| Ok(())))
        });
        g.bench_function(format!("{name}/ro-8-reads"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadOnly, |tx| {
                    let mut acc = 0usize;
                    for k in 0..8 {
                        acc ^= unsafe { tx.load_word(addr.wrapping_add(k)) }?;
                    }
                    Ok(acc)
                })
            })
        });
        g.bench_function(format!("{name}/rw-8-writes"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadWrite, |tx| {
                    for k in 0..8 {
                        unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
                    }
                    Ok(())
                })
            })
        });
        g.bench_function(format!("{name}/read-after-write"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadWrite, |tx| {
                    unsafe { tx.store_word(addr, 7) }?;
                    unsafe { tx.load_word(addr) }
                })
            })
        });
    }

    let tl2 = Tl2::new(Tl2Config::default()).unwrap();
    g.bench_function("tl2/empty-update", |b| {
        b.iter(|| tl2.run(TxKind::ReadWrite, |_tx| Ok(())))
    });
    g.bench_function("tl2/rw-8-writes", |b| {
        b.iter(|| {
            tl2.run(TxKind::ReadWrite, |tx| {
                for k in 0..8 {
                    unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
                }
                Ok(())
            })
        })
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(300));
    g.bench_function("insert-64", |b| {
        b.iter_batched(
            Bloom::new,
            |mut bloom| {
                for i in 0..64usize {
                    bloom.insert(0x1000 + i * 8);
                }
                bloom
            },
            BatchSize::SmallInput,
        )
    });
    let mut bloom = Bloom::new();
    for i in 0..64usize {
        bloom.insert(0x1000 + i * 8);
    }
    g.bench_function("query-hit", |b| b.iter(|| bloom.maybe_contains(0x1000)));
    g.bench_function("query-miss", |b| {
        b.iter(|| bloom.maybe_contains(0xdead_0000))
    });
    g.finish();
}

fn bench_lockword(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockword");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(300));
    g.bench_function("wb-roundtrip", |b| {
        b.iter(|| lockword::wb_version(lockword::wb_make(123456)))
    });
    g.bench_function("wt-roundtrip", |b| {
        b.iter(|| {
            let w = lockword::wt_make(123456, 3);
            (lockword::wt_version(w), lockword::wt_incarnation(w))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tx_primitives, bench_bloom, bench_lockword);
criterion_main!(benches);
