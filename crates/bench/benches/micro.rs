//! Criterion micro-benchmarks of the transactional primitives: the
//! per-access costs the paper's design discussion reasons about
//! (encounter-time acquisition, read validation, commit, Bloom filter,
//! lock-word codec).
//!
//! Besides the criterion console output, a self-timed pass emits every
//! primitive's per-op cost to `target/perf/micro.jsonl` through the
//! shared perf pipeline. Diagnostic only: micro has no baseline
//! snapshot, so `perf-diff` never gates it — the JSONL exists so CI
//! artifacts capture the primitive costs next to the figure benches.

use criterion::{criterion_group, BatchSize, Criterion};
use stm_api::mem::WordBlock;
use stm_api::{TmTx, TxKind};
use stm_tl2::{Bloom, Tl2, Tl2Config};
use tinystm::{lockword, AccessStrategy, Stm, StmConfig};

fn stm(strategy: AccessStrategy, hier_log2: u32) -> Stm {
    Stm::new(
        StmConfig::default()
            .with_strategy(strategy)
            .with_hier_log2(hier_log2),
    )
    .unwrap()
}

fn bench_tx_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("tx");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(500));
    g.warm_up_time(std::time::Duration::from_millis(100));

    let block = WordBlock::new(64);
    let addr = block.as_ptr();

    for (name, handle) in [
        ("wb", stm(AccessStrategy::WriteBack, 0)),
        ("wt", stm(AccessStrategy::WriteThrough, 0)),
        ("wb-h16", stm(AccessStrategy::WriteBack, 4)),
    ] {
        g.bench_function(format!("{name}/empty-update"), |b| {
            b.iter(|| handle.run(TxKind::ReadWrite, |_tx| Ok(())))
        });
        g.bench_function(format!("{name}/ro-8-reads"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadOnly, |tx| {
                    let mut acc = 0usize;
                    for k in 0..8 {
                        acc ^= unsafe { tx.load_word(addr.wrapping_add(k)) }?;
                    }
                    Ok(acc)
                })
            })
        });
        g.bench_function(format!("{name}/rw-8-writes"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadWrite, |tx| {
                    for k in 0..8 {
                        unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
                    }
                    Ok(())
                })
            })
        });
        g.bench_function(format!("{name}/read-after-write"), |b| {
            b.iter(|| {
                handle.run(TxKind::ReadWrite, |tx| {
                    unsafe { tx.store_word(addr, 7) }?;
                    unsafe { tx.load_word(addr) }
                })
            })
        });
    }

    let tl2 = Tl2::new(Tl2Config::default()).unwrap();
    g.bench_function("tl2/empty-update", |b| {
        b.iter(|| tl2.run(TxKind::ReadWrite, |_tx| Ok(())))
    });
    g.bench_function("tl2/rw-8-writes", |b| {
        b.iter(|| {
            tl2.run(TxKind::ReadWrite, |tx| {
                for k in 0..8 {
                    unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
                }
                Ok(())
            })
        })
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(300));
    g.bench_function("insert-64", |b| {
        b.iter_batched(
            Bloom::new,
            |mut bloom| {
                for i in 0..64usize {
                    bloom.insert(0x1000 + i * 8);
                }
                bloom
            },
            BatchSize::SmallInput,
        )
    });
    let mut bloom = Bloom::new();
    for i in 0..64usize {
        bloom.insert(0x1000 + i * 8);
    }
    g.bench_function("query-hit", |b| b.iter(|| bloom.maybe_contains(0x1000)));
    g.bench_function("query-miss", |b| {
        b.iter(|| bloom.maybe_contains(0xdead_0000))
    });
    g.finish();
}

fn bench_lockword(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockword");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(300));
    g.bench_function("wb-roundtrip", |b| {
        b.iter(|| lockword::wb_version(lockword::wb_make(123456)))
    });
    g.bench_function("wt-roundtrip", |b| {
        b.iter(|| {
            let w = lockword::wt_make(123456, 3);
            (lockword::wt_version(w), lockword::wt_incarnation(w))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tx_primitives, bench_bloom, bench_lockword);

/// Self-timed cost of `f`, in ns per call: warm up briefly, then run
/// timed batches until enough wall time has accumulated for a stable
/// mean (a coarse measurement — criterion above is the precise one).
fn time_ns_per_op(mut f: impl FnMut()) -> f64 {
    use std::time::{Duration, Instant};
    for _ in 0..1_000 {
        f();
    }
    let budget = Duration::from_millis(20);
    let mut iters = 0u64;
    let mut elapsed = Duration::ZERO;
    let mut batch = 1_000u64;
    while elapsed < budget {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        elapsed += start.elapsed();
        iters += batch;
        batch = batch.saturating_mul(2).min(1 << 20);
    }
    elapsed.as_nanos() as f64 / iters as f64
}

/// One emitted point: the primitive's per-op cost, expressed in the
/// shared record schema (`ops_per_sec` is the gating-compatible shape;
/// the raw `ns_per_op` rides in the extras).
fn micro_record(panel: &str, backend: &str, ns_per_op: f64) -> stm_perf::BenchRecord {
    stm_perf::BenchRecord {
        experiment: "micro".to_string(),
        panel: panel.to_string(),
        structure: "primitive".to_string(),
        backend: backend.to_string(),
        threads: 1,
        initial_size: 0,
        key_range: 0,
        update_pct: 0,
        ops_per_sec: 1e9 / ns_per_op.max(1e-9),
        aborts_per_sec: 0.0,
        abort_ratio: 0.0,
        commits: 0,
        aborts: 0,
        elapsed_ms: 0.0,
        aborts_by_reason: std::collections::BTreeMap::new(),
        worker_panics: 0,
        extras: [("ns_per_op".to_string(), ns_per_op)].into_iter().collect(),
    }
}

/// The self-timed emission pass mirroring the criterion groups above.
fn emit_perf() {
    let mut out = stm_bench::perf_emitter(
        "micro",
        "per-op cost of the transactional primitives (tx paths, Bloom, lock-word codec)",
    );
    let block = WordBlock::new(64);
    let addr = block.as_ptr();
    for (name, handle) in [
        ("tinystm-wb", stm(AccessStrategy::WriteBack, 0)),
        ("tinystm-wt", stm(AccessStrategy::WriteThrough, 0)),
        ("tinystm-wb-h16", stm(AccessStrategy::WriteBack, 4)),
    ] {
        let ns = time_ns_per_op(|| {
            handle.run(TxKind::ReadWrite, |_tx| Ok(()));
        });
        out.record(micro_record("tx/empty-update", name, ns));
        let ns = time_ns_per_op(|| {
            handle.run(TxKind::ReadOnly, |tx| {
                let mut acc = 0usize;
                for k in 0..8 {
                    acc ^= unsafe { tx.load_word(addr.wrapping_add(k)) }?;
                }
                Ok(acc)
            });
        });
        out.record(micro_record("tx/ro-8-reads", name, ns));
        let ns = time_ns_per_op(|| {
            handle.run(TxKind::ReadWrite, |tx| {
                for k in 0..8 {
                    unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
                }
                Ok(())
            });
        });
        out.record(micro_record("tx/rw-8-writes", name, ns));
    }
    let tl2 = Tl2::new(Tl2Config::default()).unwrap();
    let ns = time_ns_per_op(|| {
        tl2.run(TxKind::ReadWrite, |_tx| Ok(()));
    });
    out.record(micro_record("tx/empty-update", "tl2", ns));
    let ns = time_ns_per_op(|| {
        tl2.run(TxKind::ReadWrite, |tx| {
            for k in 0..8 {
                unsafe { tx.store_word(addr.wrapping_add(k), k) }?;
            }
            Ok(())
        });
    });
    out.record(micro_record("tx/rw-8-writes", "tl2", ns));
    out.gap();

    let mut bloom = Bloom::new();
    for i in 0..64usize {
        bloom.insert(0x1000 + i * 8);
    }
    let ns = time_ns_per_op(|| {
        std::hint::black_box(bloom.maybe_contains(std::hint::black_box(0x1000)));
    });
    out.record(micro_record("bloom/query-hit", "tl2", ns));
    let ns = time_ns_per_op(|| {
        std::hint::black_box(bloom.maybe_contains(std::hint::black_box(0xdead_0000)));
    });
    out.record(micro_record("bloom/query-miss", "tl2", ns));
    let ns = time_ns_per_op(|| {
        std::hint::black_box(lockword::wb_version(lockword::wb_make(
            std::hint::black_box(123_456),
        )));
    });
    out.record(micro_record("lockword/wb-roundtrip", "tinystm-wb", ns));
    let ns = time_ns_per_op(|| {
        let w = lockword::wt_make(std::hint::black_box(123_456), 3);
        std::hint::black_box((lockword::wt_version(w), lockword::wt_incarnation(w)));
    });
    out.record(micro_record("lockword/wt-roundtrip", "tinystm-wt", ns));
    out.finish();
}

fn main() {
    benches();
    emit_perf();
}
