//! Figure 4: abort rates and the overwrite workload.
//!
//! Left: aborts/s on the red-black tree (4096 elements, 20% updates).
//! Center: aborts/s on the linked list (256 elements, 20% updates).
//! Right: throughput of the *overwrite* list variant (256 elements, 5%
//! overwrite transactions) — update transactions write every node they
//! traverse, producing large write sets.
//!
//! Paper shape: list aborts an order of magnitude above the tree; no
//! design scales on the overwrite workload; TL2 suffers most
//! (write-write conflicts discovered only at commit).
//!
//! Results go to stdout (CSV) and `target/perf/fig04.jsonl` for the
//! `perf-diff` regression gate; the per-reason abort taxonomy carried
//! by every record is what the Section 3.1 divergence check reads.

use stm_bench::{
    bench_record, default_opts, perf_emitter, run_cell, run_overwrite_cell, thread_list, Backend,
    Structure,
};
use stm_harness::IntSetWorkload;

fn main() {
    let mut out = perf_emitter(
        "fig04",
        "abort rates (rbtree 4096/20%, list 256/20%) and overwrite-list throughput (256, 5%)",
    );

    for (structure, size, updates) in [
        (Structure::Rbtree, 4096u64, 20u32),
        (Structure::List, 256, 20),
    ] {
        let workload = IntSetWorkload::new(size, updates);
        let panel = format!("aborts-{}-{size}/{updates}%", structure.label());
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, structure, workload, default_opts(threads));
                out.record(bench_record(
                    "fig04",
                    &panel,
                    structure.label(),
                    backend.label(),
                    workload,
                    &m,
                ));
            }
        }
        out.gap();
    }

    // Right panel: 5% overwrite transactions on a 256-element list.
    let workload = IntSetWorkload::new(256, 5);
    for backend in Backend::ALL {
        for &threads in &thread_list() {
            let m = run_overwrite_cell(backend, workload, default_opts(threads));
            out.record(bench_record(
                "fig04",
                "overwrite-list-256/5%",
                "list-overwrite",
                backend.label(),
                workload,
                &m,
            ));
        }
    }
    out.finish();
}
