//! Figure 4: abort rates and the overwrite workload.
//!
//! Left: aborts/s on the red-black tree (4096 elements, 20% updates).
//! Center: aborts/s on the linked list (256 elements, 20% updates).
//! Right: throughput of the *overwrite* list variant (256 elements, 5%
//! overwrite transactions) — update transactions write every node they
//! traverse, producing large write sets.
//!
//! Paper shape: list aborts an order of magnitude above the tree; no
//! design scales on the overwrite workload; TL2 suffers most
//! (write-write conflicts discovered only at commit).

use stm_bench::{default_opts, make_tiny, make_tl2, run_cell, thread_list, Backend, Structure};
use stm_harness::table::{f1, i, s, SeriesWriter};
use stm_harness::IntSetWorkload;
use stm_structures::LinkedList;
use tinystm::AccessStrategy;

fn main() {
    let mut out = SeriesWriter::default();
    out.experiment(
        "fig04",
        "abort rates (rbtree 4096/20%, list 256/20%) and overwrite-list throughput (256, 5%)",
    );
    out.columns(&["panel", "backend", "threads", "txs_per_s", "aborts_per_s"]);

    for (structure, size, updates) in [
        (Structure::Rbtree, 4096u64, 20u32),
        (Structure::List, 256, 20),
    ] {
        let workload = IntSetWorkload::new(size, updates);
        for backend in Backend::ALL {
            for &threads in &thread_list() {
                let m = run_cell(backend, structure, workload, default_opts(threads));
                out.row(&[
                    s(format!("aborts-{}-{size}/{updates}%", structure.label())),
                    s(backend.label()),
                    i(threads as u64),
                    f1(m.throughput),
                    f1(m.abort_rate),
                ]);
            }
        }
        out.gap();
    }

    // Right panel: 5% overwrite transactions on a 256-element list.
    let workload = IntSetWorkload::new(256, 5);
    for backend in Backend::ALL {
        for &threads in &thread_list() {
            let opts = default_opts(threads);
            let m = match backend {
                Backend::TinyWb | Backend::TinyWt => {
                    let strategy = if backend == Backend::TinyWb {
                        AccessStrategy::WriteBack
                    } else {
                        AccessStrategy::WriteThrough
                    };
                    let stm = make_tiny(strategy, 16, 0, 0);
                    let list = LinkedList::new(stm.clone());
                    let stats = {
                        let stm = stm.clone();
                        move || stm_api::TmHandle::stats_snapshot(&stm)
                    };
                    stm_harness::run_overwrite(&list, workload, opts, &stats)
                }
                Backend::Tl2 => {
                    let tl2 = make_tl2(20, 0);
                    let list = LinkedList::new(tl2.clone());
                    let stats = {
                        let tl2 = tl2.clone();
                        move || stm_api::TmHandle::stats_snapshot(&tl2)
                    };
                    stm_harness::run_overwrite(&list, workload, opts, &stats)
                }
            };
            out.row(&[
                s("overwrite-list-256/5%"),
                s(backend.label()),
                i(threads as u64),
                f1(m.throughput),
                f1(m.abort_rate),
            ]);
        }
    }
}
