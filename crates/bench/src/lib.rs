//! # stm-bench — shared plumbing for the figure benches
//!
//! Every figure of the paper has a bench target (`harness = false`)
//! that prints the figure's series as CSV rows. This library holds the
//! common pieces: environment knobs, backend construction, and the
//! backend × structure matrix the paper measures.
//!
//! Environment variables:
//! * `STM_MS` — milliseconds per measured point (default 120; the paper
//!   measures ≈ 1000);
//! * `STM_FULL=1` — paper-scale sweeps (more points, 1 s windows);
//! * `STM_THREADS` — override the thread list (comma separated).

use std::time::Duration;
use stm_api::stats::BasicStats;
use stm_harness::{IntSetWorkload, MeasureOpts, Measurement};
use stm_perf::{BenchRecord, PerfEmitter};
use stm_structures::{LinkedList, RbTree, TxSet};
use stm_tl2::{Tl2, Tl2Config};
use tinystm::{AccessStrategy, CmPolicy, Stm, StmConfig};

/// Milliseconds per measured point.
pub fn point_ms() -> u64 {
    if let Ok(v) = std::env::var("STM_MS") {
        if let Ok(ms) = v.parse() {
            return ms;
        }
    }
    if full_mode() {
        1000
    } else {
        120
    }
}

/// Paper-scale mode.
pub fn full_mode() -> bool {
    std::env::var("STM_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The thread counts of Figures 2–4 (the paper's 8-core Xeon sweep).
pub fn thread_list() -> Vec<usize> {
    if let Ok(v) = std::env::var("STM_THREADS") {
        let parsed: Vec<usize> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    vec![1, 2, 4, 6, 8]
}

/// Measurement options for one point.
pub fn default_opts(threads: usize) -> MeasureOpts {
    MeasureOpts::default()
        .with_threads(threads)
        .with_warmup(Duration::from_millis(point_ms() / 4))
        .with_duration(Duration::from_millis(point_ms()))
}

/// The backends of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// TinySTM with write-back access.
    TinyWb,
    /// TinySTM with write-through access.
    TinyWt,
    /// The TL2 baseline.
    Tl2,
}

impl Backend {
    /// All three series.
    pub const ALL: [Backend; 3] = [Backend::TinyWb, Backend::TinyWt, Backend::Tl2];

    /// Series label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Backend::TinyWb => "tinystm-wb",
            Backend::TinyWt => "tinystm-wt",
            Backend::Tl2 => "tl2",
        }
    }
}

/// The two intset structures of Figures 2–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Red-black tree.
    Rbtree,
    /// Sorted linked list.
    List,
}

impl Structure {
    /// Label in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Structure::Rbtree => "rbtree",
            Structure::List => "list",
        }
    }
}

/// Contention management used by the benches: light backoff keeps the
/// single-core CI host from livelocking; the algorithmic comparison is
/// unchanged (all backends use the same policy).
pub fn bench_cm() -> CmPolicy {
    CmPolicy::Backoff {
        base: 16,
        max_spins: 1 << 14,
    }
}

/// TinySTM configuration template for the benches.
pub fn tiny_config(strategy: AccessStrategy) -> StmConfig {
    StmConfig::default()
        .with_strategy(strategy)
        .with_cm(bench_cm())
}

/// Build a TinySTM instance with explicit tuning parameters.
pub fn make_tiny(strategy: AccessStrategy, locks_log2: u32, shifts: u32, hier_log2: u32) -> Stm {
    Stm::new(
        tiny_config(strategy)
            .with_locks_log2(locks_log2)
            .with_shifts(shifts)
            .with_hier_log2(hier_log2),
    )
    .expect("bench config valid")
}

/// Build a TL2 instance with explicit parameters.
pub fn make_tl2(locks_log2: u32, shifts: u32) -> Tl2 {
    Tl2::new(
        Tl2Config::default()
            .with_locks_log2(locks_log2)
            .with_shifts(shifts)
            .with_cm(bench_cm()),
    )
    .expect("bench config valid")
}

/// Run the intset workload for one `(backend, structure)` cell using the
/// backends' default tuning parameters (Figures 2–5).
pub fn run_cell(
    backend: Backend,
    structure: Structure,
    workload: IntSetWorkload,
    opts: MeasureOpts,
) -> Measurement {
    match backend {
        Backend::TinyWb | Backend::TinyWt => {
            let strategy = if backend == Backend::TinyWb {
                AccessStrategy::WriteBack
            } else {
                AccessStrategy::WriteThrough
            };
            let stm = make_tiny(strategy, 16, 0, 0);
            let stats_handle = stm.clone();
            run_structure_on(stm, structure, workload, opts, &move || {
                stm_api::TmHandle::stats_snapshot(&stats_handle)
            })
        }
        Backend::Tl2 => {
            let tl2 = make_tl2(20, 0);
            let stats_handle = tl2.clone();
            run_structure_on(tl2, structure, workload, opts, &move || {
                stm_api::TmHandle::stats_snapshot(&stats_handle)
            })
        }
    }
}

/// Run the intset workload on an explicit handle (for parameter sweeps).
pub fn run_structure_on<H: stm_api::TmHandle>(
    tm: H,
    structure: Structure,
    workload: IntSetWorkload,
    opts: MeasureOpts,
    stats: &(dyn Fn() -> BasicStats + Sync),
) -> Measurement {
    match structure {
        Structure::Rbtree => {
            let set = RbTree::new(tm);
            stm_harness::run_intset(&set, workload, opts, stats)
        }
        Structure::List => {
            let set = LinkedList::new(tm);
            stm_harness::run_intset(&set, workload, opts, stats)
        }
    }
}

/// Run the overwrite-list workload (Figure 4 right, the contention
/// ablation's overwrite loop) for one backend using the backends'
/// default tuning parameters.
pub fn run_overwrite_cell(
    backend: Backend,
    workload: IntSetWorkload,
    opts: MeasureOpts,
) -> Measurement {
    match backend {
        Backend::TinyWb | Backend::TinyWt => {
            let strategy = if backend == Backend::TinyWb {
                AccessStrategy::WriteBack
            } else {
                AccessStrategy::WriteThrough
            };
            let stm = make_tiny(strategy, 16, 0, 0);
            let list = LinkedList::new(stm.clone());
            let stats = {
                let stm = stm.clone();
                move || stm_api::TmHandle::stats_snapshot(&stm)
            };
            stm_harness::run_overwrite(&list, workload, opts, &stats)
        }
        Backend::Tl2 => {
            let tl2 = make_tl2(20, 0);
            let list = LinkedList::new(tl2.clone());
            let stats = {
                let tl2 = tl2.clone();
                move || stm_api::TmHandle::stats_snapshot(&tl2)
            };
            stm_harness::run_overwrite(&list, workload, opts, &stats)
        }
    }
}

/// Build a `TxSet` on a TinySTM handle (for tuning benches that need the
/// set alive alongside the coordinator).
pub fn build_set_on_stm(stm: &Stm, structure: Structure) -> Box<dyn TxSet> {
    match structure {
        Structure::Rbtree => Box::new(RbTree::new(stm.clone())),
        Structure::List => Box::new(LinkedList::new(stm.clone())),
    }
}

/// Start a [`PerfEmitter`] stamped with this process's measurement mode
/// (quick vs `STM_FULL=1` paper-scale) and point duration.
pub fn perf_emitter(experiment: &str, description: &str) -> PerfEmitter {
    let mode = if full_mode() { "full" } else { "quick" };
    PerfEmitter::new(experiment, description, mode, point_ms())
}

/// Translate one measured point into the shared record schema.
pub fn bench_record(
    experiment: &str,
    panel: &str,
    structure: &str,
    backend_label: &str,
    workload: IntSetWorkload,
    m: &Measurement,
) -> BenchRecord {
    BenchRecord {
        experiment: experiment.to_string(),
        panel: panel.to_string(),
        structure: structure.to_string(),
        backend: backend_label.to_string(),
        threads: m.threads,
        initial_size: workload.initial_size,
        key_range: workload.key_range,
        update_pct: workload.update_pct,
        ops_per_sec: m.throughput,
        aborts_per_sec: m.abort_rate,
        abort_ratio: m.abort_ratio,
        commits: m.commits,
        aborts: m.aborts,
        elapsed_ms: m.elapsed.as_secs_f64() * 1000.0,
        aborts_by_reason: BenchRecord::taxonomy_from_array(&m.aborts_by_reason),
        worker_panics: m.worker_panics,
        // Commit-clock contention rides along on every record; it is a
        // diagnostic (not `_ns`-suffixed), so perf-diff never gates it.
        extras: [("clock_conflicts".to_string(), m.clock_conflicts as f64)]
            .into_iter()
            .collect(),
    }
}

/// Static identity of one tuning experiment for the perf pipeline.
pub struct TuneEmit {
    /// Experiment id (figure name).
    pub experiment: &'static str,
    /// One-line description for the JSONL header.
    pub description: &'static str,
    /// Structure label (rbtree/list).
    pub structure: &'static str,
    /// Worker threads driving the load.
    pub threads: usize,
    /// The driven workload (sizes the config key).
    pub workload: IntSetWorkload,
    /// Wall time behind each trajectory point (period x samples, ms).
    pub point_ms: u64,
}

/// Emit the tuning trajectory through the shared perf pipeline: one
/// record per evaluated configuration (panel `trajectory-NN`, the
/// per-step config + throughput in `extras`) plus a `summary` record,
/// so the tuning curves join the JSONL artifacts the CI uploads.
pub fn emit_tuning(id: &TuneEmit, outcome: &stm_tuning::AutoTuneOutcome) {
    let mut perf = perf_emitter(id.experiment, id.description);
    let base = |panel: String| stm_perf::BenchRecord {
        experiment: id.experiment.to_string(),
        panel,
        structure: id.structure.to_string(),
        backend: "tinystm-wb".to_string(),
        threads: id.threads,
        initial_size: id.workload.initial_size,
        key_range: id.workload.key_range,
        update_pct: id.workload.update_pct,
        ops_per_sec: 0.0,
        aborts_per_sec: 0.0,
        abort_ratio: 0.0,
        commits: 0,
        aborts: 0,
        elapsed_ms: id.point_ms as f64,
        aborts_by_reason: Default::default(),
        worker_panics: 0,
        extras: Default::default(),
    };
    for r in &outcome.records {
        let mut rec = base(format!("trajectory-{:02}", r.index));
        rec.ops_per_sec = r.throughput;
        rec.extras = [
            ("config_idx".to_string(), r.index as f64),
            ("locks_log2".to_string(), r.point.locks_log2 as f64),
            ("shifts".to_string(), r.point.shifts as f64),
            ("hier".to_string(), (1u64 << r.point.hier_log2) as f64),
            ("val_processed_per_s".to_string(), r.val_processed_per_s),
            ("val_skipped_per_s".to_string(), r.val_skipped_per_s),
        ]
        .into_iter()
        .collect();
        perf.record(rec);
    }
    if let (Some(best), Some(first)) = (outcome.best(), outcome.records.first()) {
        let mut rec = base("summary".to_string());
        rec.ops_per_sec = best.throughput;
        rec.extras = [
            ("start_txs_per_s".to_string(), first.throughput),
            ("best_locks_log2".to_string(), best.point.locks_log2 as f64),
            ("best_shifts".to_string(), best.point.shifts as f64),
            (
                "best_hier".to_string(),
                (1u64 << best.point.hier_log2) as f64,
            ),
            (
                "configs_evaluated".to_string(),
                outcome.records.len() as f64,
            ),
            (
                "completed".to_string(),
                if outcome.is_complete() { 1.0 } else { 0.0 },
            ),
        ]
        .into_iter()
        .collect();
        perf.record(rec);
    }
    perf.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert!(point_ms() >= 1);
        assert_eq!(thread_list(), vec![1, 2, 4, 6, 8]);
    }

    #[test]
    fn backends_have_distinct_labels() {
        let labels: std::collections::HashSet<_> = Backend::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn bench_record_maps_measurement_fields() {
        let w = IntSetWorkload::new(32, 20);
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(30));
        let m = run_cell(Backend::TinyWb, Structure::Rbtree, w, opts);
        let rec = bench_record("figXX", "32/20%", "rbtree", "tinystm-wb", w, &m);
        assert_eq!(rec.threads, 2);
        assert_eq!(rec.initial_size, 32);
        assert_eq!(rec.key_range, 64);
        assert_eq!(rec.update_pct, 20);
        assert_eq!(rec.commits, m.commits);
        assert!((rec.ops_per_sec - m.throughput).abs() < 1e-9);
        assert_eq!(rec.worker_panics, 0);
        let taxonomy_total: u64 = rec.aborts_by_reason.values().sum();
        assert_eq!(taxonomy_total, rec.aborts, "taxonomy must sum to aborts");
    }

    #[test]
    fn run_cell_smoke_all_backends() {
        let w = IntSetWorkload::new(32, 20);
        let opts = MeasureOpts::default()
            .with_threads(2)
            .with_warmup(Duration::from_millis(5))
            .with_duration(Duration::from_millis(30));
        for b in Backend::ALL {
            for s in [Structure::Rbtree, Structure::List] {
                let m = run_cell(b, s, w, opts);
                assert!(
                    m.commits > 0,
                    "{}/{} produced no commits",
                    b.label(),
                    s.label()
                );
            }
        }
    }
}
