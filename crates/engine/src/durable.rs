//! The durable layer (feature `durable`): a key/value facade over the
//! sharded engine whose committed state survives crashes.
//!
//! ## Shape
//!
//! A [`DurableEngine`] owns one [`ShardedEngine`] plus, per shard:
//!
//! * a **table** — a [`WordBlock`] of `n_keys` words; key `k` lives at
//!   word index `k` of the table of the shard `k` routes to (words for
//!   keys routed elsewhere are simply never touched);
//! * a **WAL sink** ([`ShardWalSink`]) attached to the shard's backend:
//!   every committed update transaction publishes its `(addr, value)`
//!   write set *inside* its commit critical section, the sink maps
//!   addresses back to keys and appends one checksummed record to the
//!   shard's [`WalStore`] through a [`LogWriter`].
//!
//! Because the publish happens before the stripe locks are released,
//! conflicting commits appear in the shard's log in commit-timestamp
//! order, so **every log prefix is conflict-closed** — replaying any
//! prefix yields a state some crash-free execution could have reached
//! (invariant M1.4 in `stm-wal`).
//!
//! ## Checkpoint = quiesce fence
//!
//! [`DurableEngine::checkpoint`] runs each shard's snapshot inside that
//! shard's quiesce fence ([`stm_api::TmLifecycle::quiesce`]): no
//! transaction is active, every prior commit is fully published and —
//! because the sink publishes inside the commit critical section —
//! fully logged. The snapshot (all routed keys, current values) and the
//! log truncation happen atomically inside the store.
//!
//! ## Recovery
//!
//! [`DurableEngine::recover`] replays each shard's store from empty
//! state (`stm_wal::recover_store`: snapshot, then intact log records,
//! with torn/corrupt tails reported and interior damage rejected
//! loudly), seeds fresh tables with the recovered state, and
//! immediately re-checkpoints so the new incarnation's log starts
//! clean. Epochs are made monotonic across incarnations by an
//! **epoch base** in the sink: the effective epoch of a published
//! record is `base + backend_epoch`, with `base` the recovered maximum
//! epoch (a fresh engine starts at base 0).

use crate::backend::ShardBackend;
use crate::engine::ShardedEngine;
use std::collections::BTreeMap;
use std::sync::Arc;
use stm_api::mem::WordBlock;
use stm_api::wal::WalSink;
use stm_api::{LifecycleError, TmTx, TxKind};
use stm_wal::{recover_store, snapshot_of, LogWriter, Recovery, WalError, WalStore};

/// Word size of the tables (the engine is 64-bit word based).
const WORD: usize = core::mem::size_of::<usize>();

/// Errors building or recovering a [`DurableEngine`].
#[derive(Debug)]
pub enum DurableError {
    /// A shard's store failed recovery (interior corruption, snapshot
    /// damage, or a replay-invariant violation). Never silent: the
    /// failing shard and the precise violation are carried along.
    Wal {
        /// Shard whose store failed.
        shard: usize,
        /// The violation.
        error: WalError,
    },
    /// The backend rejected the configuration.
    Lifecycle(LifecycleError),
    /// `stores.len()` did not match the shard count.
    StoreCount {
        /// Shards requested.
        shards: usize,
        /// Stores supplied.
        stores: usize,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Wal { shard, error } => {
                write!(f, "shard {shard}: WAL recovery failed: {error}")
            }
            DurableError::Lifecycle(e) => write!(f, "backend lifecycle error: {e}"),
            DurableError::StoreCount { shards, stores } => {
                write!(f, "{shards} shard(s) but {stores} store(s) supplied")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<LifecycleError> for DurableError {
    fn from(e: LifecycleError) -> DurableError {
        DurableError::Lifecycle(e)
    }
}

/// The per-shard WAL sink: maps the backend's `(addr, value)` write set
/// back to keys and appends one record per commit.
struct ShardWalSink {
    /// Base address of the shard's table.
    base: usize,
    /// Table length in words.
    words: usize,
    /// Added to the backend's durability epoch (monotonicity across
    /// recover incarnations).
    epoch_base: u64,
    writer: Arc<LogWriter>,
}

impl WalSink for ShardWalSink {
    fn publish(&self, epoch: u64, commit_ts: u64, writes: &[(usize, usize)]) {
        let mut keys: Vec<(u64, u64)> = Vec::with_capacity(writes.len());
        for &(addr, value) in writes {
            // The no-phantom guard (M1.5): a durable transaction must
            // only write words of its shard's table — anything else
            // cannot be replayed and dying here beats logging garbage.
            let in_table = addr >= self.base
                && addr < self.base + self.words * WORD
                && (addr - self.base).is_multiple_of(WORD);
            assert!(
                in_table,
                "durable commit wrote {addr:#x}, outside the shard table \
                 [{:#x}, {:#x})",
                self.base,
                self.base + self.words * WORD
            );
            keys.push((((addr - self.base) / WORD) as u64, value as u64));
        }
        self.writer
            .append_commit(self.epoch_base + epoch, commit_ts, &keys);
    }
}

/// One shard's durable state (the sink holds the shard's [`LogWriter`]).
struct DurableShard {
    table: WordBlock,
    store: Arc<dyn WalStore>,
    epoch_base: u64,
}

/// A crash-recoverable key/value engine over [`ShardedEngine`].
///
/// Keys are dense `0..n_keys`; values are words. Not `Clone` — the
/// tables and writers have one owner (share it behind an `Arc`).
pub struct DurableEngine<B: ShardBackend> {
    engine: ShardedEngine<B>,
    shards: Vec<DurableShard>,
    n_keys: usize,
}

impl<B: ShardBackend> DurableEngine<B> {
    /// Build a fresh engine: `shards` backend instances, one table and
    /// one WAL writer per shard, sinks attached. `stores[i]` receives
    /// shard `i`'s log; supply one store per shard.
    pub fn new(
        shards: usize,
        n_keys: usize,
        config: &B::Config,
        stores: Vec<Arc<dyn WalStore>>,
    ) -> Result<DurableEngine<B>, DurableError> {
        Self::build(shards, n_keys, config, stores, None)
    }

    /// Recover an engine from the stores of a crashed (or cleanly
    /// stopped) incarnation: replay every shard from empty state, seed
    /// fresh tables, re-checkpoint so the new logs start clean. The
    /// per-shard [`Recovery`] reports (replayed records, tail status)
    /// are returned for inspection.
    ///
    /// Fails loudly — never with a silently diverged state — if any
    /// shard's store has interior corruption, a damaged snapshot, or a
    /// replay-invariant violation.
    pub fn recover(
        shards: usize,
        n_keys: usize,
        config: &B::Config,
        stores: Vec<Arc<dyn WalStore>>,
    ) -> Result<(DurableEngine<B>, Vec<Recovery>), DurableError> {
        let mut recoveries = Vec::with_capacity(shards);
        for (i, store) in stores.iter().enumerate() {
            let r = recover_store(store.as_ref())
                .map_err(|error| DurableError::Wal { shard: i, error })?;
            recoveries.push(r);
        }
        let engine = Self::build(shards, n_keys, config, stores, Some(&recoveries))?;
        // Re-checkpoint immediately: the recovered state becomes the
        // new snapshot and the (possibly torn-tailed) old log is
        // truncated, so the fresh incarnation appends to a clean log.
        engine.checkpoint();
        Ok((engine, recoveries))
    }

    fn build(
        n_shards: usize,
        n_keys: usize,
        config: &B::Config,
        stores: Vec<Arc<dyn WalStore>>,
        recovered: Option<&[Recovery]>,
    ) -> Result<DurableEngine<B>, DurableError> {
        if stores.len() != n_shards {
            return Err(DurableError::StoreCount {
                shards: n_shards,
                stores: stores.len(),
            });
        }
        let engine: ShardedEngine<B> = ShardedEngine::new(n_shards, config)?;
        let mut shards = Vec::with_capacity(n_shards);
        for (i, store) in stores.into_iter().enumerate() {
            let table = WordBlock::new(n_keys.max(1));
            let (epoch_base, first_seq) = match recovered {
                Some(rs) => {
                    let r = &rs[i];
                    for (&k, &v) in &r.state {
                        assert!(
                            (k as usize) < n_keys && engine.route(k) == i,
                            "recovered key {k} does not belong to shard {i}"
                        );
                        table.write(k as usize, v as usize);
                    }
                    (
                        r.max_epoch,
                        r.records.last().map(|rec| rec.seq + 1).unwrap_or(0),
                    )
                }
                None => (0, 0),
            };
            let writer = Arc::new(LogWriter::new(i as u32, Arc::clone(&store), first_seq));
            let sink: Arc<dyn WalSink> = Arc::new(ShardWalSink {
                base: table.as_ptr() as usize,
                words: table.words(),
                epoch_base,
                writer,
            });
            engine.shard(i).attach_wal(&sink);
            shards.push(DurableShard {
                table,
                store,
                epoch_base,
            });
        }
        Ok(DurableEngine {
            engine,
            shards,
            n_keys,
        })
    }

    /// The underlying sharded engine (stats, routing, reconfigure).
    pub fn engine(&self) -> &ShardedEngine<B> {
        &self.engine
    }

    /// Number of keys.
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// Shard `i`'s store (corruption simulation, inspection).
    pub fn store(&self, i: usize) -> &Arc<dyn WalStore> {
        &self.shards[i].store
    }

    /// Shard `i`'s effective durability epoch (epoch base of this
    /// incarnation + the backend's epoch).
    pub fn wal_epoch(&self, i: usize) -> u64 {
        self.shards[i].epoch_base + self.engine.shard(i).wal_epoch()
    }

    /// Transactionally set `key` to `value`.
    ///
    /// # Panics
    /// If `key >= n_keys`.
    pub fn put(&self, key: u64, value: u64) {
        assert!((key as usize) < self.n_keys, "key {key} out of range");
        let shard = self.engine.route(key);
        let addr = unsafe { self.shards[shard].table.as_ptr().add(key as usize) };
        self.engine.run_on(key, TxKind::ReadWrite, |tx| {
            // SAFETY: addr points into the routed shard's table.
            unsafe { tx.store_word(addr, value as usize) }
        });
    }

    /// Transactionally read `key`.
    ///
    /// # Panics
    /// If `key >= n_keys`.
    pub fn get(&self, key: u64) -> u64 {
        assert!((key as usize) < self.n_keys, "key {key} out of range");
        let shard = self.engine.route(key);
        let addr = unsafe { self.shards[shard].table.as_ptr().add(key as usize) };
        self.engine.run_on(key, TxKind::ReadOnly, |tx| {
            // SAFETY: addr points into the routed shard's table.
            unsafe { tx.load_word(addr) }
        }) as u64
    }

    /// Run a multi-key transaction on the shard all `keys` route to
    /// (they must route to one shard; use the engine's cross-shard API
    /// otherwise).
    pub fn update<R>(
        &self,
        anchor_key: u64,
        body: impl for<'a> FnMut(&mut B::Tx<'a>) -> stm_api::TxResult<R>,
    ) -> R {
        self.engine.run_on(anchor_key, TxKind::ReadWrite, body)
    }

    /// Address of `key`'s word (for multi-key closures via
    /// [`DurableEngine::update`]). The caller must keep accesses inside
    /// the anchor key's shard.
    pub fn addr_of(&self, key: u64) -> *mut usize {
        assert!((key as usize) < self.n_keys, "key {key} out of range");
        let shard = self.engine.route(key);
        unsafe { self.shards[shard].table.as_ptr().add(key as usize) }
    }

    /// Snapshot every shard inside its quiesce fence and truncate its
    /// log: the durable checkpoint. Safe to run while workers commit —
    /// each shard's fence drains that shard's transactions first.
    pub fn checkpoint(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            let backend = self.engine.shard(i);
            backend.quiesce(|| {
                // Inside the fence: no transaction is active on this
                // shard, every commit is published *and* logged.
                let mut state: BTreeMap<u64, u64> = BTreeMap::new();
                for k in 0..self.n_keys {
                    if self.engine.route(k as u64) == i {
                        state.insert(k as u64, shard.table.read(k) as u64);
                    }
                }
                let epoch = shard.epoch_base + backend.wal_epoch();
                let snap = snapshot_of(&state, epoch);
                shard.store.checkpoint(&snap.encode());
            });
        }
    }

    /// Direct (non-transactional) dump of all keys. Only meaningful
    /// while no workers are running.
    pub fn read_all(&self) -> BTreeMap<u64, u64> {
        let mut out = BTreeMap::new();
        for k in 0..self.n_keys {
            let shard = self.engine.route(k as u64);
            out.insert(k as u64, self.shards[shard].table.read(k) as u64);
        }
        out
    }
}
